//! Whole-repository integration tests: exercise the public facade the
//! way a downstream user would, spanning every crate at once.

use tcp_hack::core::{run, HackMode, LossConfig, ScenarioBuilder, ScenarioConfig, TrafficModel};
use tcp_hack::phy::{Channel, PhyRate, StationId};
use tcp_hack::sim::SimDuration;

fn short(mut cfg: ScenarioConfig, secs: u64) -> ScenarioConfig {
    cfg.duration = SimDuration::from_secs(secs);
    cfg
}

/// The paper's headline claim, end to end: HACK increases TCP goodput on
/// 802.11n, and the win comes with fewer collisions.
#[test]
fn headline_hack_beats_stock_with_fewer_collisions() {
    let stock = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build(),
        4,
    ));
    let hack = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build(),
        4,
    ));
    assert!(hack.aggregate_goodput_mbps > stock.aggregate_goodput_mbps * 1.08);
    assert!(hack.collisions < stock.collisions);
    assert!(hack.driver[0].hacked_acks > 1000);
}

/// The analytical model and the simulator must agree on ordering:
/// UDP ≥ HACK ≥ TCP, with simulation below the lossless analysis.
#[test]
fn analysis_bounds_simulation() {
    use tcp_hack::analysis::{CapacityModel, Protocol};
    let m = CapacityModel::dot11n();
    let rate = PhyRate::ht(150);
    let theor_udp = m.goodput_dot11n(rate, Protocol::Udp);
    let theor_tcp = m.goodput_dot11n(rate, Protocol::Tcp);

    let sim_udp = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build().with_udp(),
        4,
    ));
    let sim_tcp = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build(),
        4,
    ));
    // Theory is an upper bound (no collisions, no TCP dynamics), within
    // a small tolerance for measurement-window burstiness.
    assert!(sim_udp.aggregate_goodput_mbps <= theor_udp * 1.02);
    assert!(sim_tcp.aggregate_goodput_mbps <= theor_tcp * 1.02);
    // And the simulator is not wildly below it either.
    assert!(sim_udp.aggregate_goodput_mbps > theor_udp * 0.9);
    assert!(sim_tcp.aggregate_goodput_mbps > theor_tcp * 0.8);
}

/// Every TCP ACK must reach the sender exactly once, whichever path it
/// takes: the byte counters of sender and receiver must reconcile.
#[test]
fn conservation_of_acked_bytes() {
    let r = run(short(
        ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData).build(),
        4,
    ));
    for flow in 0..2 {
        let sent = r.sender_tcp[flow].bytes_acked;
        let delivered = r.receiver_tcp[flow].bytes_delivered;
        assert!(
            sent <= delivered,
            "flow {flow}: sender believes {sent} acked but only {delivered} delivered"
        );
        assert!(delivered > 0);
    }
}

/// The SoRa reproduction: HACK sits just under UDP; stock TCP far below
/// (Figure 9's shape).
#[test]
fn sora_ordering() {
    let udp = run(short(
        ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build().with_udp(),
        4,
    ));
    let hack = run(short(
        ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build(),
        4,
    ));
    let tcp = run(short(
        ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build(),
        4,
    ));
    assert!(udp.aggregate_goodput_mbps > hack.aggregate_goodput_mbps);
    assert!(hack.aggregate_goodput_mbps > tcp.aggregate_goodput_mbps * 1.15);
    // HACK within ~5% of the UDP ceiling, per the paper.
    assert!(hack.aggregate_goodput_mbps > udp.aggregate_goodput_mbps * 0.93);
}

/// Retry shape of Table 1: stock TCP needs retries (collisions) that
/// HACK and UDP avoid.
#[test]
fn retry_breakdown_shape() {
    let tcp = run(short(
        ScenarioBuilder::sora_testbed(2, HackMode::Disabled).build(),
        4,
    ));
    let hack = run(short(
        ScenarioBuilder::sora_testbed(2, HackMode::MoreData).build(),
        4,
    ));
    let f_tcp = tcp.ap_first_try_fraction().unwrap();
    let f_hack = hack.ap_first_try_fraction().unwrap();
    assert!(
        f_hack > f_tcp,
        "HACK first-try {f_hack:.3} must beat TCP {f_tcp:.3}"
    );
}

/// Under SNR-driven loss the whole stack (PHY loss → MAC retries → ROHC
/// resync → TCP recovery) holds together and still makes progress.
#[test]
fn snr_loss_full_stack() {
    let rate = 90u64;
    let mut ch = Channel::indoor();
    ch.place(StationId(0), 0.0, 0.0);
    // ~2 dB above the rate's sensitivity: lossy but workable.
    let d = ch.distance_for_snr(PhyRate::ht(rate).min_snr_db() + 2.0);
    let mut cfg = ScenarioBuilder::dot11n_download(rate, 1, HackMode::MoreData).build();
    cfg.loss = LossConfig::SnrDistance(d);
    let r = run(short(cfg, 4));
    assert!(
        r.flow_goodput_full_mbps[0] > 10.0,
        "goodput collapsed: {:.2}",
        r.flow_goodput_full_mbps[0]
    );
    assert!(r.mac[0].mpdus_retried.get() > 0, "losses must be visible");
    assert!(
        r.decompressor.decompressed > 100,
        "compression must keep working under loss"
    );
}

/// A byte-budgeted upload completes and reports a sane completion time
/// (the wireless-backup scenario).
#[test]
fn upload_completes() {
    let cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData)
        .traffic(TrafficModel::BulkUpload)
        .transfer_bytes(5_000_000)
        .duration(SimDuration::from_secs(60))
        .build();
    let r = run(cfg);
    let t = r.completion().expect("upload must finish").as_secs_f64();
    assert!(t < 3.0, "5 MB upload took {t:.2} s");
}

/// Determinism across the entire stack: same seed, same world.
#[test]
fn whole_stack_determinism() {
    let cfg = short(ScenarioBuilder::sora_testbed(2, HackMode::MoreData).build(), 3);
    let a = run(cfg.clone());
    let b = run(cfg);
    assert_eq!(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);
    assert_eq!(a.ppdus, b.ppdus);
    assert_eq!(a.decompressor.decompressed, b.decompressor.decompressed);
    assert_eq!(
        a.driver[0].hacked_acks + a.driver[1].hacked_acks,
        b.driver[0].hacked_acks + b.driver[1].hacked_acks
    );
}

/// The blob-within-AIFS claim (§3.3.2 footnote 7). With single-MPDU
/// exchanges (802.11a) blobs carry one or two ACKs and always fit. In
/// 802.11n, our ~8-byte-per-ACK W-LSB encoding makes a full 21-ACK blob
/// overrun AIFS (the paper's tighter ~4.4-byte ROHC packing mostly
/// fits); like the paper's simulator, we send oversized blobs on a
/// single LL ACK rather than splitting (§3.3.2 fn 7), which is safe in
/// these no-hidden-terminal cells. EXPERIMENTS.md discusses the gap.
#[test]
fn blobs_fit_within_aifs_on_dot11a() {
    let r = run(short(
        ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build(),
        4,
    ));
    assert!(
        r.blob_within_aifs > 0.95,
        "only {:.1}% of 802.11a blobs fit within AIFS",
        r.blob_within_aifs * 100.0
    );
    // The 802.11n measurement is reported, not asserted: record that the
    // metric is being computed at all.
    let rn = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build(),
        3,
    ));
    assert!((0.0..=1.0).contains(&rn.blob_within_aifs));
}
