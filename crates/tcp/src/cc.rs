//! Pluggable congestion control behind the [`CongestionControl`] trait:
//! NewReno (RFC 5681 + RFC 6582), CUBIC (RFC 8312), a HighSpeed-TCP
//! style AIMD, and [`BbrLite`] — a BBR-flavoured controller driven by
//! the delivery-rate sampler in `conn.rs`.
//!
//! The paper's flows are classic loss-based TCP on a shallow-buffered
//! AP: slow start overshoot fills the AP queue, losses halve cwnd, and
//! the ACK clock (which HACK piggybacks) drives everything. NewReno's
//! partial ACK handling matters because an A-MPDU loss burst drops
//! several segments from one window. The other algorithms exist to
//! measure what HACK's held-ACK batching does to senders that pace or
//! grow from the ACK *arrival process* rather than just its byte count
//! — the ACK-clock-compression question the paper never examined.
//!
//! Trait contract (who calls what, in `conn.rs`):
//!
//! * [`CongestionControl::on_ack`] — every cumulative ACK outside
//!   recovery, with an [`AckContext`] carrying the latest delivery-rate
//!   sample and smoothed RTT;
//! * [`CongestionControl::on_triple_dupack`] /
//!   [`CongestionControl::on_recovery_dupack`] /
//!   [`CongestionControl::on_partial_ack`] /
//!   [`CongestionControl::on_full_ack`] — the NewReno-shaped recovery
//!   epoch machinery (every algorithm participates so the connection's
//!   retransmission logic stays algorithm-agnostic);
//! * [`CongestionControl::on_timeout`] — RTO;
//! * [`CongestionControl::cwnd`] bounds the flight;
//!   [`CongestionControl::pacing_rate`] (when `Some`) throttles the
//!   send loop through the connection's deterministic pacer.
//!
//! Every implementation honours a `cwnd_cap`
//! ([`CongestionControl::set_cwnd_cap`]): the connection derives it
//! from the peer's advertised receive window, which bounds the
//! otherwise-unbounded congestion-avoidance byte counting of a
//! receive-window-limited flow (cwnd kept growing one MSS per RTT
//! forever while the flight stayed clamped at rwnd).

use hack_sim::{SimDuration, SimTime};

/// Congestion-control phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential growth below ssthresh.
    SlowStart,
    /// Additive increase above ssthresh.
    CongestionAvoidance,
    /// NewReno fast recovery, until `recover` is cumulatively ACKed.
    FastRecovery,
}

/// Which congestion-control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Byte-counted NewReno (the paper's sender; the default).
    Reno,
    /// CUBIC per RFC 8312 (window curve + TCP-friendly region).
    Cubic,
    /// HighSpeed-TCP-style AIMD (`cwnd += cwnd^0.4 / cwnd` per ACK).
    Highspeed,
    /// BBR-flavoured delivery-rate controller with pacing.
    Bbr,
}

impl CcKind {
    /// Every selectable algorithm, in campaign-axis order.
    pub const ALL: [CcKind; 4] = [CcKind::Reno, CcKind::Cubic, CcKind::Highspeed, CcKind::Bbr];

    /// Stable lower-case name (campaign labels, CLI).
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Highspeed => "hstcp",
            CcKind::Bbr => "bbr",
        }
    }

    /// Parse [`CcKind::name`] back into a kind.
    pub fn parse(s: &str) -> Option<CcKind> {
        CcKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Construct the algorithm with an initial window of `init_segs`
    /// segments of `mss` bytes.
    pub fn build(self, mss: u32, init_segs: u32) -> Box<dyn CongestionControl + Send> {
        match self {
            CcKind::Reno => Box::new(NewReno::new(mss, init_segs)),
            CcKind::Cubic => Box::new(Cubic::new(mss, init_segs)),
            CcKind::Highspeed => Box::new(Highspeed::new(mss, init_segs)),
            CcKind::Bbr => Box::new(BbrLite::new(mss, init_segs)),
        }
    }
}

/// One delivery-rate measurement from the connection's per-segment
/// `delivered` / `delivered_time` sampler.
///
/// The interval is `max(send_elapsed, ack_elapsed)` for the sampled
/// segment, which is what keeps a burst of batched ACKs (HACK's held
/// ACKs released together, or any ACK compression) from inflating the
/// bandwidth estimate: the send side of the interval stays real even
/// when the ACK side collapses to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSample {
    /// Bytes newly delivered over the interval.
    pub delivered: u64,
    /// Sampling interval (never zero).
    pub interval: SimDuration,
    /// Exact send→ACK round-trip of the sampled segment.
    pub rtt: SimDuration,
}

impl RateSample {
    /// The sampled delivery rate in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        let ns = self.interval.as_nanos();
        if ns == 0 {
            return 0;
        }
        // delivered * 1e9 / ns, in u128 to dodge overflow.
        u64::try_from(u128::from(self.delivered) * 1_000_000_000 / u128::from(ns))
            .unwrap_or(u64::MAX)
    }
}

/// Everything a cumulative ACK tells the congestion controller.
#[derive(Debug, Clone, Copy)]
pub struct AckContext {
    /// Simulation time of the ACK.
    pub now: SimTime,
    /// Bytes newly acknowledged.
    pub acked_bytes: u64,
    /// Bytes still in flight after this ACK.
    pub flight: u64,
    /// Smoothed RTT, once the estimator has a sample.
    pub srtt: Option<SimDuration>,
    /// Latest delivery-rate sample, once the sampler has one.
    pub sample: Option<RateSample>,
}

/// A rate-based controller's reportable state, traced as a
/// `CcStateChange` event whenever it moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcSnapshot {
    /// Algorithm-specific state id (for [`BbrLite`]: the mode).
    pub state: u32,
    /// Current pacing rate in bytes/sec (0 = unpaced).
    pub pacing_rate: u64,
    /// Current bandwidth estimate in bytes/sec (0 = none yet).
    pub bw: u64,
}

/// A congestion-control algorithm, as seen by the connection.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;

    /// Current phase.
    fn phase(&self) -> Phase;

    /// In fast recovery?
    fn in_recovery(&self) -> bool {
        self.phase() == Phase::FastRecovery
    }

    /// A new cumulative ACK advanced snd.una (recovery exits are
    /// handled by [`CongestionControl::on_full_ack`] /
    /// [`CongestionControl::on_partial_ack`]).
    fn on_ack(&mut self, ctx: &AckContext);

    /// Third duplicate ACK: enter fast recovery. `flight` is the
    /// current FlightSize in bytes. Returns the new ssthresh.
    fn on_triple_dupack(&mut self, flight: u64, now: SimTime) -> u64;

    /// A further duplicate ACK during recovery inflates the window.
    fn on_recovery_dupack(&mut self);

    /// A partial ACK during recovery (NewReno): deflate by the bytes
    /// acked, add back one MSS, stay in recovery.
    fn on_partial_ack(&mut self, acked_bytes: u64);

    /// The recovery point was cumulatively ACKed: exit recovery.
    fn on_full_ack(&mut self, now: SimTime);

    /// Retransmission timeout: collapse the window and restart.
    fn on_timeout(&mut self, flight: u64, now: SimTime);

    /// Pacing rate in bytes/sec, for algorithms that spread sends
    /// across the RTT. `None` disables the connection's pacer entirely
    /// (loss-based algorithms keep their ACK-clocked bursts).
    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    /// Upper bound on cwnd, derived by the connection from the peer's
    /// advertised receive window. Growth beyond this is pure state
    /// inflation — the flight is clamped by rwnd anyway.
    fn set_cwnd_cap(&mut self, cap: u64);

    /// Reportable state for the `CcStateChange` trace event. `None`
    /// (the default, and NewReno's answer) keeps legacy traces
    /// byte-identical; rate-based controllers report mode moves that
    /// are invisible in the cwnd trace.
    fn snapshot(&self) -> Option<CcSnapshot> {
        None
    }
}

// ---------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------

/// Byte-based NewReno state.
#[derive(Debug, Clone)]
pub struct NewReno {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes acked since the last cwnd increment (CA byte counting).
    acked_in_ca: u64,
    phase: Phase,
    cwnd_cap: u64,
}

impl NewReno {
    /// Initial state: IW = `init_segs` segments, ssthresh unbounded.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        NewReno {
            mss,
            cwnd: u64::from(mss) * u64::from(init_segs),
            ssthresh: u64::MAX,
            acked_in_ca: 0,
            phase: Phase::SlowStart,
            cwnd_cap: u64::MAX,
        }
    }
}

impl CongestionControl for NewReno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn on_ack(&mut self, ctx: &AckContext) {
        let acked_bytes = ctx.acked_bytes;
        match self.phase {
            Phase::SlowStart => {
                // Uncapped: slow start is bounded by ssthresh in any
                // loss-experiencing flow, and the unbounded-state bug
                // the cap fixes lives in the CA byte counter below.
                // (Capping here would also perturb legacy traces.)
                self.cwnd += acked_bytes.min(u64::from(self.mss));
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                    self.acked_in_ca = 0;
                }
            }
            Phase::CongestionAvoidance => {
                // cwnd += MSS per cwnd of acked bytes, up to the
                // rwnd-derived cap (growth past it is pure inflation).
                self.acked_in_ca += acked_bytes;
                if self.acked_in_ca >= self.cwnd {
                    self.acked_in_ca -= self.cwnd;
                    self.cwnd = (self.cwnd + u64::from(self.mss)).min(self.cwnd_cap);
                }
            }
            Phase::FastRecovery => {
                // Window inflation handled via on_dupack/partial ack.
            }
        }
    }

    fn on_triple_dupack(&mut self, flight: u64, _now: SimTime) -> u64 {
        self.ssthresh = (flight / 2).max(2 * u64::from(self.mss));
        self.cwnd = self.ssthresh + 3 * u64::from(self.mss);
        self.phase = Phase::FastRecovery;
        self.ssthresh
    }

    fn on_recovery_dupack(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += u64::from(self.mss);
        }
    }

    fn on_partial_ack(&mut self, acked_bytes: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self
                .cwnd
                .saturating_sub(acked_bytes)
                .max(u64::from(self.mss))
                + u64::from(self.mss);
        }
    }

    fn on_full_ack(&mut self, _now: SimTime) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self.ssthresh.max(2 * u64::from(self.mss));
            self.phase = Phase::CongestionAvoidance;
            self.acked_in_ca = 0;
        }
    }

    fn on_timeout(&mut self, flight: u64, _now: SimTime) {
        self.ssthresh = (flight / 2).max(2 * u64::from(self.mss));
        self.cwnd = u64::from(self.mss);
        self.phase = Phase::SlowStart;
        self.acked_in_ca = 0;
    }

    fn set_cwnd_cap(&mut self, cap: u64) {
        self.cwnd_cap = cap.max(2 * u64::from(self.mss));
    }
}

// ---------------------------------------------------------------------
// CUBIC (RFC 8312)
// ---------------------------------------------------------------------

/// CUBIC constant `C` (RFC 8312 §5).
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative decrease factor β (RFC 8312 §4.5).
const CUBIC_BETA: f64 = 0.7;

/// CUBIC per RFC 8312: window grows along `W(t) = C(t−K)³ + W_max`,
/// concave below the pre-loss window and convex above it, with the
/// TCP-friendly region (`W_est`) as a floor in small-BDP regimes.
///
/// The window is kept as a fractional segment count internally so
/// sub-MSS growth per ACK accumulates instead of truncating to zero.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u32,
    /// Fractional window in segments (the master copy; `cwnd()` is
    /// this times MSS, rounded down).
    w: f64,
    ssthresh: u64,
    cwnd_cap: u64,
    phase: Phase,
    /// Window (segments) just before the last reduction.
    w_max: f64,
    /// Time from epoch start to the plateau, seconds.
    k: f64,
    /// Start of the current growth epoch (set on the first CA ACK
    /// after a reduction).
    epoch_start: Option<SimTime>,
    /// TCP-friendly (AIMD) window estimate, segments.
    w_est: f64,
}

impl Cubic {
    /// Initial state: IW = `init_segs` segments, ssthresh unbounded.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        Cubic {
            mss,
            w: f64::from(init_segs),
            ssthresh: u64::MAX,
            cwnd_cap: u64::MAX,
            phase: Phase::SlowStart,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            w_est: 0.0,
        }
    }

    fn mssf(&self) -> f64 {
        f64::from(self.mss)
    }

    fn cap_segs(&self) -> f64 {
        self.cwnd_cap as f64 / self.mssf()
    }

    fn clamp_w(&mut self) {
        let cap = self.cap_segs();
        if self.w > cap {
            self.w = cap;
        }
        if self.w < 1.0 {
            self.w = 1.0;
        }
    }

    /// Enter a new growth epoch at `now` from the current window.
    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.w < self.w_max {
            // K = cbrt((W_max − cwnd) / C): time to climb back to the
            // plateau (RFC 8312 §4.1).
            self.k = ((self.w_max - self.w) / CUBIC_C).cbrt();
        } else {
            // Already past the old plateau: pure convex probing.
            self.k = 0.0;
            self.w_max = self.w;
        }
        self.w_est = self.w;
    }

    /// The multiplicative reduction shared by fast retransmit and RTO.
    fn reduce(&mut self) {
        // Fast convergence (RFC 8312 §4.6): a loss below the old
        // plateau means capacity shrank — release the extra early.
        self.w_max = if self.w < self.w_max {
            self.w * (2.0 - CUBIC_BETA) / 2.0
        } else {
            self.w
        };
        self.ssthresh = ((self.w * CUBIC_BETA * self.mssf()) as u64).max(2 * u64::from(self.mss));
        self.epoch_start = None;
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        ((self.w * self.mssf()) as u64).max(u64::from(self.mss))
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn on_ack(&mut self, ctx: &AckContext) {
        let acked_segs = ctx.acked_bytes as f64 / self.mssf();
        match self.phase {
            Phase::SlowStart => {
                self.w += acked_segs.min(1.0);
                self.clamp_w();
                if self.cwnd() >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                    self.begin_epoch(ctx.now);
                }
            }
            Phase::CongestionAvoidance => {
                if self.epoch_start.is_none() {
                    self.begin_epoch(ctx.now);
                }
                let epoch = self.epoch_start.expect("just set");
                let rtt = ctx.srtt.unwrap_or(SimDuration::from_millis(100)).as_nanos() as f64 / 1e9;
                // Target is the curve one RTT ahead (RFC 8312 §4.1).
                let t = (ctx.now - epoch).as_nanos() as f64 / 1e9 + rtt;
                let target = CUBIC_C * (t - self.k).powi(3) + self.w_max;
                // TCP-friendly region (RFC 8312 §4.2): track what AIMD
                // with the same β would achieve; never grow slower.
                self.w_est += 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * acked_segs / self.w;
                let target = target.max(self.w_est);
                if target > self.w {
                    // Close the gap over roughly one RTT of ACKs.
                    self.w += (target - self.w) / self.w * acked_segs;
                }
                self.clamp_w();
            }
            Phase::FastRecovery => {}
        }
    }

    fn on_triple_dupack(&mut self, _flight: u64, _now: SimTime) -> u64 {
        self.reduce();
        self.w = (self.ssthresh / u64::from(self.mss)) as f64 + 3.0;
        self.phase = Phase::FastRecovery;
        self.ssthresh
    }

    fn on_recovery_dupack(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.w += 1.0;
        }
    }

    fn on_partial_ack(&mut self, acked_bytes: u64) {
        if self.phase == Phase::FastRecovery {
            self.w = (self.w - acked_bytes as f64 / self.mssf()).max(1.0) + 1.0;
        }
    }

    fn on_full_ack(&mut self, now: SimTime) {
        if self.phase == Phase::FastRecovery {
            self.w = (self.ssthresh as f64 / self.mssf()).max(2.0);
            self.phase = Phase::CongestionAvoidance;
            self.begin_epoch(now);
        }
    }

    fn on_timeout(&mut self, _flight: u64, _now: SimTime) {
        self.reduce();
        self.w = 1.0;
        self.phase = Phase::SlowStart;
    }

    fn set_cwnd_cap(&mut self, cap: u64) {
        self.cwnd_cap = cap.max(2 * u64::from(self.mss));
        self.clamp_w();
    }
}

// ---------------------------------------------------------------------
// HighSpeed-style AIMD
// ---------------------------------------------------------------------

/// HighSpeed-TCP-style AIMD: per acked segment the window grows by
/// `max(w^0.4, 1) / w` segments — superlinear in the window, so large
/// windows recover from a halving in far fewer RTTs than Reno — and a
/// loss halves it. This is the `Highspeed` controller of sosistab2
/// rather than RFC 3649's lookup table: one smooth power law with the
/// same qualitative shape.
#[derive(Debug, Clone)]
pub struct Highspeed {
    mss: u32,
    /// Fractional window in segments.
    w: f64,
    ssthresh: u64,
    cwnd_cap: u64,
    phase: Phase,
    /// Growth multiplier on the `w^0.4` term.
    multiplier: f64,
}

impl Highspeed {
    /// Initial state: IW = `init_segs` segments, ssthresh unbounded.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        Highspeed {
            mss,
            w: f64::from(init_segs),
            ssthresh: u64::MAX,
            cwnd_cap: u64::MAX,
            phase: Phase::SlowStart,
            multiplier: 1.0,
        }
    }

    fn mssf(&self) -> f64 {
        f64::from(self.mss)
    }

    fn clamp_w(&mut self) {
        let cap = self.cwnd_cap as f64 / self.mssf();
        if self.w > cap {
            self.w = cap;
        }
        if self.w < 1.0 {
            self.w = 1.0;
        }
    }
}

impl CongestionControl for Highspeed {
    fn cwnd(&self) -> u64 {
        ((self.w * self.mssf()) as u64).max(u64::from(self.mss))
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        self.phase
    }

    fn on_ack(&mut self, ctx: &AckContext) {
        let acked_segs = ctx.acked_bytes as f64 / self.mssf();
        match self.phase {
            Phase::SlowStart => {
                self.w += acked_segs.min(1.0);
                self.clamp_w();
                if self.cwnd() >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                // Per acked segment: w += mult · max(w^0.4, 1) / w.
                self.w += self.multiplier * self.w.powf(0.4).max(1.0) / self.w * acked_segs;
                self.clamp_w();
            }
            Phase::FastRecovery => {}
        }
    }

    fn on_triple_dupack(&mut self, _flight: u64, _now: SimTime) -> u64 {
        // Halve the window (the sosistab2 loss response).
        self.ssthresh = ((self.w * 0.5 * self.mssf()) as u64).max(2 * u64::from(self.mss));
        self.w = (self.ssthresh / u64::from(self.mss)) as f64 + 3.0;
        self.phase = Phase::FastRecovery;
        self.ssthresh
    }

    fn on_recovery_dupack(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.w += 1.0;
        }
    }

    fn on_partial_ack(&mut self, acked_bytes: u64) {
        if self.phase == Phase::FastRecovery {
            self.w = (self.w - acked_bytes as f64 / self.mssf()).max(1.0) + 1.0;
        }
    }

    fn on_full_ack(&mut self, _now: SimTime) {
        if self.phase == Phase::FastRecovery {
            self.w = (self.ssthresh as f64 / self.mssf()).max(2.0);
            self.phase = Phase::CongestionAvoidance;
        }
    }

    fn on_timeout(&mut self, _flight: u64, _now: SimTime) {
        self.ssthresh = ((self.w * 0.5 * self.mssf()) as u64).max(2 * u64::from(self.mss));
        self.w = 1.0;
        self.phase = Phase::SlowStart;
    }

    fn set_cwnd_cap(&mut self, cap: u64) {
        self.cwnd_cap = cap.max(2 * u64::from(self.mss));
        self.clamp_w();
    }
}

// ---------------------------------------------------------------------
// BbrLite
// ---------------------------------------------------------------------

/// [`BbrLite`]'s mode (the `state` field of its [`CcSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrMode {
    /// Exponential rate probing until the bandwidth plateaus.
    Startup = 0,
    /// Drain the startup queue down to one BDP.
    Drain = 1,
    /// Steady state: cycle pacing gain around 1.0.
    ProbeBw = 2,
}

/// Startup pacing/cwnd gain, 2/ln 2 (fills the pipe in log₂(BDP)
/// round trips).
const BBR_STARTUP_GAIN: f64 = 2.885;
/// ProbeBw pacing-gain cycle: probe up, drain, then cruise.
const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth growth below this ratio counts toward "pipe full".
const BBR_FULL_BW_THRESH: f64 = 1.25;
/// Consecutive non-growing samples that declare the pipe full.
const BBR_FULL_BW_COUNT: u32 = 3;
/// Bandwidth max-filter window, in min-RTTs.
const BBR_BW_WINDOW_RTTS: u32 = 10;
/// min-RTT filter window.
const BBR_MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// A BBR-flavoured controller: model the path as (bottleneck
/// bandwidth, min RTT) from the delivery-rate sampler, pace at a gain
/// on the bandwidth estimate, and hold cwnd near a small multiple of
/// the BDP.
///
/// This is deliberately a *model*, not an RFC-faithful BBR (see
/// DESIGN.md §9): startup/drain/probe-bw gain cycling is here, but
/// there is no ProbeRTT state, no round-trip accounting (full-pipe
/// detection counts samples, not rounds), and loss recovery reuses the
/// connection's NewReno-shaped epoch machinery with simple packet
/// conservation. What it shares with real BBR is the property under
/// test: the sender's rate comes from delivery-rate samples, so
/// anything that distorts ACK arrival times — HACK's held-ACK batching
/// above all — feeds straight into its bandwidth model.
#[derive(Debug, Clone)]
pub struct BbrLite {
    mss: u32,
    cwnd: u64,
    /// Window restore point across a recovery episode.
    prior_cwnd: u64,
    ssthresh: u64,
    cwnd_cap: u64,
    mode: BbrMode,
    in_recovery: bool,
    /// Windowed-max bandwidth samples: (expiry-relevant stamp, bw).
    bw_samples: Vec<(SimTime, u64)>,
    /// Current max-filtered bandwidth estimate, bytes/sec.
    bw: u64,
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    /// Best bandwidth seen for full-pipe detection.
    full_bw: u64,
    full_bw_count: u32,
    cycle_index: usize,
    cycle_stamp: SimTime,
    pacing: u64,
}

impl BbrLite {
    /// Initial state: IW = `init_segs` segments, unpaced until the
    /// first delivery-rate sample arrives.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        BbrLite {
            mss,
            cwnd: u64::from(mss) * u64::from(init_segs),
            prior_cwnd: 0,
            ssthresh: u64::MAX,
            cwnd_cap: u64::MAX,
            mode: BbrMode::Startup,
            in_recovery: false,
            bw_samples: Vec::new(),
            bw: 0,
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            full_bw: 0,
            full_bw_count: 0,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            pacing: 0,
        }
    }

    /// Current bandwidth estimate (bytes/sec; 0 = no sample yet).
    pub fn bw_estimate(&self) -> u64 {
        self.bw
    }

    /// Current min-RTT estimate.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Current mode.
    pub fn mode(&self) -> BbrMode {
        self.mode
    }

    fn floor(&self) -> u64 {
        4 * u64::from(self.mss)
    }

    /// Bandwidth-delay product in bytes, if the model has both halves.
    fn bdp(&self) -> Option<u64> {
        let rtt = self.min_rtt?;
        if self.bw == 0 {
            return None;
        }
        Some(
            u64::try_from(u128::from(self.bw) * u128::from(rtt.as_nanos()) / 1_000_000_000)
                .unwrap_or(u64::MAX),
        )
    }

    fn pacing_gain(&self) -> f64 {
        match self.mode {
            BbrMode::Startup => BBR_STARTUP_GAIN,
            BbrMode::Drain => 1.0 / BBR_STARTUP_GAIN,
            BbrMode::ProbeBw => BBR_CYCLE[self.cycle_index],
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.mode {
            BbrMode::Startup | BbrMode::Drain => BBR_STARTUP_GAIN,
            BbrMode::ProbeBw => 2.0,
        }
    }

    fn absorb_sample(&mut self, s: &RateSample, now: SimTime) {
        // min-RTT windowed min: take a new floor immediately, expire
        // the old one after the window.
        let expired = now >= self.min_rtt_stamp + BBR_MIN_RTT_WINDOW;
        if expired || self.min_rtt.is_none_or(|m| s.rtt <= m) {
            self.min_rtt = Some(s.rtt);
            self.min_rtt_stamp = now;
        }
        // Bandwidth windowed max over ~10 min-RTTs (1 s floor keeps
        // the window sane before the RTT model settles).
        let window = self
            .min_rtt
            .map(|m| m * BBR_BW_WINDOW_RTTS.into())
            .unwrap_or(SimDuration::from_secs(1))
            .max(SimDuration::from_millis(100));
        let bw = s.bandwidth();
        self.bw_samples.push((now, bw));
        self.bw_samples.retain(|&(t, _)| now - t <= window);
        self.bw = self.bw_samples.iter().map(|&(_, b)| b).max().unwrap_or(0);
    }

    fn advance_machine(&mut self, flight: u64, now: SimTime) {
        match self.mode {
            BbrMode::Startup => {
                // Full-pipe detection: bandwidth stopped growing by
                // ≥25% for three consecutive samples.
                if self.bw as f64 >= self.full_bw as f64 * BBR_FULL_BW_THRESH {
                    self.full_bw = self.bw;
                    self.full_bw_count = 0;
                } else if self.bw > 0 {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= BBR_FULL_BW_COUNT {
                        self.mode = BbrMode::Drain;
                    }
                }
            }
            BbrMode::Drain => {
                if self.bdp().is_some_and(|bdp| flight <= bdp) {
                    self.mode = BbrMode::ProbeBw;
                    self.cycle_index = 0;
                    self.cycle_stamp = now;
                }
            }
            BbrMode::ProbeBw => {
                let rtt = self.min_rtt.unwrap_or(SimDuration::from_millis(100));
                if now - self.cycle_stamp >= rtt {
                    self.cycle_index = (self.cycle_index + 1) % BBR_CYCLE.len();
                    self.cycle_stamp = now;
                }
            }
        }
    }

    fn update_rate_and_cwnd(&mut self, acked: u64) {
        if self.bw > 0 {
            self.pacing = (self.pacing_gain() * self.bw as f64) as u64;
        }
        let target = match self.bdp() {
            Some(bdp) => ((self.cwnd_gain() * bdp as f64) as u64).max(self.floor()),
            None => 0,
        };
        if target == 0 || self.mode == BbrMode::Startup {
            // No model yet, or still probing: keep exponential growth
            // so the pipe (and the sampler) gets fed.
            self.cwnd = (self.cwnd + acked).max(target);
        } else if target > self.cwnd {
            // Approach the target smoothly, one acked chunk at a time.
            self.cwnd = (self.cwnd + acked).min(target);
        } else {
            self.cwnd = target;
        }
        self.cwnd = self.cwnd.min(self.cwnd_cap).max(self.floor());
    }
}

impl CongestionControl for BbrLite {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn phase(&self) -> Phase {
        if self.in_recovery {
            Phase::FastRecovery
        } else if self.mode == BbrMode::Startup {
            Phase::SlowStart
        } else {
            Phase::CongestionAvoidance
        }
    }

    fn on_ack(&mut self, ctx: &AckContext) {
        if let Some(s) = ctx.sample {
            self.absorb_sample(&s, ctx.now);
            self.advance_machine(ctx.flight, ctx.now);
        }
        self.update_rate_and_cwnd(ctx.acked_bytes);
    }

    fn on_triple_dupack(&mut self, flight: u64, _now: SimTime) -> u64 {
        // BBR does not treat loss as a capacity signal; enter the
        // connection's recovery epoch with packet conservation and
        // restore the window on exit.
        self.prior_cwnd = self.cwnd;
        self.ssthresh = flight.max(self.floor());
        self.cwnd = flight.max(self.floor());
        self.in_recovery = true;
        self.ssthresh
    }

    fn on_recovery_dupack(&mut self) {
        if self.in_recovery {
            self.cwnd = (self.cwnd + u64::from(self.mss)).min(self.cwnd_cap);
        }
    }

    fn on_partial_ack(&mut self, acked_bytes: u64) {
        if self.in_recovery {
            self.cwnd =
                self.cwnd.saturating_sub(acked_bytes).max(self.floor()) + u64::from(self.mss);
        }
    }

    fn on_full_ack(&mut self, _now: SimTime) {
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = self.prior_cwnd.max(self.floor()).min(self.cwnd_cap);
        }
    }

    fn on_timeout(&mut self, _flight: u64, _now: SimTime) {
        // Conservative RTO response; the path model (bw filter,
        // min-RTT) survives — one RTO should not forget the pipe.
        self.prior_cwnd = self.cwnd;
        self.ssthresh = self.cwnd.max(self.floor());
        self.cwnd = u64::from(self.mss);
        self.in_recovery = false;
    }

    fn pacing_rate(&self) -> Option<u64> {
        (self.pacing > 0).then_some(self.pacing)
    }

    fn set_cwnd_cap(&mut self, cap: u64) {
        self.cwnd_cap = cap.max(2 * u64::from(self.mss));
        self.cwnd = self.cwnd.min(self.cwnd_cap);
    }

    fn snapshot(&self) -> Option<CcSnapshot> {
        Some(CcSnapshot {
            state: self.mode as u32,
            pacing_rate: self.pacing,
            bw: self.bw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    fn ack(cc: &mut dyn CongestionControl, bytes: u64) {
        cc.on_ack(&AckContext {
            now: SimTime::ZERO,
            acked_bytes: bytes,
            flight: 0,
            srtt: None,
            sample: None,
        });
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(MSS, 2);
        assert_eq!(cc.cwnd(), 2920);
        assert_eq!(cc.phase(), Phase::SlowStart);
        // Acking a full window in MSS chunks doubles cwnd.
        let w = cc.cwnd();
        for _ in 0..(w / u64::from(MSS)) {
            ack(&mut cc, u64::from(MSS));
        }
        assert_eq!(cc.cwnd(), 2 * w);
    }

    #[test]
    fn ca_adds_one_mss_per_rtt() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(100 * u64::from(MSS), SimTime::ZERO);
        cc.on_full_ack(SimTime::ZERO); // now in CA with cwnd = ssthresh = 50 MSS
        let w = cc.cwnd();
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        // One window's worth of ACKs adds exactly one MSS.
        let mut acked = 0;
        while acked < w {
            ack(&mut cc, u64::from(MSS));
            acked += u64::from(MSS);
        }
        assert!(cc.cwnd() >= w + u64::from(MSS));
        assert!(cc.cwnd() <= w + 2 * u64::from(MSS));
    }

    #[test]
    fn triple_dupack_halves() {
        let mut cc = NewReno::new(MSS, 2);
        let flight = 64 * u64::from(MSS);
        let ss = cc.on_triple_dupack(flight, SimTime::ZERO);
        assert_eq!(ss, 32 * u64::from(MSS));
        assert_eq!(cc.cwnd(), 32 * u64::from(MSS) + 3 * u64::from(MSS));
        assert!(cc.in_recovery());
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = NewReno::new(MSS, 2);
        let ss = cc.on_triple_dupack(u64::from(MSS), SimTime::ZERO);
        assert_eq!(ss, 2 * u64::from(MSS));
    }

    #[test]
    fn recovery_inflation_and_exit() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(10 * u64::from(MSS), SimTime::ZERO);
        let w = cc.cwnd();
        cc.on_recovery_dupack();
        assert_eq!(cc.cwnd(), w + u64::from(MSS));
        cc.on_full_ack(SimTime::ZERO);
        assert_eq!(cc.cwnd(), cc.ssthresh());
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn partial_ack_deflates_and_stays_in_recovery() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(20 * u64::from(MSS), SimTime::ZERO);
        let w = cc.cwnd();
        cc.on_partial_ack(2 * u64::from(MSS));
        assert!(cc.in_recovery());
        assert_eq!(cc.cwnd(), w - 2 * u64::from(MSS) + u64::from(MSS));
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = NewReno::new(MSS, 10);
        ack(&mut cc, u64::from(MSS) * 5);
        cc.on_timeout(40 * u64::from(MSS), SimTime::ZERO);
        assert_eq!(cc.cwnd(), u64::from(MSS));
        assert_eq!(cc.ssthresh(), 20 * u64::from(MSS));
        assert_eq!(cc.phase(), Phase::SlowStart);
    }

    #[test]
    fn slow_start_transitions_to_ca_at_ssthresh() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_timeout(16 * u64::from(MSS), SimTime::ZERO); // ssthresh = 8 MSS, cwnd = 1
        for _ in 0..20 {
            ack(&mut cc, u64::from(MSS));
        }
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        assert!(cc.cwnd() >= cc.ssthresh());
    }

    #[test]
    fn cwnd_cap_saturates_ca_byte_counting() {
        // The unbounded-CA-growth fix: a receive-window-limited flow
        // must stop inflating cwnd at the rwnd-derived cap.
        let cap = 10 * u64::from(MSS);
        let mut cc = NewReno::new(MSS, 2);
        cc.set_cwnd_cap(cap);
        cc.on_triple_dupack(8 * u64::from(MSS), SimTime::ZERO);
        cc.on_full_ack(SimTime::ZERO); // CA at 4 MSS
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        // Years of ACKs: cwnd pins at the cap instead of growing an
        // MSS per window forever.
        for _ in 0..100_000 {
            ack(&mut cc, u64::from(MSS));
        }
        assert_eq!(cc.cwnd(), cap);
    }

    #[test]
    fn cap_applies_to_every_algorithm() {
        let cap = 8 * u64::from(MSS);
        for kind in CcKind::ALL {
            let mut cc = kind.build(MSS, 2);
            cc.set_cwnd_cap(cap);
            // Leave slow start via a timeout (finite ssthresh), then
            // pour ACKs in congestion avoidance.
            cc.on_timeout(4 * u64::from(MSS), SimTime::ZERO);
            for _ in 0..50_000 {
                ack(cc.as_mut(), u64::from(MSS));
            }
            assert!(
                cc.cwnd() <= cap,
                "{}: cwnd {} exceeds cap {cap}",
                kind.name(),
                cc.cwnd()
            );
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in CcKind::ALL {
            assert_eq!(CcKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CcKind::parse("vegas"), None);
    }
}
