//! Reno/NewReno congestion control (RFC 5681 + RFC 6582), byte-counted.
//!
//! The paper's flows are classic loss-based TCP on a shallow-buffered AP:
//! slow start overshoot fills the AP queue, losses halve cwnd, and the
//! ACK clock (which HACK piggybacks) drives everything. NewReno's partial
//! ACK handling matters because an A-MPDU loss burst drops several
//! segments from one window.

/// Congestion-control phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential growth below ssthresh.
    SlowStart,
    /// Additive increase above ssthresh.
    CongestionAvoidance,
    /// NewReno fast recovery, until `recover` is cumulatively ACKed.
    FastRecovery,
}

/// Byte-based NewReno state.
#[derive(Debug, Clone)]
pub struct NewReno {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes acked since the last cwnd increment (CA byte counting).
    acked_in_ca: u64,
    phase: Phase,
}

impl NewReno {
    /// Initial state: IW = `init_segs` segments, ssthresh unbounded.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        NewReno {
            mss,
            cwnd: u64::from(mss) * u64::from(init_segs),
            ssthresh: u64::MAX,
            acked_in_ca: 0,
            phase: Phase::SlowStart,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// In fast recovery?
    pub fn in_recovery(&self) -> bool {
        self.phase == Phase::FastRecovery
    }

    /// A new cumulative ACK advanced snd.una by `acked_bytes` (recovery
    /// exits are handled by [`NewReno::on_full_ack`] /
    /// [`NewReno::on_partial_ack`]).
    pub fn on_ack(&mut self, acked_bytes: u64) {
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += acked_bytes.min(u64::from(self.mss));
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                    self.acked_in_ca = 0;
                }
            }
            Phase::CongestionAvoidance => {
                // cwnd += MSS per cwnd of acked bytes.
                self.acked_in_ca += acked_bytes;
                if self.acked_in_ca >= self.cwnd {
                    self.acked_in_ca -= self.cwnd;
                    self.cwnd += u64::from(self.mss);
                }
            }
            Phase::FastRecovery => {
                // Window inflation handled via on_dupack/partial ack.
            }
        }
    }

    /// Third duplicate ACK: enter fast recovery. `flight` is the current
    /// FlightSize in bytes. Returns the new ssthresh.
    pub fn on_triple_dupack(&mut self, flight: u64) -> u64 {
        self.ssthresh = (flight / 2).max(2 * u64::from(self.mss));
        self.cwnd = self.ssthresh + 3 * u64::from(self.mss);
        self.phase = Phase::FastRecovery;
        self.ssthresh
    }

    /// A further duplicate ACK during recovery inflates the window.
    pub fn on_recovery_dupack(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd += u64::from(self.mss);
        }
    }

    /// A partial ACK during recovery (NewReno): deflate by the bytes
    /// acked, add back one MSS, stay in recovery.
    pub fn on_partial_ack(&mut self, acked_bytes: u64) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self
                .cwnd
                .saturating_sub(acked_bytes)
                .max(u64::from(self.mss))
                + u64::from(self.mss);
        }
    }

    /// The recovery point was cumulatively ACKed: exit recovery with
    /// cwnd = ssthresh.
    pub fn on_full_ack(&mut self) {
        if self.phase == Phase::FastRecovery {
            self.cwnd = self.ssthresh.max(2 * u64::from(self.mss));
            self.phase = Phase::CongestionAvoidance;
            self.acked_in_ca = 0;
        }
    }

    /// Retransmission timeout: collapse to one segment, halve ssthresh
    /// from FlightSize, restart slow start.
    pub fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * u64::from(self.mss));
        self.cwnd = u64::from(self.mss);
        self.phase = Phase::SlowStart;
        self.acked_in_ca = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(MSS, 2);
        assert_eq!(cc.cwnd(), 2920);
        assert_eq!(cc.phase(), Phase::SlowStart);
        // Acking a full window in MSS chunks doubles cwnd.
        let w = cc.cwnd();
        for _ in 0..(w / u64::from(MSS)) {
            cc.on_ack(u64::from(MSS));
        }
        assert_eq!(cc.cwnd(), 2 * w);
    }

    #[test]
    fn ca_adds_one_mss_per_rtt() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(100 * u64::from(MSS));
        cc.on_full_ack(); // now in CA with cwnd = ssthresh = 50 MSS
        let w = cc.cwnd();
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        // One window's worth of ACKs adds exactly one MSS.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(u64::from(MSS));
            acked += u64::from(MSS);
        }
        assert!(cc.cwnd() >= w + u64::from(MSS));
        assert!(cc.cwnd() <= w + 2 * u64::from(MSS));
    }

    #[test]
    fn triple_dupack_halves() {
        let mut cc = NewReno::new(MSS, 2);
        let flight = 64 * u64::from(MSS);
        let ss = cc.on_triple_dupack(flight);
        assert_eq!(ss, 32 * u64::from(MSS));
        assert_eq!(cc.cwnd(), 32 * u64::from(MSS) + 3 * u64::from(MSS));
        assert!(cc.in_recovery());
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = NewReno::new(MSS, 2);
        let ss = cc.on_triple_dupack(u64::from(MSS));
        assert_eq!(ss, 2 * u64::from(MSS));
    }

    #[test]
    fn recovery_inflation_and_exit() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(10 * u64::from(MSS));
        let w = cc.cwnd();
        cc.on_recovery_dupack();
        assert_eq!(cc.cwnd(), w + u64::from(MSS));
        cc.on_full_ack();
        assert_eq!(cc.cwnd(), cc.ssthresh());
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn partial_ack_deflates_and_stays_in_recovery() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_triple_dupack(20 * u64::from(MSS));
        let w = cc.cwnd();
        cc.on_partial_ack(2 * u64::from(MSS));
        assert!(cc.in_recovery());
        assert_eq!(cc.cwnd(), w - 2 * u64::from(MSS) + u64::from(MSS));
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = NewReno::new(MSS, 10);
        cc.on_ack(u64::from(MSS) * 5);
        cc.on_timeout(40 * u64::from(MSS));
        assert_eq!(cc.cwnd(), u64::from(MSS));
        assert_eq!(cc.ssthresh(), 20 * u64::from(MSS));
        assert_eq!(cc.phase(), Phase::SlowStart);
    }

    #[test]
    fn slow_start_transitions_to_ca_at_ssthresh() {
        let mut cc = NewReno::new(MSS, 2);
        cc.on_timeout(16 * u64::from(MSS)); // ssthresh = 8 MSS, cwnd = 1
        for _ in 0..20 {
            cc.on_ack(u64::from(MSS));
        }
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        assert!(cc.cwnd() >= cc.ssthresh());
    }
}
