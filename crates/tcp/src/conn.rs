//! A sans-IO TCP connection endpoint: handshake, pluggable congestion
//! control, RTO retransmission, delayed ACKs, timestamps and SACK
//! generation.
//!
//! Payload bytes are synthetic (only lengths travel), which means
//! retransmission needs no send buffer — a segment is regenerated from
//! sequence arithmetic. Everything else is real TCP: the ACK clock, the
//! congestion window, duplicate-ACK fast retransmit, NewReno partial-ACK
//! recovery, and RFC 6298 timeouts. These dynamics are precisely what
//! the HACK paper's cross-layer pathologies (§3.2, §3.4) interact with,
//! so they are modelled faithfully.
//!
//! Congestion control is a [`CongestionControl`] trait object selected
//! by [`TcpConfig::cc`]. The connection feeds it a per-segment
//! delivery-rate sampler (the BBR draft's `delivered`/`delivered_time`
//! algorithm) and honours its optional pacing rate through a
//! deterministic sim-time pacer: segment release times are computed
//! with integer arithmetic from the rate, so identical seeds still
//! yield identical traces.

use std::collections::VecDeque;

use hack_sim::{SimDuration, SimTime};

use crate::cc::{AckContext, CcKind, CcSnapshot, CongestionControl, RateSample};
use crate::rto::RtoEstimator;
use crate::seq::TcpSeq;
use crate::wire::{flags, FiveTuple, Ipv4Packet, TcpOption, TcpOptions, TcpSegment, Transport};

/// Endpoint configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Generate one ACK per two in-order segments (RFC 1122 delayed ACK).
    pub delayed_ack: bool,
    /// Delayed-ACK timer.
    pub delack_timeout: SimDuration,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: u32,
    /// Receive window in bytes (advertised, scaled).
    pub rcv_window: u32,
    /// Window-scale shift we advertise.
    pub wscale: u8,
    /// Negotiate and use RFC 7323 timestamps.
    pub use_timestamps: bool,
    /// Generate SACK blocks for out-of-order data.
    pub use_sack: bool,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout.
    pub max_rto: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CcKind,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            delayed_ack: true,
            delack_timeout: SimDuration::from_millis(40),
            init_cwnd_segs: 3,
            rcv_window: 1 << 20,
            wscale: 6,
            use_timestamps: true,
            use_sack: true,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            cc: CcKind::Reno,
        }
    }
}

/// Connection lifecycle states (no FIN teardown: experiment flows run to
/// a byte budget or the end of the simulation, as iperf does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open, awaiting SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Data may flow.
    Established,
}

/// Endpoint statistics.
#[derive(Debug, Default, Clone)]
pub struct TcpStats {
    /// Data segments transmitted (including retransmissions).
    pub data_segments_sent: u64,
    /// Retransmitted data segments.
    pub retransmits: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Pure ACK segments transmitted.
    pub acks_sent: u64,
    /// Duplicate ACKs received.
    pub dupacks_received: u64,
    /// Payload bytes delivered in order to the application.
    pub bytes_delivered: u64,
    /// Payload bytes cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// RTT measurements taken by the delivery-rate sampler (Karn-safe:
    /// retransmitted segments never contribute).
    pub rtt_samples: u64,
    /// Sum of those RTT samples in microseconds; the mean RTT is
    /// `rtt_sum_us / rtt_samples`.
    pub rtt_sum_us: u64,
}

/// One sent segment's sampler bookkeeping (the BBR draft's per-packet
/// `P.*` snapshot), kept until the segment is cumulatively ACKed.
#[derive(Debug, Clone, Copy)]
struct SegRecord {
    /// One past the segment's last sequence number.
    end: TcpSeq,
    /// When this segment was (first) sent.
    sent_at: SimTime,
    /// Connection `delivered` at send time.
    delivered_at_send: u64,
    /// Connection `delivered_time` at send time.
    delivered_time_at_send: SimTime,
    /// Connection `first_sent_time` at send time.
    first_sent_at: SimTime,
    /// Retransmitted since: excluded from rate/RTT sampling (Karn).
    retransmitted: bool,
}

/// How much the application wants to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendBudget {
    /// Nothing (pure receiver).
    None,
    /// A fixed transfer size in bytes.
    Bytes(u64),
    /// Saturating sender (iperf-style).
    Unlimited,
}

/// A TCP endpoint.
#[derive(Debug)]
pub struct Connection {
    cfg: TcpConfig,
    state: TcpState,
    tuple: FiveTuple,
    ident: u16,

    // ---- send side ----
    iss: TcpSeq,
    snd_una: TcpSeq,
    snd_nxt: TcpSeq,
    /// Highest sequence ever sent (for go-back-N after RTO).
    snd_max: TcpSeq,
    /// Peer's advertised window (scaled to bytes).
    snd_wnd: u64,
    /// Largest window the peer has ever advertised (cwnd-cap input).
    max_peer_wnd: u64,
    peer_wscale: u8,
    peer_mss: u32,
    cc: Box<dyn CongestionControl + Send>,
    rto: RtoEstimator,
    rto_deadline: Option<SimTime>,
    dupacks: u32,
    /// NewReno recovery point (valid while in recovery).
    recover: TcpSeq,
    /// Peer-reported SACK ranges above snd_una: sorted, disjoint. Used
    /// for SACK-enhanced recovery (retransmit holes, not just snd_una).
    sacked: Vec<(TcpSeq, TcpSeq)>,
    /// Highest sequence retransmitted during the current recovery epoch
    /// (so each hole is retransmitted once per epoch).
    rtx_next: TcpSeq,
    budget: SendBudget,
    /// Consecutive established-state RTOs with no intervening forward
    /// ACK progress — the supervisor's ACK-clock-stall signal.
    rto_streak: u32,

    // ---- delivery-rate sampler (BBR draft, per-segment) ----
    /// Total payload bytes cumulatively delivered (`C.delivered`).
    delivered: u64,
    /// When `delivered` last advanced (`C.delivered_time`).
    delivered_time: SimTime,
    /// Send time anchoring the current sampling epoch
    /// (`C.first_sent_time`).
    first_sent_time: SimTime,
    /// Per-segment send records awaiting cumulative acknowledgment.
    seg_records: VecDeque<SegRecord>,
    /// Most recent delivery-rate sample.
    last_sample: Option<RateSample>,

    // ---- pacer ----
    /// Earliest time the pacer releases the next segment.
    pace_next: SimTime,
    /// Armed when pacing (not window/data) is what blocked `poll_send`.
    pace_deadline: Option<SimTime>,
    /// Last traced controller snapshot (change detection).
    last_cc_snap: Option<CcSnapshot>,

    // ---- receive side ----
    rcv_nxt: TcpSeq,
    /// Out-of-order ranges: (start, end) sorted, non-overlapping.
    ooo: Vec<(TcpSeq, TcpSeq)>,
    delack_segments: u32,
    delack_deadline: Option<SimTime>,
    ts_recent: u32,
    peer_ts: bool,
    peer_sack: bool,

    stats: TcpStats,
    trace: hack_trace::TraceHandle,
    trace_node: u32,
}

fn now_ms(now: SimTime) -> u32 {
    (now.as_nanos() / 1_000_000) as u32
}

impl Connection {
    /// An active opener: returns the endpoint and the SYN to transmit.
    pub fn client(
        cfg: TcpConfig,
        tuple: FiveTuple,
        iss: u32,
        now: SimTime,
    ) -> (Self, Vec<Ipv4Packet>) {
        let mut c = Connection::new(cfg, tuple, iss);
        c.state = TcpState::SynSent;
        let syn = c.make_syn(false, now);
        c.snd_nxt = c.iss + 1;
        c.snd_max = c.snd_nxt;
        c.rto_deadline = Some(now + c.rto.rto());
        (c, vec![syn])
    }

    /// A passive opener (listening server side of one connection).
    pub fn server(cfg: TcpConfig, tuple: FiveTuple, iss: u32) -> Self {
        let mut c = Connection::new(cfg, tuple, iss);
        c.state = TcpState::Listen;
        c
    }

    fn new(cfg: TcpConfig, tuple: FiveTuple, iss: u32) -> Self {
        let iss = TcpSeq(iss);
        Connection {
            cc: cfg.cc.build(cfg.mss, cfg.init_cwnd_segs),
            rto: RtoEstimator::new(cfg.min_rto, cfg.max_rto),
            cfg,
            state: TcpState::Listen,
            tuple,
            ident: 1,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 65_535,
            max_peer_wnd: 0,
            peer_wscale: 0,
            peer_mss: 536,
            rto_deadline: None,
            dupacks: 0,
            recover: iss,
            sacked: Vec::new(),
            rtx_next: iss,
            budget: SendBudget::None,
            rto_streak: 0,
            delivered: 0,
            delivered_time: SimTime::ZERO,
            first_sent_time: SimTime::ZERO,
            seg_records: VecDeque::new(),
            last_sample: None,
            pace_next: SimTime::ZERO,
            pace_deadline: None,
            last_cc_snap: None,
            rcv_nxt: TcpSeq(0),
            ooo: Vec::new(),
            delack_segments: 0,
            delack_deadline: None,
            ts_recent: 0,
            peer_ts: false,
            peer_sack: false,
            stats: TcpStats::default(),
            trace: hack_trace::TraceHandle::off(),
            trace_node: u32::MAX,
        }
    }

    /// Install the structured-event trace handle; `node` identifies this
    /// endpoint in the trace (station id for wireless hosts, `u32::MAX`
    /// for wired ones).
    pub fn set_trace(&mut self, trace: hack_trace::TraceHandle, node: u32) {
        self.trace = trace;
        self.trace_node = node;
    }

    /// Emit a cwnd/ssthresh sample if congestion state moved since
    /// `prev = (cwnd, ssthresh)`, plus a `CcStateChange` when a
    /// rate-based controller's reportable state moved.
    fn trace_cc(&mut self, prev: (u64, u64), now: SimTime) {
        if !self.trace.enabled() {
            return;
        }
        let cur = (self.cc.cwnd(), self.cc.ssthresh());
        if cur != prev {
            self.trace.emit(
                now.as_nanos(),
                self.trace_node,
                hack_trace::Event::TcpCwnd {
                    cwnd: cur.0,
                    ssthresh: cur.1,
                },
            );
        }
        if let Some(snap) = self.cc.snapshot() {
            if self.last_cc_snap != Some(snap) {
                self.last_cc_snap = Some(snap);
                self.trace.emit(
                    now.as_nanos(),
                    self.trace_node,
                    hack_trace::Event::CcStateChange {
                        state: snap.state,
                        pacing: snap.pacing_rate,
                        bw: snap.bw,
                    },
                );
            }
        }
    }

    // ---- accessors -----------------------------------------------------

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The connection's 5-tuple (local perspective).
    pub fn tuple(&self) -> FiveTuple {
        self.tuple
    }

    /// Statistics.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Consecutive established-state RTOs since the last forward ACK
    /// progress (0 while the ACK clock is ticking).
    pub fn rto_streak(&self) -> u32 {
        self.rto_streak
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The congestion controller (read-only).
    pub fn congestion_control(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Total payload bytes the delivery-rate sampler has counted as
    /// delivered (monotone non-decreasing).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Most recent delivery-rate sample, if the sampler has produced
    /// one.
    pub fn last_rate_sample(&self) -> Option<RateSample> {
        self.last_sample
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        u64::from(self.snd_max - self.snd_una)
    }

    /// Payload bytes cumulatively acknowledged by the peer.
    pub fn bytes_acked(&self) -> u64 {
        self.stats.bytes_acked
    }

    /// Payload bytes delivered in order to the local application.
    pub fn bytes_delivered(&self) -> u64 {
        self.stats.bytes_delivered
    }

    /// True when a byte-budgeted transfer has been fully sent *and*
    /// acknowledged.
    pub fn send_complete(&self) -> bool {
        match self.budget {
            SendBudget::Bytes(total) => self.stats.bytes_acked >= total,
            SendBudget::None => true,
            SendBudget::Unlimited => false,
        }
    }

    /// Set the application send budget (call before or after the
    /// handshake; data flows once established and window permits).
    pub fn set_budget(&mut self, budget: SendBudget) {
        self.budget = budget;
    }

    /// Grow the send budget by `extra` bytes on an established
    /// connection — the persistent-connection path for short-flow
    /// workloads: the next application "request" rides the same
    /// connection (and ROHC context) instead of a fresh handshake.
    ///
    /// The budget becomes cumulative [`SendBudget::Bytes`]: a `None`
    /// budget is re-anchored at the bytes already sent, `Unlimited`
    /// is left alone (there is nothing to extend). Returns the new
    /// cumulative byte total (0 when unlimited). Call `poll_send`
    /// afterwards to start the new data moving.
    pub fn extend_budget(&mut self, extra: u64) -> u64 {
        let sent = u64::from(self.snd_nxt - self.iss).saturating_sub(1);
        match self.budget {
            SendBudget::Bytes(total) => {
                let new = total.saturating_add(extra);
                self.budget = SendBudget::Bytes(new);
                new
            }
            SendBudget::None => {
                let new = sent.saturating_add(extra);
                self.budget = SendBudget::Bytes(new);
                new
            }
            SendBudget::Unlimited => 0,
        }
    }

    /// Pin the RTO's exponential backoff at no more than `shift`
    /// doublings for the duration of a link blackout with a known,
    /// bounded cause (an AP handoff). Without the clamp, every timeout
    /// during the blackout doubles the RTO, so the first retransmission
    /// after re-association can be tens of seconds out; with it, the
    /// flow probes again promptly once the new association is up.
    pub fn clamp_rto_backoff(&mut self, shift: u32) {
        self.rto.clamp_backoff(shift);
    }

    /// Release the handoff RTO clamp; Karn backoff resumes normally.
    pub fn unclamp_rto_backoff(&mut self) {
        self.rto.unclamp_backoff();
    }

    /// Earliest pending timer deadline, if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        [self.rto_deadline, self.delack_deadline, self.pace_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    // ---- delivery-rate sampler -----------------------------------------

    /// Record the peer's advertised window and refresh the controller's
    /// cwnd cap when it grows: cwnd beyond ~2× the largest window the
    /// peer has ever offered can never convert into flight, so letting
    /// it grow further is pure state inflation.
    fn note_peer_wnd(&mut self, wnd: u64) {
        self.snd_wnd = wnd;
        if wnd > self.max_peer_wnd {
            self.max_peer_wnd = wnd;
            let cap = (2 * wnd).max(4 * u64::from(self.cfg.mss));
            self.cc.set_cwnd_cap(cap);
        }
    }

    /// Bookkeep a freshly sent (never-before-transmitted) segment.
    fn note_sent(&mut self, seq: TcpSeq, len: u32, now: SimTime) {
        if self.snd_una == self.snd_max {
            // Pipe was empty: restart the delivery-rate clock so idle
            // gaps never count as sampling interval.
            self.first_sent_time = now;
            self.delivered_time = now;
        }
        self.seg_records.push_back(SegRecord {
            end: seq + len,
            sent_at: now,
            delivered_at_send: self.delivered,
            delivered_time_at_send: self.delivered_time,
            first_sent_at: self.first_sent_time,
            retransmitted: false,
        });
    }

    /// Mark sampler records overlapping `[start, end)` as retransmitted
    /// (Karn: an eventual ACK can't be attributed to one transmission).
    fn mark_retransmitted(&mut self, start: TcpSeq, end: TcpSeq) {
        // Records only store their end; original sends and
        // retransmissions share the same MSS split, so a record is
        // covered exactly when its end falls in (start, end].
        for r in &mut self.seg_records {
            if r.end.gt(start) && r.end.le(end) {
                r.retransmitted = true;
            }
        }
    }

    /// Advance the sampler for a cumulative ACK up to `ack` covering
    /// `acked` new bytes; returns a delivery-rate sample when one can
    /// be taken.
    ///
    /// The interval is `max(send_elapsed, ack_elapsed)` per the BBR
    /// delivery-rate draft: when HACK (or any ACK compression) releases
    /// a burst of held ACKs at one instant, `ack_elapsed` collapses but
    /// `send_elapsed` still spans the real transmission times, so the
    /// bandwidth estimate cannot inflate above the send rate.
    fn sample_on_ack(&mut self, ack: TcpSeq, acked: u64, now: SimTime) -> Option<RateSample> {
        self.delivered += acked;
        self.delivered_time = now;
        let mut best: Option<SegRecord> = None;
        while let Some(front) = self.seg_records.front() {
            if !front.end.le(ack) {
                break;
            }
            let r = self.seg_records.pop_front().expect("front exists");
            if !r.retransmitted {
                // Keep the newest fully-ACKed, never-retransmitted
                // record as the sampled segment P.
                best = Some(r);
            }
        }
        let p = best?;
        self.first_sent_time = p.sent_at;
        let send_elapsed = p.sent_at.saturating_duration_since(p.first_sent_at);
        let ack_elapsed = now.saturating_duration_since(p.delivered_time_at_send);
        let interval = send_elapsed.max(ack_elapsed);
        if interval.is_zero() {
            return None;
        }
        let rtt = now.saturating_duration_since(p.sent_at);
        let sample = RateSample {
            delivered: self.delivered - p.delivered_at_send,
            interval,
            rtt,
        };
        self.stats.rtt_samples += 1;
        self.stats.rtt_sum_us += rtt.as_micros();
        self.last_sample = Some(sample);
        Some(sample)
    }

    // ---- segment construction ------------------------------------------

    fn base_options(&self, now: SimTime) -> TcpOptions {
        let mut options = TcpOptions::new();
        if self.cfg.use_timestamps && self.peer_ts {
            options.push(TcpOption::Timestamps {
                tsval: now_ms(now),
                tsecr: self.ts_recent,
            });
        }
        options
    }

    fn window_field(&self) -> u16 {
        let scaled = u64::from(self.cfg.rcv_window) >> self.cfg.wscale;
        u16::try_from(scaled).unwrap_or(u16::MAX)
    }

    fn wrap(&mut self, seg: TcpSegment) -> Ipv4Packet {
        let ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        Ipv4Packet {
            src: self.tuple.src_ip,
            dst: self.tuple.dst_ip,
            ident,
            ttl: 64,
            transport: Transport::Tcp(seg),
        }
    }

    fn make_syn(&mut self, is_synack: bool, now: SimTime) -> Ipv4Packet {
        let mut options = TcpOptions::new();
        options.push(TcpOption::Mss(
            u16::try_from(self.cfg.mss).unwrap_or(u16::MAX),
        ));
        options.push(TcpOption::WindowScale(self.cfg.wscale));
        if self.cfg.use_sack {
            options.push(TcpOption::SackPermitted);
        }
        if self.cfg.use_timestamps {
            options.push(TcpOption::Timestamps {
                tsval: now_ms(now),
                tsecr: if is_synack { self.ts_recent } else { 0 },
            });
        }
        let seg = TcpSegment {
            src_port: self.tuple.src_port,
            dst_port: self.tuple.dst_port,
            seq: self.iss,
            ack: if is_synack { self.rcv_nxt } else { TcpSeq(0) },
            flags: if is_synack {
                flags::SYN | flags::ACK
            } else {
                flags::SYN
            },
            window: self.window_field(),
            options,
            payload_len: 0,
        };
        self.wrap(seg)
    }

    fn make_ack(&mut self, now: SimTime) -> Ipv4Packet {
        let mut options = self.base_options(now);
        if self.cfg.use_sack && self.peer_sack && !self.ooo.is_empty() {
            let blocks: Vec<(TcpSeq, TcpSeq)> = self.ooo.iter().take(3).copied().collect();
            options.push(TcpOption::Sack(blocks));
        }
        self.stats.acks_sent += 1;
        self.delack_segments = 0;
        self.delack_deadline = None;
        let seg = TcpSegment {
            src_port: self.tuple.src_port,
            dst_port: self.tuple.dst_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: flags::ACK,
            window: self.window_field(),
            options,
            payload_len: 0,
        };
        self.wrap(seg)
    }

    fn make_data(&mut self, seq: TcpSeq, len: u32, now: SimTime) -> Ipv4Packet {
        let options = self.base_options(now);
        self.stats.data_segments_sent += 1;
        if seq.lt(self.snd_max) {
            self.stats.retransmits += 1;
            self.mark_retransmitted(seq, seq + len);
        } else {
            self.note_sent(seq, len, now);
        }
        let seg = TcpSegment {
            src_port: self.tuple.src_port,
            dst_port: self.tuple.dst_port,
            seq,
            ack: self.rcv_nxt,
            flags: flags::ACK | flags::PSH,
            window: self.window_field(),
            options,
            payload_len: len,
        };
        self.wrap(seg)
    }

    // ---- sending -------------------------------------------------------

    /// Total payload bytes the application still wants beyond snd_nxt.
    fn unsent_bytes(&self) -> u64 {
        let sent = u64::from(self.snd_nxt - self.iss).saturating_sub(1); // SYN consumed 1
        match self.budget {
            SendBudget::None => 0,
            SendBudget::Unlimited => u64::MAX,
            SendBudget::Bytes(total) => total.saturating_sub(sent),
        }
    }

    /// Emit as much data as cwnd, the peer window, and the app budget
    /// allow. Also used to (re)send after RTO go-back.
    pub fn poll_send(&mut self, now: SimTime) -> Vec<Ipv4Packet> {
        if self.state != TcpState::Established {
            return Vec::new();
        }
        self.pace_deadline = None;
        let mut out = Vec::new();
        loop {
            let window = self.cc.cwnd().min(self.snd_wnd);
            let in_flight = u64::from(self.snd_nxt - self.snd_una);
            if in_flight >= window {
                break;
            }
            let room = window - in_flight;
            // Bytes between snd_nxt and snd_max are retransmittable
            // without consulting the app budget.
            let retransmittable = u64::from(self.snd_max - self.snd_nxt);
            let available = if retransmittable > 0 {
                retransmittable
            } else {
                self.unsent_bytes()
            };
            if available == 0 {
                break;
            }
            let len = available
                .min(room)
                .min(u64::from(self.cfg.mss.min(self.peer_mss))) as u32;
            if len == 0 {
                break;
            }
            // Deterministic pacer: when the controller asks for a rate,
            // no segment is released before its scheduled slot. The
            // slot arithmetic is integer-exact, so pacing preserves
            // trace determinism.
            if let Some(rate) = self.cc.pacing_rate() {
                if rate > 0 {
                    if now < self.pace_next {
                        self.pace_deadline = Some(self.pace_next);
                        break;
                    }
                    let gap_ns = (u128::from(len) * 1_000_000_000).div_ceil(u128::from(rate));
                    let gap = SimDuration::from_nanos(u64::try_from(gap_ns).unwrap_or(u64::MAX));
                    self.pace_next = self.pace_next.max(now).saturating_add(gap);
                }
            }
            let seq = self.snd_nxt;
            out.push(self.make_data(seq, len, now));
            self.snd_nxt += len;
            if self.snd_nxt.gt(self.snd_max) {
                self.snd_max = self.snd_nxt;
            }
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto.rto());
        }
        out
    }

    // ---- receiving -----------------------------------------------------

    /// Process one inbound packet; returns packets to transmit.
    pub fn on_packet(&mut self, pkt: &Ipv4Packet, now: SimTime) -> Vec<Ipv4Packet> {
        let Transport::Tcp(seg) = &pkt.transport else {
            return Vec::new();
        };
        // Sanity: addressed to us on the right ports.
        debug_assert_eq!(pkt.dst, self.tuple.src_ip);
        debug_assert_eq!(seg.dst_port, self.tuple.src_port);

        match self.state {
            TcpState::Listen => self.on_listen(seg, now),
            TcpState::SynSent => self.on_syn_sent(seg, now),
            TcpState::SynReceived => self.on_syn_received(seg, now),
            TcpState::Established => self.on_established(seg, now),
        }
    }

    fn learn_peer_options(&mut self, seg: &TcpSegment) {
        for opt in &seg.options {
            match opt {
                TcpOption::Mss(m) => self.peer_mss = u32::from(*m),
                TcpOption::WindowScale(s) => self.peer_wscale = *s,
                TcpOption::SackPermitted => self.peer_sack = true,
                TcpOption::Timestamps { tsval, .. } => {
                    self.peer_ts = true;
                    self.ts_recent = *tsval;
                }
                TcpOption::Sack(_) => {}
            }
        }
    }

    fn on_listen(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        if seg.flags & flags::SYN == 0 {
            return Vec::new();
        }
        self.learn_peer_options(seg);
        self.rcv_nxt = seg.seq + 1;
        self.state = TcpState::SynReceived;
        let synack = self.make_syn(true, now);
        self.snd_nxt = self.iss + 1;
        self.snd_max = self.snd_nxt;
        self.rto_deadline = Some(now + self.rto.rto());
        vec![synack]
    }

    fn on_syn_sent(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        if seg.flags & (flags::SYN | flags::ACK) != (flags::SYN | flags::ACK) {
            return Vec::new();
        }
        if seg.ack != self.snd_nxt {
            return Vec::new();
        }
        self.learn_peer_options(seg);
        self.rcv_nxt = seg.seq + 1;
        self.snd_una = seg.ack;
        self.note_peer_wnd(u64::from(seg.window) << self.peer_wscale);
        self.state = TcpState::Established;
        self.rto_deadline = None;
        let mut out = vec![self.make_ack(now)];
        out.extend(self.poll_send(now));
        out
    }

    fn on_syn_received(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        if seg.flags & flags::ACK == 0 || seg.ack != self.snd_nxt {
            return Vec::new();
        }
        self.snd_una = seg.ack;
        self.note_peer_wnd(u64::from(seg.window) << self.peer_wscale);
        self.state = TcpState::Established;
        self.rto_deadline = None;
        if let Some((tsval, _)) = seg.timestamps() {
            self.ts_recent = tsval;
        }
        // The handshake ACK may carry data (rare here); process it.
        if seg.payload_len > 0 {
            self.on_established(seg, now)
        } else {
            self.poll_send(now)
        }
    }

    fn on_established(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        let mut out = Vec::new();

        // ---- sender-side ACK processing ----
        if seg.flags & flags::ACK != 0 {
            out.extend(self.process_ack(seg, now));
        }

        // ---- receiver-side data processing ----
        if seg.payload_len > 0 {
            out.extend(self.process_data(seg, now));
        }

        out
    }

    /// Fold the segment's SACK blocks into the scoreboard (sorted,
    /// merged, clipped below snd_una).
    fn note_sack(&mut self, seg: &TcpSegment) {
        let Some(blocks) = seg.sack_blocks() else {
            return;
        };
        for &(s, e) in blocks {
            if e.le(self.snd_una) || s.ge(e) || e.gt(self.snd_max) {
                continue;
            }
            let s = if s.lt(self.snd_una) { self.snd_una } else { s };
            self.sacked.push((s, e));
        }
        self.sacked.sort_by_key(|&(s, _)| s.dist_from(self.snd_una));
        let mut merged: Vec<(TcpSeq, TcpSeq)> = Vec::with_capacity(self.sacked.len());
        for &(s, e) in &self.sacked {
            if let Some(last) = merged.last_mut() {
                if s.le(last.1) {
                    if e.gt(last.1) {
                        last.1 = e;
                    }
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.sacked = merged;
    }

    /// Drop scoreboard state at or below the new cumulative ACK.
    fn trim_sack(&mut self) {
        let una = self.snd_una;
        self.sacked.retain(|&(_, e)| e.gt(una));
        for r in &mut self.sacked {
            if r.0.lt(una) {
                r.0 = una;
            }
        }
    }

    /// The first unSACKed hole at or after `from` (below `bound`):
    /// `(start, len)` bounded by one MSS and the next SACKed range.
    /// `bound` is the recovery point — data sent after recovery began is
    /// not "missing", merely not yet acknowledged (RFC 6675's HighData).
    fn next_hole(&self, from: TcpSeq, bound: TcpSeq) -> Option<(TcpSeq, u32)> {
        // A hole only *qualifies* below the start of the highest SACKed
        // range: data between the advertised SACK frontier and the
        // recovery point is merely not-yet-reported, not lost (the
        // RFC 6675 IsLost idea). Each duplicate ACK advances the
        // frontier, releasing the next holes.
        let frontier = self.sacked.last().map(|&(s, _)| s)?;
        let bound = if frontier.lt(bound) { frontier } else { bound };
        let mut start = if from.lt(self.snd_una) {
            self.snd_una
        } else {
            from
        };
        loop {
            if start.ge(bound) {
                return None;
            }
            // Inside a SACKed range? Skip past it.
            match self
                .sacked
                .iter()
                .find(|&&(s, e)| start.ge(s) && start.lt(e))
            {
                Some(&(_, e)) => start = e,
                None => break,
            }
        }
        // Hole extends to the next SACKed range start or the bound.
        let end = self
            .sacked
            .iter()
            .map(|&(s, _)| s)
            .filter(|s| s.gt(start))
            .min_by_key(|s| s.dist_from(start))
            .unwrap_or(bound);
        let len = (end - start).min(self.cfg.mss);
        (len > 0).then_some((start, len))
    }

    /// During SACK recovery, retransmit the next not-yet-retransmitted
    /// hole if one exists; otherwise fall through to new data.
    fn sack_retransmit(&mut self, now: SimTime, out: &mut Vec<Ipv4Packet>) {
        if self.sacked.is_empty() {
            // Plain NewReno behaviour: nothing beyond the fast
            // retransmit of snd_una (done at recovery entry).
            return;
        }
        if let Some((seq, len)) = self.next_hole(self.rtx_next, self.recover) {
            let pkt = self.make_data(seq, len, now);
            out.push(pkt);
            self.rtx_next = seq + len;
        }
    }

    fn process_ack(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        let mut out = Vec::new();
        let ack = seg.ack;
        let new_wnd = u64::from(seg.window) << self.peer_wscale;
        self.note_sack(seg);

        if ack.gt(self.snd_una) && ack.le(self.snd_max) {
            let acked = u64::from(ack - self.snd_una);
            self.snd_una = ack;
            self.rto_streak = 0;
            if self.snd_nxt.lt(self.snd_una) {
                self.snd_nxt = self.snd_una;
            }
            self.stats.bytes_acked += acked;
            self.note_peer_wnd(new_wnd);
            self.trim_sack();

            // RTT sample from the timestamp echo (feeds the RTO
            // estimator; the sampler's per-segment RTT feeds the
            // congestion controller and stats, never the RTO).
            if let Some((_, tsecr)) = seg.timestamps() {
                if tsecr != 0 {
                    let rtt_ms = now_ms(now).wrapping_sub(tsecr);
                    if rtt_ms < 60_000 {
                        self.rto
                            .on_measurement(SimDuration::from_millis(u64::from(rtt_ms)));
                    }
                }
            }

            let sample = self.sample_on_ack(ack, acked, now);

            let cc_prev = (self.cc.cwnd(), self.cc.ssthresh());
            if self.cc.in_recovery() {
                if ack.ge(self.recover) {
                    self.cc.on_full_ack(now);
                    self.dupacks = 0;
                    self.sacked.clear();
                } else {
                    // Partial ACK: retransmit the next hole. With SACK
                    // information the hole is located precisely; plain
                    // NewReno resends from the new snd_una.
                    self.cc.on_partial_ack(acked);
                    if self.rtx_next.lt(self.snd_una) {
                        self.rtx_next = self.snd_una;
                    }
                    if self.sacked.is_empty() {
                        let len = self.cfg.mss.min(
                            u32::try_from(u64::from(self.snd_max - self.snd_una))
                                .unwrap_or(u32::MAX),
                        );
                        if len > 0 {
                            let seq = self.snd_una;
                            out.push(self.make_data(seq, len, now));
                        }
                    } else {
                        self.sack_retransmit(now, &mut out);
                    }
                }
            } else {
                self.dupacks = 0;
                let ctx = AckContext {
                    now,
                    acked_bytes: acked,
                    flight: self.flight(),
                    srtt: self.rto.srtt(),
                    sample,
                };
                self.cc.on_ack(&ctx);
            }
            self.trace_cc(cc_prev, now);

            // Re-arm or clear the RTO.
            self.rto_deadline = if self.snd_una.lt(self.snd_max) {
                Some(now + self.rto.rto())
            } else {
                None
            };
        } else if ack == self.snd_una
            && seg.payload_len == 0
            && self.snd_una.lt(self.snd_max)
            && new_wnd == self.snd_wnd
        {
            // Duplicate ACK.
            self.stats.dupacks_received += 1;
            self.dupacks += 1;
            let cc_prev = (self.cc.cwnd(), self.cc.ssthresh());
            if self.cc.in_recovery() {
                self.cc.on_recovery_dupack();
                // SACK recovery: keep filling holes as the window
                // inflates, one hole per duplicate ACK.
                self.sack_retransmit(now, &mut out);
            } else if self.dupacks == 3 {
                self.recover = self.snd_max;
                self.cc.on_triple_dupack(self.flight(), now);
                self.stats.fast_retransmits += 1;
                let len = self
                    .cfg
                    .mss
                    .min(u32::try_from(u64::from(self.snd_max - self.snd_una)).unwrap_or(u32::MAX));
                let seq = self.snd_una;
                if self.trace.enabled() {
                    self.trace.emit(
                        now.as_nanos(),
                        self.trace_node,
                        hack_trace::Event::TcpFastRetransmit {
                            seq: u64::from(seq.0),
                        },
                    );
                }
                out.push(self.make_data(seq, len, now));
                self.rtx_next = seq + len;
            }
            self.trace_cc(cc_prev, now);
        } else {
            // Window update or stale ACK.
            self.note_peer_wnd(new_wnd);
        }

        out.extend(self.poll_send(now));
        out
    }

    fn process_data(&mut self, seg: &TcpSegment, now: SimTime) -> Vec<Ipv4Packet> {
        let start = seg.seq;
        let end = seg.seq + seg.payload_len;
        let mut out = Vec::new();

        if end.le(self.rcv_nxt) {
            // Entirely old: re-ACK immediately (the peer is retransmitting).
            out.push(self.make_ack(now));
            return out;
        }

        // Timestamp bookkeeping (simplified RFC 7323: track the newest
        // tsval from an acceptable segment).
        if let Some((tsval, _)) = seg.timestamps() {
            if start.le(self.rcv_nxt) {
                self.ts_recent = tsval;
            }
        }

        if start.le(self.rcv_nxt) {
            // In-order (possibly with some overlap): advance rcv_nxt.
            let advance_to = end;
            let delivered = u64::from(advance_to - self.rcv_nxt);
            self.rcv_nxt = advance_to;
            self.stats.bytes_delivered += delivered;
            // Pull any contiguous out-of-order ranges.
            self.drain_ooo();

            if !self.ooo.is_empty() {
                // Still a hole above us: ACK immediately (dup-ack burst
                // drives the peer's recovery).
                out.push(self.make_ack(now));
            } else if self.cfg.delayed_ack {
                self.delack_segments += 1;
                if self.delack_segments >= 2 {
                    out.push(self.make_ack(now));
                } else {
                    self.delack_deadline = Some(now + self.cfg.delack_timeout);
                }
            } else {
                out.push(self.make_ack(now));
            }
        } else {
            // Out of order: store and ACK immediately (duplicate ACK).
            self.insert_ooo(start, end);
            out.push(self.make_ack(now));
        }
        out
    }

    fn insert_ooo(&mut self, start: TcpSeq, end: TcpSeq) {
        self.ooo.push((start, end));
        self.ooo.sort_by_key(|&(s, _)| s.dist_from(self.rcv_nxt));
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(TcpSeq, TcpSeq)> = Vec::with_capacity(self.ooo.len());
        for &(s, e) in &self.ooo {
            if let Some(last) = merged.last_mut() {
                if s.le(last.1) {
                    if e.gt(last.1) {
                        last.1 = e;
                    }
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.ooo = merged;
    }

    fn drain_ooo(&mut self) {
        while let Some(&(s, e)) = self.ooo.first() {
            if s.gt(self.rcv_nxt) {
                break;
            }
            self.ooo.remove(0);
            if e.gt(self.rcv_nxt) {
                let delivered = u64::from(e - self.rcv_nxt);
                self.rcv_nxt = e;
                self.stats.bytes_delivered += delivered;
            }
        }
    }

    // ---- timers ----------------------------------------------------------

    /// Fire any timers whose deadline is ≤ `now`.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<Ipv4Packet> {
        let mut out = Vec::new();

        if let Some(dl) = self.delack_deadline {
            if dl <= now && self.delack_segments > 0 {
                if self.trace.enabled() {
                    self.trace.emit(
                        now.as_nanos(),
                        self.trace_node,
                        hack_trace::Event::TcpDelayedAck {
                            ack: u64::from(self.rcv_nxt.0),
                        },
                    );
                }
                out.push(self.make_ack(now));
            }
        }

        if let Some(dl) = self.rto_deadline {
            if dl <= now {
                match self.state {
                    TcpState::SynSent => {
                        self.stats.timeouts += 1;
                        self.rto.on_timeout();
                        let syn = self.make_syn(false, now);
                        out.push(syn);
                        self.rto_deadline = Some(now + self.rto.rto());
                    }
                    TcpState::SynReceived => {
                        self.stats.timeouts += 1;
                        self.rto.on_timeout();
                        let synack = self.make_syn(true, now);
                        out.push(synack);
                        self.rto_deadline = Some(now + self.rto.rto());
                    }
                    TcpState::Established => {
                        if self.snd_una.lt(self.snd_max) {
                            self.stats.timeouts += 1;
                            self.rto_streak += 1;
                            self.rto.on_timeout();
                            let cc_prev = (self.cc.cwnd(), self.cc.ssthresh());
                            self.cc.on_timeout(self.flight(), now);
                            if self.trace.enabled() {
                                self.trace.emit(
                                    now.as_nanos(),
                                    self.trace_node,
                                    hack_trace::Event::TcpRto {
                                        seq: u64::from(self.snd_una.0),
                                    },
                                );
                            }
                            self.trace_cc(cc_prev, now);
                            self.dupacks = 0;
                            self.sacked.clear();
                            self.rtx_next = self.snd_una;
                            // The whole flight will be resent: none of
                            // its records may produce rate/RTT samples.
                            for r in &mut self.seg_records {
                                r.retransmitted = true;
                            }
                            // Go-back: rewind snd_nxt and resend from una.
                            self.snd_nxt = self.snd_una;
                            self.rto_deadline = Some(now + self.rto.rto());
                            out.extend(self.poll_send(now));
                        } else {
                            self.rto_deadline = None;
                        }
                    }
                    TcpState::Listen => {
                        self.rto_deadline = None;
                    }
                }
            }
        }

        if let Some(dl) = self.pace_deadline {
            if dl <= now {
                // The pacer's slot arrived: release what it allows
                // (poll_send clears and possibly re-arms the deadline).
                out.extend(self.poll_send(now));
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Ipv4Addr;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 5001,
            dst_port: 80,
            protocol: 6,
        }
    }

    /// Build a connected (client, server) pair by running the handshake.
    fn connected(
        client_cfg: TcpConfig,
        server_cfg: TcpConfig,
        now: SimTime,
    ) -> (Connection, Connection) {
        let (mut c, syns) = Connection::client(client_cfg, tuple(), 1000, now);
        let mut s = Connection::server(server_cfg, tuple().reversed(), 9000);
        let synack = s.on_packet(&syns[0], now);
        assert_eq!(synack.len(), 1);
        let acks = c.on_packet(&synack[0], now);
        assert!(!acks.is_empty());
        let more = s.on_packet(&acks[0], now);
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        assert!(more.is_empty(), "no data budget yet");
        (c, s)
    }

    fn seg(p: &Ipv4Packet) -> &TcpSegment {
        match &p.transport {
            Transport::Tcp(t) => t,
            Transport::Udp { .. } => panic!("not tcp"),
        }
    }

    /// Deliver `pkts` to `dst`, returning its responses.
    fn deliver(dst: &mut Connection, pkts: &[Ipv4Packet], now: SimTime) -> Vec<Ipv4Packet> {
        let mut out = Vec::new();
        for p in pkts {
            out.extend(dst.on_packet(p, now));
        }
        out
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let t0 = SimTime::from_millis(10);
        let (_c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
    }

    #[test]
    fn handshake_negotiates_options() {
        let t0 = SimTime::from_millis(10);
        let (mut c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        assert!(!data.is_empty());
        // Timestamps negotiated => data carries the option.
        assert!(seg(&data[0]).timestamps().is_some());
    }

    #[test]
    fn extend_budget_restarts_completed_transfer() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Bytes(1000));

        // Drive the 1000-byte transfer to completion.
        let mut now = t0;
        let mut pending = c.poll_send(now);
        while !pending.is_empty() {
            now = now + SimDuration::from_millis(1);
            let acks = deliver(&mut s, &pending, now);
            pending = deliver(&mut c, &acks, now);
            pending.extend(c.poll_send(now));
            if let Some(dl) = s.next_timer().filter(|&dl| dl <= now) {
                pending.extend(s.on_timer(dl));
            }
        }
        // Flush the server's delayed ACK if the last segment is parked
        // behind it.
        while !c.send_complete() {
            let dl = s.next_timer().expect("delayed ACK pending");
            now = dl;
            let acks = s.on_timer(now);
            assert!(acks.iter().all(|p| seg(p).payload_len == 0));
            deliver(&mut c, &acks, now);
        }
        assert_eq!(c.bytes_acked(), 1000);

        // Same connection, next "request": the budget grows in place
        // and poll_send starts the new data without a handshake.
        assert_eq!(c.extend_budget(2000), 3000);
        assert!(!c.send_complete());
        let more = c.poll_send(now);
        assert!(!more.is_empty(), "extended budget emits data");
        assert!(seg(&more[0]).payload_len > 0);
    }

    #[test]
    fn extend_budget_anchors_none_and_ignores_unlimited() {
        let t0 = SimTime::from_millis(10);
        let (mut c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        // `None` budget: nothing sent yet, so the new budget is just
        // the extension.
        assert_eq!(c.extend_budget(500), 500);
        assert_eq!(c.unsent_bytes(), 500);
        // Unlimited is left alone.
        c.set_budget(SendBudget::Unlimited);
        assert_eq!(c.extend_budget(500), 0);
        assert!(!c.send_complete());
    }

    #[test]
    fn initial_window_limits_burst() {
        let t0 = SimTime::from_millis(10);
        let (mut c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        assert_eq!(data.len(), 3, "IW = 3 segments");
        assert!(data.iter().all(|p| seg(p).payload_len == 1460));
    }

    #[test]
    fn repeated_rtos_rearm_deadline_and_keep_retransmitting() {
        // A black-holed peer: nothing the sender transmits is ever
        // ACKed. Every RTO must re-arm `rto_deadline` (go-back-N keeps
        // retrying), with Karn backoff doubling the gap each round.
        let t0 = SimTime::from_millis(10);
        let (mut c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        assert!(!data.is_empty());
        let first_seq = seg(&data[0]).seq;

        let mut gaps = Vec::new();
        let mut now = t0;
        for i in 1..=7 {
            let dl = c
                .next_timer()
                .unwrap_or_else(|| panic!("deadline re-armed before RTO #{i}"));
            assert!(dl > now, "RTO #{i} deadline is in the future");
            gaps.push(dl - now);
            now = dl;
            let rtx = c.on_timer(now);
            assert!(
                rtx.iter()
                    .any(|p| seg(p).seq == first_seq && seg(p).payload_len > 0),
                "RTO #{i} retransmits from snd_una"
            );
        }
        assert!(c.stats().timeouts >= 6, "{} timeouts", c.stats().timeouts);
        assert!(
            c.stats().retransmits >= 6,
            "{} retransmits",
            c.stats().retransmits
        );
        // Karn backoff: each successive deadline gap doubles until the
        // 60 s max_rto clamps it — after the doubling, so the capped gap
        // pins at exactly max_rto rather than freezing below it.
        let max_rto = SimDuration::from_secs(60);
        for (k, w) in gaps.windows(2).enumerate() {
            assert_eq!(
                w[1],
                (w[0] * 2).min(max_rto),
                "gap #{k} → #{} should double (or clamp at max_rto)",
                k + 1
            );
        }
        assert_eq!(*gaps.last().unwrap(), max_rto, "backoff reached the clamp");
    }

    #[test]
    fn bulk_transfer_completes_over_ideal_wire() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        let total: u64 = 1_000_000;
        c.set_budget(SendBudget::Bytes(total));
        let mut in_flight = c.poll_send(t0);
        let mut now = t0;
        let mut rounds = 0;
        while !c.send_complete() && rounds < 10_000 {
            now += SimDuration::from_millis(1);
            let acks = deliver(&mut s, &in_flight, now);
            let mut next = deliver(&mut c, &acks, now);
            // Flush any delayed-ack timers so the test terminates.
            if next.is_empty() {
                if let Some(dl) = s.next_timer() {
                    now = now.max(dl);
                    let late_acks = s.on_timer(now);
                    next = deliver(&mut c, &late_acks, now);
                }
            }
            in_flight = next;
            rounds += 1;
        }
        assert!(c.send_complete(), "transfer stalled");
        assert_eq!(s.bytes_delivered(), total);
        assert_eq!(c.bytes_acked(), total);
        assert_eq!(c.stats().retransmits, 0);
        assert_eq!(c.stats().timeouts, 0);
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0); // 3 segments
        let acks = deliver(&mut s, &data, t0);
        // Segments 1+2 coalesce into one ACK; segment 3 waits for the
        // delack timer.
        assert_eq!(acks.len(), 1);
        assert_eq!(seg(&acks[0]).ack, seg(&data[1]).seq + 1460);
        // Timer flushes the third.
        let dl = s.next_timer().expect("delack armed");
        let late = s.on_timer(dl);
        assert_eq!(late.len(), 1);
        assert_eq!(seg(&late[0]).ack, seg(&data[2]).seq + 1460);
    }

    #[test]
    fn no_delayed_ack_acks_every_segment() {
        let t0 = SimTime::from_millis(10);
        let ccfg = TcpConfig::default();
        let scfg = TcpConfig {
            delayed_ack: false,
            ..TcpConfig::default()
        };
        let (mut c, mut s) = connected(ccfg, scfg, t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        let acks = deliver(&mut s, &data, t0);
        assert_eq!(acks.len(), 3);
    }

    #[test]
    fn out_of_order_triggers_dupacks_and_sack() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0); // 3 segments
                                    // Deliver 0 then 2 (1 lost): the gap forces an immediate dup ACK
                                    // with a SACK block.
        let a0 = deliver(&mut s, &data[0..1], t0);
        assert!(a0.is_empty(), "first in-order segment is delack'd");
        let a2 = deliver(&mut s, &data[2..3], t0);
        assert_eq!(a2.len(), 1);
        let sseg = seg(&a2[0]);
        assert_eq!(sseg.ack, seg(&data[1]).seq, "acks up to the hole");
        let blocks = sseg.sack_blocks().expect("SACK present");
        assert_eq!(blocks[0].0, seg(&data[2]).seq);
        assert_eq!(blocks[0].1, seg(&data[2]).seq + 1460);
    }

    #[test]
    fn triple_dupack_fast_retransmit_and_recovery() {
        let t0 = SimTime::from_millis(10);
        let scfg = TcpConfig {
            delayed_ack: false,
            ..TcpConfig::default()
        };
        let (mut c, mut s) = connected(TcpConfig::default(), scfg, t0);
        c.set_budget(SendBudget::Unlimited);
        // Grow the window a bit first.
        let mut now = t0;
        let mut data = c.poll_send(now);
        for _ in 0..3 {
            now += SimDuration::from_millis(2);
            let acks = deliver(&mut s, &data, now);
            data = deliver(&mut c, &acks, now);
        }
        assert!(
            data.len() >= 6,
            "window should have grown, got {}",
            data.len()
        );

        // Lose the first segment of the burst; deliver the rest.
        now += SimDuration::from_millis(2);
        let lost_seq = seg(&data[0]).seq;
        let acks = deliver(&mut s, &data[1..], now);
        assert!(acks.len() >= 3, "every OOO segment elicits a dup ack");
        assert!(acks.iter().all(|a| seg(a).ack == lost_seq));

        let cwnd_before = c.cwnd();
        let resp = deliver(&mut c, &acks, now);
        assert_eq!(c.stats().fast_retransmits, 1);
        // ssthresh halves (cwnd itself may re-inflate by one MSS per
        // further dup ACK, per NewReno).
        assert!(c.cc.ssthresh() <= cwnd_before / 2 + 1460);
        assert!(c.cc.in_recovery());
        // The fast retransmission of the lost segment leads the response.
        assert!(resp
            .iter()
            .any(|p| seg(p).seq == lost_seq && seg(p).payload_len > 0));

        // Delivering the retransmission heals the receiver and the
        // cumulative ACK jumps past the whole burst.
        now += SimDuration::from_millis(2);
        let rtx: Vec<Ipv4Packet> = resp
            .iter()
            .filter(|p| seg(p).seq == lost_seq)
            .cloned()
            .collect();
        let heal = deliver(&mut s, &rtx, now);
        assert!(!heal.is_empty());
        assert!(seg(&heal[0]).ack.gt(lost_seq + 1460));
        deliver(&mut c, &heal, now);
        assert!(!c.cc.in_recovery(), "full ACK exits recovery");
    }

    #[test]
    fn rto_fires_and_goes_back_n() {
        let t0 = SimTime::from_millis(10);
        let (mut c, _s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        assert!(!data.is_empty());
        let dl = c.next_timer().expect("RTO armed");
        let out = c.on_timer(dl);
        assert_eq!(c.stats().timeouts, 1);
        // One segment retransmitted from snd_una (cwnd collapsed to 1).
        assert_eq!(out.len(), 1);
        assert_eq!(seg(&out[0]).seq, seg(&data[0]).seq);
        assert_eq!(c.stats().retransmits, 1);
        assert_eq!(c.cwnd(), 1460);
        // RTO re-armed with backoff.
        let dl2 = c.next_timer().unwrap();
        assert!(dl2 > dl);
    }

    #[test]
    fn syn_retransmits_on_timeout() {
        let t0 = SimTime::from_millis(10);
        let (mut c, _syn) = Connection::client(TcpConfig::default(), tuple(), 1, t0);
        let dl = c.next_timer().unwrap();
        assert_eq!(dl, t0 + SimDuration::from_secs(1));
        let out = c.on_timer(dl);
        assert_eq!(out.len(), 1);
        assert!(seg(&out[0]).flags & flags::SYN != 0);
        assert_eq!(c.stats().timeouts, 1);
    }

    #[test]
    fn old_data_is_reacked_immediately() {
        let t0 = SimTime::from_millis(10);
        let scfg = TcpConfig {
            delayed_ack: false,
            ..TcpConfig::default()
        };
        let (mut c, mut s) = connected(TcpConfig::default(), scfg, t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        deliver(&mut s, &data, t0);
        // Duplicate delivery of segment 0: immediate re-ACK, no
        // double-count of delivered bytes.
        let before = s.bytes_delivered();
        let re = deliver(&mut s, &data[0..1], t0);
        assert_eq!(re.len(), 1);
        assert_eq!(s.bytes_delivered(), before);
    }

    #[test]
    fn receiver_window_caps_sender() {
        let t0 = SimTime::from_millis(10);
        let scfg = TcpConfig {
            rcv_window: 4 * 1460,
            wscale: 0,
            ..TcpConfig::default()
        };
        let (mut c, _s) = connected(TcpConfig::default(), scfg, t0);
        c.set_budget(SendBudget::Unlimited);
        // Even with repeated polling, flight never exceeds rwnd.
        let mut sent = 0;
        for _ in 0..10 {
            sent += c.poll_send(t0).len();
        }
        assert!(sent <= 4, "rwnd must cap the burst, sent {sent}");
    }

    #[test]
    fn byte_budget_stops_sender() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Bytes(3000));
        let data = c.poll_send(t0);
        let total: u32 = data.iter().map(|p| seg(p).payload_len).sum();
        assert_eq!(total, 3000, "exactly the budget, split into segments");
        let mut now = t0;
        let acks = deliver(&mut s, &data, now);
        now += SimDuration::from_millis(1);
        deliver(&mut c, &acks, now);
        // Flush delack for the odd segment.
        if let Some(dl) = s.next_timer() {
            let late = s.on_timer(dl);
            deliver(&mut c, &late, dl);
        }
        assert!(c.send_complete());
        assert_eq!(s.bytes_delivered(), 3000);
    }

    #[test]
    fn sack_recovery_fills_multiple_holes_without_timeout() {
        // Lose several non-contiguous segments from one window: SACK
        // recovery must retransmit each hole exactly once, driven by
        // duplicate ACKs, with no RTO.
        let t0 = SimTime::from_millis(10);
        let scfg = TcpConfig {
            delayed_ack: false,
            ..TcpConfig::default()
        };
        let (mut c, mut s) = connected(TcpConfig::default(), scfg, t0);
        c.set_budget(SendBudget::Unlimited);
        // Grow the window so one burst has ≥ 8 segments.
        let mut now = t0;
        let mut data = c.poll_send(now);
        for _ in 0..4 {
            now += SimDuration::from_millis(2);
            let acks = deliver(&mut s, &data, now);
            data = deliver(&mut c, &acks, now);
        }
        assert!(data.len() >= 10, "window too small: {}", data.len());

        // Drop segments 0, 3 and 6; deliver the rest.
        let lost: Vec<usize> = vec![0, 3, 6];
        let delivered: Vec<Ipv4Packet> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, p)| p.clone())
            .collect();
        now += SimDuration::from_millis(2);
        let acks = deliver(&mut s, &delivered, now);
        assert!(acks.len() >= 3);

        // Feed the dup-ACK burst to the sender; collect retransmissions.
        let resp = deliver(&mut c, &acks, now);
        let rtx_seqs: Vec<TcpSeq> = resp
            .iter()
            .filter(|p| {
                let t = seg(p);
                t.payload_len > 0 && t.seq.lt(seg(&data[9]).seq)
            })
            .map(|p| seg(p).seq)
            .collect();
        // All three holes retransmitted from the dup-ACK burst alone.
        for &i in &lost {
            assert!(
                rtx_seqs.contains(&seg(&data[i]).seq),
                "hole {i} ({}) not retransmitted; got {rtx_seqs:?}",
                seg(&data[i]).seq
            );
        }
        // No hole retransmitted twice.
        let mut uniq = rtx_seqs.clone();
        uniq.sort_by_key(|s| s.0);
        uniq.dedup();
        assert_eq!(uniq.len(), rtx_seqs.len(), "duplicate retransmissions");

        // Deliver the retransmissions: the receiver heals completely and
        // the sender exits recovery with zero timeouts.
        now += SimDuration::from_millis(2);
        let heal_acks = deliver(&mut s, &resp, now);
        deliver(&mut c, &heal_acks, now);
        assert_eq!(c.stats().timeouts, 0);
        assert!(!c.cc.in_recovery());
        assert_eq!(s.bytes_delivered() % 1460, 0, "receiver must be gap-free");
    }

    #[test]
    fn sack_scoreboard_merges_and_trims() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        deliver(&mut s, &data[2..3], t0); // out of order: SACK block
        let base = seg(&data[0]).seq;
        // Forge overlapping SACK blocks in one ACK (server → client
        // direction, so swap the addressing of the data packet).
        let make_reply = |ackno: TcpSeq, options: Vec<TcpOption>| {
            let d = seg(&data[0]).clone();
            Ipv4Packet {
                src: data[0].dst,
                dst: data[0].src,
                ident: 99,
                ttl: 64,
                transport: Transport::Tcp(TcpSegment {
                    src_port: d.dst_port,
                    dst_port: d.src_port,
                    seq: TcpSeq(0),
                    ack: ackno,
                    flags: flags::ACK,
                    window: 1024,
                    options: options.into(),
                    payload_len: 0,
                }),
            }
        };
        let fake = make_reply(
            base,
            vec![TcpOption::Sack(vec![
                (base + 1460, base + 2920),
                (base + 2000, base + 4380),
            ])],
        );
        c.on_packet(&fake, t0);
        // Merged into one contiguous range.
        assert_eq!(c.sacked.len(), 1);
        assert_eq!(c.sacked[0], (base + 1460, base + 4380));
        // A cumulative ACK past the range clears it.
        let cum = make_reply(base + 4380, vec![]);
        c.on_packet(&cum, t0);
        assert!(c.sacked.is_empty());
    }

    #[test]
    fn dupacks_with_window_change_are_not_counted() {
        let t0 = SimTime::from_millis(10);
        let (mut c, mut s) = connected(TcpConfig::default(), TcpConfig::default(), t0);
        c.set_budget(SendBudget::Unlimited);
        let data = c.poll_send(t0);
        let acks = deliver(&mut s, &data[0..2], t0);
        assert_eq!(acks.len(), 1);
        // Forge three copies of the same ACK but with different windows:
        // they must not trigger fast retransmit.
        for w in [100u16, 200, 300] {
            let mut fake = acks[0].clone();
            if let Transport::Tcp(t) = &mut fake.transport {
                t.window = w;
            }
            deliver(&mut c, &[fake], t0);
        }
        assert_eq!(c.stats().fast_retransmits, 0);
    }
}
