//! Retransmission-timeout estimation per RFC 6298.

use hack_sim::SimDuration;

/// SRTT/RTTVAR estimator with exponential backoff.
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff_shift: u32,
    backoff_clamp: Option<u32>,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RtoEstimator {
    /// A fresh estimator: RTO starts at 1 s (RFC 6298 §2.1), clamped to
    /// `[min_rto, max_rto]`.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(1).max(min_rto).min(max_rto),
            backoff_shift: 0,
            backoff_clamp: None,
            min_rto,
            max_rto,
        }
    }

    /// Smoothed RTT, once at least one sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The current retransmission timeout (with any backoff applied).
    pub fn rto(&self) -> SimDuration {
        let backed = self
            .rto
            .checked_mul(1u64 << self.backoff_shift.min(16))
            .unwrap_or(self.max_rto);
        backed.min(self.max_rto).max(self.min_rto)
    }

    /// Incorporate a new RTT measurement (RFC 6298 §2.2–2.3) and clear
    /// any backoff.
    pub fn on_measurement(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT − R|
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        // RTO = SRTT + max(G, 4·RTTVAR); granularity G folded into min_rto.
        self.rto = (srtt + self.rttvar * 4).max(self.min_rto).min(self.max_rto);
        self.backoff_shift = 0;
    }

    /// The retransmission timer fired: double the RTO (Karn). While a
    /// handoff clamp is pinned the shift stops growing past it, so a
    /// connectivity blackout of known, bounded cause (an AP handoff)
    /// does not push the retry cadence out to `max_rto` — the first
    /// retransmission after re-association lands promptly.
    pub fn on_timeout(&mut self) {
        let cap = self.backoff_clamp.unwrap_or(16).min(16);
        self.backoff_shift = (self.backoff_shift + 1).min(cap);
    }

    /// Pin the exponential backoff at no more than `shift` doublings.
    /// Idempotent; cleared by [`RtoEstimator::unclamp_backoff`] or any
    /// new RTT measurement's natural reset.
    pub fn clamp_backoff(&mut self, shift: u32) {
        self.backoff_clamp = Some(shift);
        self.backoff_shift = self.backoff_shift.min(shift);
    }

    /// Remove the handoff clamp; Karn backoff resumes normally.
    pub fn unclamp_backoff(&mut self) {
        self.backoff_clamp = None;
    }

    /// The clamp currently pinned, if any.
    pub fn backoff_clamp(&self) -> Option<u32> {
        self.backoff_clamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.on_measurement(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn min_rto_floor_applies() {
        let mut e = est();
        // Sub-millisecond LAN RTTs: RTO clamps to 200 ms.
        for _ in 0..50 {
            e.on_measurement(SimDuration::from_micros(500));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = est();
        for _ in 0..100 {
            e.on_measurement(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_nanos() as i64 - 80_000_000).abs() < 2_000_000,
            "srtt {srtt}"
        );
    }

    #[test]
    fn backoff_doubles_and_measurement_resets() {
        let mut e = est();
        e.on_measurement(SimDuration::from_millis(100)); // RTO 300 ms
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        // A fresh measurement clears the backoff; with a second identical
        // sample RTTVAR decays (3/4 · 50 ms), so RTO = 100 + 4·37.5 = 250.
        e.on_measurement(SimDuration::from_millis(100));
        assert_eq!(e.rto(), SimDuration::from_millis(250));
    }

    #[test]
    fn backoff_caps_at_max() {
        let mut e = est();
        for _ in 0..40 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn six_consecutive_rtos_double_then_clamp_after_doubling() {
        let mut e = est();
        e.on_measurement(SimDuration::from_millis(100)); // RTO 300 ms
                                                         // Karn backoff: each timeout doubles, 300 ms · 2^k.
        let expect_ms = [600u64, 1200, 2400, 4800, 9600, 19200];
        for (k, &ms) in expect_ms.iter().enumerate() {
            e.on_timeout();
            assert_eq!(
                e.rto(),
                SimDuration::from_millis(ms),
                "after RTO #{}",
                k + 1
            );
        }
        // Two more doublings would pass 60 s (76.8 s): the clamp must
        // bite *after* the doubling, pinning exactly at max_rto rather
        // than freezing below it.
        e.on_timeout(); // 38.4 s
        assert_eq!(e.rto(), SimDuration::from_millis(38_400));
        e.on_timeout(); // 76.8 s → clamp
        assert_eq!(e.rto(), SimDuration::from_secs(60));
        e.on_timeout(); // stays clamped, no overflow
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn handoff_clamp_pins_backoff() {
        let mut e = est();
        e.on_measurement(SimDuration::from_millis(100)); // RTO 300 ms
        e.on_timeout();
        e.on_timeout(); // shift 2 → 1200 ms
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        // Clamp at one doubling: shift retracts to 1 and stays there
        // through further timeouts.
        e.clamp_backoff(1);
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        for _ in 0..10 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        assert_eq!(e.backoff_clamp(), Some(1));
        // Unclamp: Karn doubling resumes from the pinned shift.
        e.unclamp_backoff();
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        // A measurement clears backoff as usual even while clamped.
        e.clamp_backoff(0);
        e.on_measurement(SimDuration::from_millis(100));
        assert_eq!(e.backoff_clamp(), Some(0));
        e.on_timeout(); // shift pinned at 0: no doubling at all
        assert_eq!(e.rto(), SimDuration::from_millis(250));
    }

    #[test]
    fn variance_raises_rto() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50 {
            stable.on_measurement(SimDuration::from_millis(100));
            let rtt = if i % 2 == 0 { 50 } else { 150 };
            jittery.on_measurement(SimDuration::from_millis(rtt));
        }
        assert!(jittery.rto() > stable.rto());
    }
}
