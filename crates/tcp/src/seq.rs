//! 32-bit wrapping TCP sequence-number arithmetic (RFC 793 / RFC 1982
//! serial-number comparison).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A TCP sequence (or acknowledgment) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpSeq(pub u32);

impl TcpSeq {
    /// Wrapping distance from `other` to `self` (how many bytes ahead).
    #[inline]
    pub fn dist_from(self, other: TcpSeq) -> u32 {
        self.0.wrapping_sub(other.0)
    }

    /// Serial-number "less than": `self` precedes `other`.
    #[inline]
    pub fn lt(self, other: TcpSeq) -> bool {
        (self.0.wrapping_sub(other.0) as i32) < 0
    }

    /// Serial-number "less than or equal".
    #[inline]
    pub fn le(self, other: TcpSeq) -> bool {
        self == other || self.lt(other)
    }

    /// Serial-number "greater than".
    #[inline]
    pub fn gt(self, other: TcpSeq) -> bool {
        other.lt(self)
    }

    /// Serial-number "greater than or equal".
    #[inline]
    pub fn ge(self, other: TcpSeq) -> bool {
        self == other || self.gt(other)
    }

    /// Is `self` in the half-open window `[lo, hi)` under wrapping order?
    #[inline]
    pub fn in_window(self, lo: TcpSeq, hi: TcpSeq) -> bool {
        self.dist_from(lo) < hi.dist_from(lo)
    }
}

impl Add<u32> for TcpSeq {
    type Output = TcpSeq;
    #[inline]
    fn add(self, n: u32) -> TcpSeq {
        TcpSeq(self.0.wrapping_add(n))
    }
}

impl AddAssign<u32> for TcpSeq {
    #[inline]
    fn add_assign(&mut self, n: u32) {
        self.0 = self.0.wrapping_add(n);
    }
}

impl Sub<TcpSeq> for TcpSeq {
    type Output = u32;
    #[inline]
    fn sub(self, other: TcpSeq) -> u32 {
        self.dist_from(other)
    }
}

impl fmt::Display for TcpSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_simple() {
        assert!(TcpSeq(1).lt(TcpSeq(2)));
        assert!(TcpSeq(2).gt(TcpSeq(1)));
        assert!(TcpSeq(5).le(TcpSeq(5)));
        assert!(TcpSeq(5).ge(TcpSeq(5)));
        assert!(!TcpSeq(5).lt(TcpSeq(5)));
    }

    #[test]
    fn ordering_across_wrap() {
        let hi = TcpSeq(u32::MAX - 10);
        let lo = TcpSeq(5);
        assert!(hi.lt(lo), "wrapped value is ahead");
        assert!(lo.gt(hi));
        assert_eq!(lo.dist_from(hi), 16);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(TcpSeq(u32::MAX) + 2, TcpSeq(1));
        let mut s = TcpSeq(u32::MAX);
        s += 1;
        assert_eq!(s, TcpSeq(0));
    }

    #[test]
    fn window_membership() {
        let lo = TcpSeq(100);
        let hi = TcpSeq(200);
        assert!(TcpSeq(100).in_window(lo, hi));
        assert!(TcpSeq(199).in_window(lo, hi));
        assert!(!TcpSeq(200).in_window(lo, hi));
        assert!(!TcpSeq(99).in_window(lo, hi));
        // Window straddling the wrap point.
        let lo = TcpSeq(u32::MAX - 5);
        let hi = TcpSeq(10);
        assert!(TcpSeq(u32::MAX).in_window(lo, hi));
        assert!(TcpSeq(3).in_window(lo, hi));
        assert!(!TcpSeq(10).in_window(lo, hi));
    }

    #[test]
    fn sub_gives_distance() {
        assert_eq!(TcpSeq(150) - TcpSeq(100), 50);
        assert_eq!(TcpSeq(3) - TcpSeq(u32::MAX), 4);
    }
}
