//! # hack-tcp — sans-IO TCP stack
//!
//! A from-scratch TCP sufficient to reproduce the paper's traffic
//! dynamics: three-way handshake, pluggable congestion control ([`cc`]:
//! NewReno, CUBIC, HighSpeed-style AIMD, and a BBR-flavoured
//! delivery-rate controller), RFC 6298 retransmission timeouts
//! ([`rto`]), delayed ACKs, RFC 7323 timestamps and SACK generation,
//! with **byte-exact header serialization** ([`wire`]) so the ROHC
//! compressor in `hack-rohc` operates on genuine wire bytes.
//!
//! Payload contents are synthetic (only lengths travel), which is
//! exactly what a network simulator needs and lets retransmission work
//! without a send buffer. The endpoint ([`conn::Connection`]) is sans-IO:
//! `on_packet` / `on_timer` / `poll_send` return packets to transmit and
//! never touch a clock or socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod conn;
pub mod rto;
pub mod seq;
pub mod wire;

pub use cc::{
    AckContext, BbrLite, BbrMode, CcKind, CcSnapshot, CongestionControl, Cubic, Highspeed, NewReno,
    Phase, RateSample,
};
pub use conn::{Connection, SendBudget, TcpConfig, TcpState, TcpStats};
pub use rto::RtoEstimator;
pub use seq::TcpSeq;
pub use wire::{
    flags, FiveTuple, Ipv4Addr, Ipv4Packet, ParseError, TcpOption, TcpOptions, TcpSegment,
    Transport,
};
