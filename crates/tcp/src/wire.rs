//! Byte-exact IPv4 and TCP header representation.
//!
//! Packets travel through the simulator structurally, but headers
//! serialize to real wire bytes: the ROHC compressor in `hack-rohc`
//! compresses genuine header bytes and the decompressor reconstitutes
//! them, validated end-to-end by checksums — the same property the paper
//! relies on for "reconstituting the TCP ACKs" at the AP. Payload bytes
//! are synthetic (zeros) since only their length affects airtime.

use std::fmt;

use hack_inline::InlineVec;

use crate::seq::TcpSeq;

/// Option list of a segment. Four slots cover every real shape (a SYN
/// carries MSS + window scale + SACK-permitted + timestamps; everything
/// later carries at most timestamps + SACK), so option lists never
/// touch the heap on the hot path.
pub type TcpOptions = InlineVec<TcpOption, 4>;

/// An IPv4 address (stored as a `u32` for arithmetic convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Dotted-quad constructor.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// TCP flag bits (subset used by the simulator).
pub mod flags {
    /// No more data from sender.
    pub const FIN: u8 = 0x01;
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push function.
    pub const PSH: u8 = 0x08;
    /// Acknowledgment field significant.
    pub const ACK: u8 = 0x10;
}

/// The connection 5-tuple (protocol is implicitly TCP where used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP).
    pub protocol: u8,
}

impl FiveTuple {
    /// The reverse direction of this flow.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// The 13 bytes hashed for HACK's CID computation (§3.3.2): both
    /// addresses, both ports, protocol.
    pub fn bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_ip.0.to_be_bytes());
        out[4..8].copy_from_slice(&self.dst_ip.0.to_be_bytes());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.protocol;
        out
    }
}

/// A TCP option as carried in the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// RFC 7323 timestamps.
    Timestamps {
        /// Sender's timestamp clock value.
        tsval: u32,
        /// Echo of the peer's most recent tsval.
        tsecr: u32,
    },
    /// Selective acknowledgment blocks (up to 3 with timestamps).
    Sack(Vec<(TcpSeq, TcpSeq)>),
}

/// Vacant-slot filler for [`TcpOptions`] inline storage; never
/// observable through the list's public length.
impl Default for TcpOption {
    fn default() -> Self {
        TcpOption::SackPermitted
    }
}

impl TcpOption {
    /// Encoded length in bytes (excluding alignment padding).
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Sack(blocks) => 2 + blocks.len() * 8,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Mss(v) => {
                out.push(2);
                out.push(4);
                out.extend_from_slice(&v.to_be_bytes());
            }
            TcpOption::WindowScale(s) => {
                out.push(3);
                out.push(3);
                out.push(*s);
            }
            TcpOption::SackPermitted => {
                out.push(4);
                out.push(2);
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                out.push(8);
                out.push(10);
                out.extend_from_slice(&tsval.to_be_bytes());
                out.extend_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Sack(blocks) => {
                out.push(5);
                out.push((2 + blocks.len() * 8) as u8);
                for (l, r) in blocks {
                    out.extend_from_slice(&l.0.to_be_bytes());
                    out.extend_from_slice(&r.0.to_be_bytes());
                }
            }
        }
    }
}

/// A TCP segment: header fields plus a synthetic payload length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: TcpSeq,
    /// Acknowledgment number.
    pub ack: TcpSeq,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// On-wire (unscaled) window field.
    pub window: u16,
    /// Options.
    pub options: TcpOptions,
    /// Payload length in bytes (contents are synthetic zeros).
    pub payload_len: u32,
}

impl TcpSegment {
    /// TCP header length: 20 bytes + options padded to a 4-byte multiple.
    pub fn header_len(&self) -> u32 {
        let opts: usize = self.options.iter().map(TcpOption::wire_len).sum();
        20 + (opts.div_ceil(4) * 4) as u32
    }

    /// Total TCP length (header + payload).
    pub fn wire_len(&self) -> u32 {
        self.header_len() + self.payload_len
    }

    /// Is this a pure acknowledgment (no payload, no SYN/FIN/RST)?
    pub fn is_pure_ack(&self) -> bool {
        self.payload_len == 0
            && self.flags & flags::ACK != 0
            && self.flags & (flags::SYN | flags::FIN | flags::RST) == 0
    }

    /// The timestamps option, if present.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Timestamps { tsval, tsecr } => Some((*tsval, *tsecr)),
            _ => None,
        })
    }

    /// The SACK blocks, if present.
    pub fn sack_blocks(&self) -> Option<&[(TcpSeq, TcpSeq)]> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Sack(b) => Some(b.as_slice()),
            _ => None,
        })
    }
}

/// A transport-layer datagram inside an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// TCP segment.
    Tcp(TcpSegment),
    /// UDP datagram (used by the paper's UDP baselines).
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Payload length.
        payload_len: u32,
    },
}

impl Transport {
    /// Length of the transport header + payload.
    pub fn wire_len(&self) -> u32 {
        match self {
            Transport::Tcp(t) => t.wire_len(),
            Transport::Udp { payload_len, .. } => 8 + payload_len,
        }
    }

    /// IP protocol number.
    pub fn protocol(&self) -> u8 {
        match self {
            Transport::Tcp(_) => 6,
            Transport::Udp { .. } => 17,
        }
    }
}

/// An IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Identification field (incremented per packet by senders).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// The transport payload.
    pub transport: Transport,
}

/// Errors from parsing wire bytes back into packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input shorter than the fixed header.
    Truncated,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// TCP checksum mismatch.
    BadTcpChecksum,
    /// Malformed or unknown option encoding.
    BadOption,
    /// Header length fields are inconsistent with the buffer.
    BadLength,
    /// Not a protocol this parser understands.
    UnsupportedProtocol(u8),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "truncated packet"),
            ParseError::BadIpChecksum => write!(f, "bad IPv4 header checksum"),
            ParseError::BadTcpChecksum => write!(f, "bad TCP checksum"),
            ParseError::BadOption => write!(f, "malformed TCP option"),
            ParseError::BadLength => write!(f, "inconsistent length fields"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported protocol {p}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Ipv4Packet {
    /// Total packet length (IP header + transport).
    pub fn wire_len(&self) -> u32 {
        20 + self.transport.wire_len()
    }

    /// The flow's 5-tuple.
    pub fn five_tuple(&self) -> FiveTuple {
        let (sp, dp) = match &self.transport {
            Transport::Tcp(t) => (t.src_port, t.dst_port),
            Transport::Udp {
                src_port, dst_port, ..
            } => (*src_port, *dst_port),
        };
        FiveTuple {
            src_ip: self.src,
            dst_ip: self.dst,
            src_port: sp,
            dst_port: dp,
            protocol: self.transport.protocol(),
        }
    }

    /// Serialize the IP + TCP headers to wire bytes with valid checksums
    /// (payload treated as zeros). Only TCP packets serialize — this is
    /// the input to the ROHC compressor.
    ///
    /// # Panics
    /// Panics for UDP packets (never compressed by HACK).
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.header_bytes_into(&mut out);
        out
    }

    /// [`Ipv4Packet::header_bytes`] into a caller-provided scratch
    /// buffer (cleared first): the hot-path form — one buffer, no
    /// intermediate IP/TCP/pseudo-header vectors, and zero allocations
    /// when the scratch capacity is warm.
    ///
    /// # Panics
    /// Panics for UDP packets (never compressed by HACK).
    pub fn header_bytes_into(&self, out: &mut Vec<u8>) {
        let Transport::Tcp(tcp) = &self.transport else {
            panic!("header_bytes is only defined for TCP packets");
        };
        out.clear();
        out.reserve(20 + tcp.header_len() as usize);

        let total_len = self.wire_len() as u16;
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&[0x40, 0x00]); // DF, no fragment offset
        out.push(self.ttl);
        out.push(6); // TCP
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.0.to_be_bytes());
        out.extend_from_slice(&self.dst.0.to_be_bytes());
        let cks = ones_complement_sum(&out[..20]);
        out[10..12].copy_from_slice(&cks.to_be_bytes());

        // TCP header, in place after the IP header.
        out.extend_from_slice(&tcp.src_port.to_be_bytes());
        out.extend_from_slice(&tcp.dst_port.to_be_bytes());
        out.extend_from_slice(&tcp.seq.0.to_be_bytes());
        out.extend_from_slice(&tcp.ack.0.to_be_bytes());
        let data_offset = (tcp.header_len() / 4) as u8;
        out.push(data_offset << 4);
        out.push(tcp.flags);
        out.extend_from_slice(&tcp.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        for opt in &tcp.options {
            opt.encode(out);
        }
        while !(out.len() - 20).is_multiple_of(4) {
            out.push(1); // NOP padding
        }
        debug_assert_eq!(out.len() as u32, 20 + tcp.header_len());

        // TCP checksum over pseudo-header + header + zero payload; the
        // pseudo-header lives on the stack, not in a Vec.
        let mut pseudo = [0u8; 12];
        pseudo[0..4].copy_from_slice(&self.src.0.to_be_bytes());
        pseudo[4..8].copy_from_slice(&self.dst.0.to_be_bytes());
        pseudo[9] = 6;
        pseudo[10..12].copy_from_slice(&(tcp.wire_len() as u16).to_be_bytes());
        // Zero payload contributes nothing to the sum.
        let cks = ones_complement_sum_2(&pseudo, &out[20..]);
        out[36..38].copy_from_slice(&cks.to_be_bytes());
    }

    /// Parse header bytes produced by [`Ipv4Packet::header_bytes`],
    /// validating both checksums. The payload length is recovered from
    /// the IP total-length field.
    pub fn from_header_bytes(bytes: &[u8]) -> Result<Ipv4Packet, ParseError> {
        if bytes.len() < 40 {
            return Err(ParseError::Truncated);
        }
        if bytes[0] != 0x45 {
            return Err(ParseError::BadLength);
        }
        if ones_complement_sum(&bytes[..20]) != 0 {
            return Err(ParseError::BadIpChecksum);
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as u32;
        let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
        let ttl = bytes[8];
        let protocol = bytes[9];
        if protocol != 6 {
            return Err(ParseError::UnsupportedProtocol(protocol));
        }
        let src = Ipv4Addr(u32::from_be_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15],
        ]));
        let dst = Ipv4Addr(u32::from_be_bytes([
            bytes[16], bytes[17], bytes[18], bytes[19],
        ]));

        let t = &bytes[20..];
        if t.len() < 20 {
            return Err(ParseError::Truncated);
        }
        let data_offset = (t[12] >> 4) as usize * 4;
        if data_offset < 20 || t.len() < data_offset {
            return Err(ParseError::BadLength);
        }
        let tcp_len = total_len - 20;
        let payload_len = tcp_len
            .checked_sub(data_offset as u32)
            .ok_or(ParseError::BadLength)?;

        // Validate the TCP checksum (payload is zeros by construction).
        let mut pseudo = [0u8; 12];
        pseudo[0..4].copy_from_slice(&src.0.to_be_bytes());
        pseudo[4..8].copy_from_slice(&dst.0.to_be_bytes());
        pseudo[9] = 6;
        pseudo[10..12].copy_from_slice(&(tcp_len as u16).to_be_bytes());
        if ones_complement_sum_2(&pseudo, &t[..data_offset]) != 0 {
            return Err(ParseError::BadTcpChecksum);
        }

        let mut options = TcpOptions::new();
        let mut i = 20;
        while i < data_offset {
            match t[i] {
                0 => break,
                1 => {
                    i += 1;
                }
                kind => {
                    if i + 1 >= data_offset {
                        return Err(ParseError::BadOption);
                    }
                    let len = t[i + 1] as usize;
                    if len < 2 || i + len > data_offset {
                        return Err(ParseError::BadOption);
                    }
                    let body = &t[i + 2..i + len];
                    match kind {
                        2 if len == 4 => {
                            options.push(TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])));
                        }
                        3 if len == 3 => options.push(TcpOption::WindowScale(body[0])),
                        4 if len == 2 => options.push(TcpOption::SackPermitted),
                        8 if len == 10 => options.push(TcpOption::Timestamps {
                            tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        }),
                        5 if len >= 10 && (len - 2).is_multiple_of(8) => {
                            let blocks = body
                                .chunks(8)
                                .map(|c| {
                                    (
                                        TcpSeq(u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
                                        TcpSeq(u32::from_be_bytes([c[4], c[5], c[6], c[7]])),
                                    )
                                })
                                .collect();
                            options.push(TcpOption::Sack(blocks));
                        }
                        _ => return Err(ParseError::BadOption),
                    }
                    i += len;
                }
            }
        }

        Ok(Ipv4Packet {
            src,
            dst,
            ident,
            ttl,
            transport: Transport::Tcp(TcpSegment {
                src_port: u16::from_be_bytes([t[0], t[1]]),
                dst_port: u16::from_be_bytes([t[2], t[3]]),
                seq: TcpSeq(u32::from_be_bytes([t[4], t[5], t[6], t[7]])),
                ack: TcpSeq(u32::from_be_bytes([t[8], t[9], t[10], t[11]])),
                flags: t[13],
                window: u16::from_be_bytes([t[14], t[15]]),
                options,
                payload_len,
            }),
        })
    }
}

/// RFC 1071 ones-complement checksum.
fn ones_complement_sum(bytes: &[u8]) -> u16 {
    fold(raw_sum(bytes))
}

/// RFC 1071 checksum over the logical concatenation `a ++ b` (used so
/// the pseudo-header never has to be copied in front of the TCP
/// header). `a` must be even-length for the concatenation to preserve
/// 16-bit word alignment.
fn ones_complement_sum_2(a: &[u8], b: &[u8]) -> u16 {
    debug_assert!(a.len().is_multiple_of(2));
    fold(raw_sum(a) + raw_sum(b))
}

fn raw_sum(bytes: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let Some(&b) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([b, 0]));
    }
    sum
}

fn fold(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pure_ack() -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 1, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident: 77,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 50000,
                dst_port: 5001,
                seq: TcpSeq(1000),
                ack: TcpSeq(123_456_789),
                flags: flags::ACK,
                window: 8192,
                options: vec![TcpOption::Timestamps {
                    tsval: 111,
                    tsecr: 222,
                }]
                .into(),
                payload_len: 0,
            }),
        }
    }

    #[test]
    fn pure_ack_with_timestamps_is_52_bytes() {
        // Matches the paper's Table 2: 9060 ACKs = 471120 bytes => 52 each
        // (20 IP + 20 TCP + 12 timestamps).
        assert_eq!(pure_ack().wire_len(), 52);
    }

    #[test]
    fn header_roundtrip() {
        let p = pure_ack();
        let bytes = p.header_bytes();
        assert_eq!(bytes.len(), 52);
        let q = Ipv4Packet::from_header_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_all_options() {
        let p = Ipv4Packet {
            src: Ipv4Addr::new(1, 2, 3, 4),
            dst: Ipv4Addr::new(5, 6, 7, 8),
            ident: 9,
            ttl: 63,
            transport: Transport::Tcp(TcpSegment {
                src_port: 1,
                dst_port: 2,
                seq: TcpSeq(u32::MAX - 3),
                ack: TcpSeq(17),
                flags: flags::SYN | flags::ACK,
                window: 65535,
                options: vec![
                    TcpOption::Mss(1460),
                    TcpOption::WindowScale(6),
                    TcpOption::SackPermitted,
                    TcpOption::Timestamps {
                        tsval: 0xDEAD_BEEF,
                        tsecr: 0,
                    },
                ]
                .into(),
                payload_len: 0,
            }),
        };
        let q = Ipv4Packet::from_header_bytes(&p.header_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_sack_blocks() {
        let p = Ipv4Packet {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            ident: 3,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 80,
                dst_port: 8080,
                seq: TcpSeq(5),
                ack: TcpSeq(1000),
                flags: flags::ACK,
                window: 100,
                options: vec![
                    TcpOption::Timestamps { tsval: 5, tsecr: 6 },
                    TcpOption::Sack(vec![
                        (TcpSeq(2000), TcpSeq(3460)),
                        (TcpSeq(5000), TcpSeq(6460)),
                    ]),
                ]
                .into(),
                payload_len: 0,
            }),
        };
        let q = Ipv4Packet::from_header_bytes(&p.header_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn data_segment_length_accounting() {
        let mut p = pure_ack();
        if let Transport::Tcp(t) = &mut p.transport {
            t.payload_len = 1448;
        }
        // 20 + 32 + 1448 = 1500: a full MTU segment with timestamps.
        assert_eq!(p.wire_len(), 1500);
        let q = Ipv4Packet::from_header_bytes(&p.header_bytes()).unwrap();
        assert_eq!(q.wire_len(), 1500);
    }

    #[test]
    fn corrupted_bytes_fail_checksum() {
        let p = pure_ack();
        let mut bytes = p.header_bytes();
        bytes[25] ^= 0xFF; // flip a TCP seq byte
        assert_eq!(
            Ipv4Packet::from_header_bytes(&bytes),
            Err(ParseError::BadTcpChecksum)
        );
        let mut bytes2 = p.header_bytes();
        bytes2[15] ^= 0x01; // flip an IP src byte
        assert_eq!(
            Ipv4Packet::from_header_bytes(&bytes2),
            Err(ParseError::BadIpChecksum)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = pure_ack().header_bytes();
        assert_eq!(
            Ipv4Packet::from_header_bytes(&bytes[..30]),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn pure_ack_predicate() {
        let p = pure_ack();
        let Transport::Tcp(t) = &p.transport else {
            unreachable!()
        };
        assert!(t.is_pure_ack());
        let mut syn = t.clone();
        syn.flags |= flags::SYN;
        assert!(!syn.is_pure_ack());
        let mut data = t.clone();
        data.payload_len = 1;
        assert!(!data.is_pure_ack());
    }

    #[test]
    fn five_tuple_reversal_and_bytes() {
        let ft = pure_ack().five_tuple();
        assert_eq!(ft.protocol, 6);
        let r = ft.reversed();
        assert_eq!(r.src_ip, ft.dst_ip);
        assert_eq!(r.dst_port, ft.src_port);
        assert_eq!(ft.bytes().len(), 13);
        assert_ne!(ft.bytes(), r.bytes());
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: sum of own checksum is zero.
        let p = pure_ack();
        let bytes = p.header_bytes();
        assert_eq!(ones_complement_sum(&bytes[..20]), 0);
    }
}
