//! Property-based tests: wire-format roundtrips and sequence arithmetic.

use hack_tcp::{flags, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};
use proptest::prelude::*;

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of((any::<u32>(), any::<u32>())),
        proptest::collection::vec((any::<u32>(), 1u32..100_000), 0..3),
    )
        .prop_map(|(mss, ws, sackp, ts, sacks)| {
            let mut o = Vec::new();
            if mss {
                o.push(TcpOption::Mss(1460));
            }
            if ws {
                o.push(TcpOption::WindowScale(6));
            }
            if sackp {
                o.push(TcpOption::SackPermitted);
            }
            if let Some((v, e)) = ts {
                o.push(TcpOption::Timestamps { tsval: v, tsecr: e });
            }
            if !sacks.is_empty() {
                o.push(TcpOption::Sack(
                    sacks
                        .into_iter()
                        .map(|(s, l)| (TcpSeq(s), TcpSeq(s.wrapping_add(l))))
                        .collect(),
                ));
            }
            o
        })
}

fn arb_packet() -> impl Strategy<Value = Ipv4Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        0u32..20_000,
        any::<u16>(),
        arb_options(),
        prop_oneof![
            Just(flags::ACK),
            Just(flags::ACK | flags::PSH),
            Just(flags::SYN),
            Just(flags::SYN | flags::ACK),
            Just(flags::ACK | flags::FIN),
        ],
    )
        .prop_map(
            |(src, dst, ident, sp, dp, seq, ack, plen, window, options, fl)| Ipv4Packet {
                src: Ipv4Addr(src),
                dst: Ipv4Addr(dst),
                ident,
                ttl: 64,
                transport: Transport::Tcp(TcpSegment {
                    src_port: sp,
                    dst_port: dp,
                    seq: TcpSeq(seq),
                    ack: TcpSeq(ack),
                    flags: fl,
                    window,
                    // Five options are possible here: exercises the
                    // InlineVec spill path too.
                    options: options.into(),
                    payload_len: plen,
                }),
            },
        )
}

proptest! {
    /// Serialization roundtrips exactly for any packet shape.
    #[test]
    fn header_roundtrip(p in arb_packet()) {
        let bytes = p.header_bytes();
        let q = Ipv4Packet::from_header_bytes(&bytes).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Any single-bit corruption of the header is caught by a checksum.
    #[test]
    fn bitflip_detected(p in arb_packet(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = p.header_bytes();
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        // Either a checksum error or (for length/offset bytes) a
        // structural error; never a silent wrong parse equal to nothing.
        match Ipv4Packet::from_header_bytes(&corrupted) {
            Err(_) => {}
            Ok(q) => {
                // A flip in the payload-length region of a data-offset
                // nibble can still parse; it must at least differ.
                prop_assert_ne!(p, q);
            }
        }
    }

    /// Sequence comparison is a strict total order on any window < 2^31.
    #[test]
    fn seq_order_antisymmetric(a in any::<u32>(), d in 1u32..0x7FFF_FFFF) {
        let x = TcpSeq(a);
        let y = x + d;
        prop_assert!(x.lt(y));
        prop_assert!(!y.lt(x));
        prop_assert!(y.gt(x));
        prop_assert_eq!(y - x, d);
    }

    /// in_window agrees with distance arithmetic.
    #[test]
    fn window_membership(lo in any::<u32>(), len in 1u32..1_000_000, off in 0u32..2_000_000) {
        let lo = TcpSeq(lo);
        let hi = lo + len;
        let x = lo + off;
        prop_assert_eq!(x.in_window(lo, hi), off < len);
    }
}
