//! Differential congestion-control conformance suite.
//!
//! Every algorithm behind [`CongestionControl`] is driven through the
//! *same* scripted ACK/loss/RTO traces and checked against per-algorithm
//! invariants, then fuzzed with arbitrary hook interleavings. The point
//! is differential: one shared harness, four implementations, so a
//! regression in any controller (or in the trait contract itself) shows
//! up as a divergence from invariants the others keep.
//!
//! Connection-level tests at the bottom cover the deterministic pacer
//! (never releases bytes faster than the controller's rate) and the
//! delivery-rate sampler under HACK-style held-ACK batching (a burst of
//! simultaneously-released ACKs must not inflate the bandwidth sample
//! above the true send rate).

use hack_sim::{SimDuration, SimTime};
use hack_tcp::{
    AckContext, BbrLite, BbrMode, CcKind, CongestionControl, Connection, Cubic, FiveTuple,
    Ipv4Addr, Ipv4Packet, RateSample, SendBudget, TcpConfig, TcpSegment, Transport,
};
use proptest::prelude::*;

const MSS: u32 = 1460;
const MSSB: u64 = MSS as u64;

// ---------------------------------------------------------------------
// Shared scripted-trace harness
// ---------------------------------------------------------------------

/// One step of a scripted congestion episode, algorithm-agnostic.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// A cumulative ACK of `segs` full segments, with a synthetic
    /// delivery-rate sample at `bw` bytes/sec.
    Ack { segs: u64, bw: u64 },
    /// Third dup ACK → `dupacks` further dup ACKs → full ACK (a whole
    /// NewReno-shaped recovery episode).
    Loss { dupacks: u32 },
    /// Triple dup ACK → one partial ACK → full ACK.
    PartialLoss,
    /// Retransmission timeout.
    Rto,
}

/// Drive one controller through a script, checking universal invariants
/// after every hook call. Returns the cwnd trajectory (one entry per
/// step).
fn run_script(kind: CcKind, script: &[Step]) -> Vec<u64> {
    let mut cc = kind.build(MSS, 3);
    let mut now = SimTime::from_millis(10);
    let srtt = SimDuration::from_millis(100);
    let mut trajectory = Vec::with_capacity(script.len());

    let check = |cc: &dyn CongestionControl, at: &str| {
        assert!(
            cc.cwnd() >= MSSB,
            "[{kind:?}] cwnd {} < 1 MSS {at}",
            cc.cwnd()
        );
        assert!(
            cc.cwnd() < 1 << 40,
            "[{kind:?}] cwnd {} runaway {at}",
            cc.cwnd()
        );
    };

    for (i, step) in script.iter().enumerate() {
        now += srtt;
        match *step {
            Step::Ack { segs, bw } => {
                let flight = cc.cwnd().min(segs * MSSB);
                for _ in 0..segs {
                    let sample = (bw > 0).then(|| RateSample {
                        delivered: MSSB,
                        interval: SimDuration::from_nanos(
                            (MSSB as u128 * 1_000_000_000 / bw as u128) as u64,
                        ),
                        rtt: srtt,
                    });
                    cc.on_ack(&AckContext {
                        now,
                        acked_bytes: MSSB,
                        flight,
                        srtt: Some(srtt),
                        sample,
                    });
                    check(cc.as_ref(), "after on_ack");
                }
            }
            Step::Loss { dupacks } => {
                let flight = cc.cwnd();
                let ss = cc.on_triple_dupack(flight, now);
                assert!(cc.in_recovery(), "[{kind:?}] not in recovery (step {i})");
                assert!(
                    ss >= 2 * MSSB,
                    "[{kind:?}] ssthresh {ss} below 2 MSS floor (step {i})"
                );
                assert!(
                    ss <= flight.max(4 * MSSB),
                    "[{kind:?}] ssthresh {ss} above flight {flight} (step {i})"
                );
                check(cc.as_ref(), "after on_triple_dupack");
                for _ in 0..dupacks {
                    cc.on_recovery_dupack();
                    check(cc.as_ref(), "after on_recovery_dupack");
                }
                cc.on_full_ack(now);
                assert!(!cc.in_recovery(), "[{kind:?}] stuck in recovery (step {i})");
                check(cc.as_ref(), "after on_full_ack");
            }
            Step::PartialLoss => {
                let flight = cc.cwnd();
                cc.on_triple_dupack(flight, now);
                cc.on_partial_ack(2 * MSSB);
                assert!(
                    cc.in_recovery(),
                    "[{kind:?}] partial ACK must stay in recovery (step {i})"
                );
                check(cc.as_ref(), "after on_partial_ack");
                cc.on_full_ack(now);
                assert!(!cc.in_recovery());
                check(cc.as_ref(), "after on_full_ack");
            }
            Step::Rto => {
                cc.on_timeout(cc.cwnd(), now);
                assert!(
                    !cc.in_recovery(),
                    "[{kind:?}] RTO must abort recovery (step {i})"
                );
                check(cc.as_ref(), "after on_timeout");
            }
        }
        trajectory.push(cc.cwnd());
    }
    trajectory
}

/// Steady growth: enough ACKs to leave slow start far behind.
fn steady_script() -> Vec<Step> {
    let mut s = vec![Step::Loss { dupacks: 2 }]; // get a finite ssthresh
    s.extend(std::iter::repeat_n(
        Step::Ack {
            segs: 8,
            bw: 2_000_000,
        },
        40,
    ));
    s
}

/// Periodic loss: sawtooth between growth and halvings.
fn lossy_script() -> Vec<Step> {
    let mut s = Vec::new();
    for _ in 0..6 {
        s.extend(std::iter::repeat_n(
            Step::Ack {
                segs: 6,
                bw: 1_000_000,
            },
            10,
        ));
        s.push(Step::Loss { dupacks: 3 });
        s.push(Step::PartialLoss);
    }
    s
}

/// RTO storm: repeated collapses with brief recoveries between.
fn rto_script() -> Vec<Step> {
    let mut s = Vec::new();
    for _ in 0..5 {
        s.extend(std::iter::repeat_n(
            Step::Ack {
                segs: 4,
                bw: 500_000,
            },
            6,
        ));
        s.push(Step::Rto);
        s.push(Step::Rto);
    }
    s
}

#[test]
fn all_algorithms_survive_shared_traces() {
    for kind in CcKind::ALL {
        run_script(kind, &steady_script());
        run_script(kind, &lossy_script());
        run_script(kind, &rto_script());
    }
}

#[test]
fn algorithms_actually_diverge() {
    // Same steady trace, four different final windows: proof the trait
    // dispatch is live and the growth laws really differ.
    let finals: Vec<u64> = CcKind::ALL
        .iter()
        .map(|&k| *run_script(k, &steady_script()).last().unwrap())
        .collect();
    for i in 0..finals.len() {
        for j in i + 1..finals.len() {
            assert_ne!(
                finals[i],
                finals[j],
                "{:?} and {:?} produced identical trajectories",
                CcKind::ALL[i],
                CcKind::ALL[j]
            );
        }
    }
}

#[test]
fn loss_response_multiplicative_decrease_bounds() {
    // The loss-based algorithms cut ssthresh to β·window with
    // β ∈ [0.5, 0.7]; BbrLite conserves the flight instead.
    let now = SimTime::from_millis(10);
    for kind in [CcKind::Reno, CcKind::Cubic, CcKind::Highspeed] {
        let mut cc = kind.build(MSS, 3);
        // Grow to a sizeable window first.
        for _ in 0..200 {
            cc.on_ack(&AckContext {
                now,
                acked_bytes: MSSB,
                flight: cc.cwnd(),
                srtt: Some(SimDuration::from_millis(100)),
                sample: None,
            });
        }
        let before = cc.cwnd();
        assert!(before >= 32 * MSSB, "[{kind:?}] failed to grow: {before}");
        let ss = cc.on_triple_dupack(before, now);
        assert!(
            ss >= before / 2 - MSSB && ss <= before * 7 / 10 + MSSB,
            "[{kind:?}] ssthresh {ss} outside [w/2, 0.7w] of {before}"
        );
    }
    // BbrLite: packet conservation, window restored on recovery exit.
    let mut bbr = BbrLite::new(MSS, 3);
    let flight = 20 * MSSB;
    let ss = bbr.on_triple_dupack(flight, now);
    assert_eq!(ss, flight, "BbrLite conserves the flight");
    bbr.on_full_ack(now);
    assert!(
        bbr.cwnd() >= 3 * MSSB,
        "BbrLite restores its prior window on exit"
    );
}

#[test]
fn cubic_growth_is_concave_below_the_plateau() {
    // Climbing back toward W_max, the cubic curve decelerates: each
    // RTT's window increment is no larger than the one before (modulo
    // integer rounding). Build a plateau by halving from a big window.
    let mut cc = Cubic::new(MSS, 3);
    let mut now = SimTime::from_millis(10);
    let srtt = SimDuration::from_millis(100);
    let ack = |cc: &mut Cubic, now: SimTime, bytes: u64| {
        cc.on_ack(&AckContext {
            now,
            acked_bytes: bytes,
            flight: cc.cwnd(),
            srtt: Some(srtt),
            sample: None,
        });
    };
    // Grow to ~200 segments, then lose: W_max ≈ 200, w drops to ~140.
    for _ in 0..400 {
        ack(&mut cc, now, MSSB);
    }
    cc.on_triple_dupack(cc.cwnd(), now);
    cc.on_full_ack(now);
    let plateau = cc.cwnd() * 10 / 7; // w_max ≈ w / β
                                      // One RTT per iteration: ack a window's worth of segments.
    let mut samples = Vec::new();
    for _ in 0..60 {
        now += srtt;
        let w = cc.cwnd();
        let mut acked = 0;
        while acked < w {
            ack(&mut cc, now, MSSB);
            acked += MSSB;
        }
        samples.push(cc.cwnd());
    }
    let below: Vec<u64> = samples
        .iter()
        .copied()
        .take_while(|&w| w < plateau * 95 / 100)
        .collect();
    assert!(
        below.len() >= 5,
        "never approached the plateau: {samples:?}"
    );
    let increments: Vec<i64> = below
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    for (k, pair) in increments.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] + MSSB as i64 / 4,
            "increment grew below the plateau at RTT {k}: {increments:?}"
        );
    }
    // And monotone: the window never shrinks while climbing.
    for pair in below.windows(2) {
        assert!(pair[1] >= pair[0], "window shrank without loss: {below:?}");
    }
}

// ---------------------------------------------------------------------
// BbrLite model invariants
// ---------------------------------------------------------------------

/// Feed `n` equal-rate samples at `bw` bytes/sec, one per `rtt`.
fn feed_bbr(bbr: &mut BbrLite, n: usize, bw: u64, rtt: SimDuration, start: SimTime) -> SimTime {
    let mut now = start;
    for _ in 0..n {
        now += rtt;
        bbr.on_ack(&AckContext {
            now,
            acked_bytes: MSSB,
            // A small flight: lets Drain observe flight ≤ BDP and hand
            // over to ProbeBw once the model is in place.
            flight: 4 * MSSB,
            srtt: Some(rtt),
            sample: Some(RateSample {
                delivered: MSSB,
                interval: SimDuration::from_nanos(
                    (MSSB as u128 * 1_000_000_000 / bw as u128) as u64,
                ),
                rtt,
            }),
        });
    }
    now
}

#[test]
fn bbr_pacing_rate_bounded_by_gain_times_bandwidth() {
    let mut bbr = BbrLite::new(MSS, 3);
    let rtt = SimDuration::from_millis(50);
    let bw = 1_250_000; // 10 Mbps
    let mut now = SimTime::from_millis(10);
    for _ in 0..50 {
        now = feed_bbr(&mut bbr, 1, bw, rtt, now);
        if let Some(rate) = bbr.pacing_rate() {
            // Highest gain in any mode is the 2.885 startup gain, and
            // the max filter can hold nothing above the fed bandwidth.
            let bound = (2.885 * bw as f64) as u64 + 1;
            assert!(rate <= bound, "pacing {rate} > 2.885 × bw {bw}");
            assert!(bbr.bw_estimate() <= bw, "bw filter invented bandwidth");
        }
    }
}

#[test]
fn bbr_walks_startup_drain_probebw() {
    let mut bbr = BbrLite::new(MSS, 3);
    let rtt = SimDuration::from_millis(50);
    assert_eq!(bbr.mode(), BbrMode::Startup);
    // Constant-bandwidth samples: growth stalls, pipe declared full.
    let now = feed_bbr(&mut bbr, 8, 2_000_000, rtt, SimTime::from_millis(10));
    assert_ne!(bbr.mode(), BbrMode::Startup, "full-pipe detection failed");
    // Keep feeding: with the flight below one BDP, Drain hands over and
    // the cycle starts.
    feed_bbr(&mut bbr, 20, 2_000_000, rtt, now);
    assert_eq!(bbr.mode(), BbrMode::ProbeBw, "never reached steady state");
    let snap = bbr.snapshot().expect("BbrLite always reports");
    assert_eq!(snap.state, BbrMode::ProbeBw as u32);
    assert_eq!(snap.bw, bbr.bw_estimate());
    // cwnd sits near cwnd_gain × BDP: BDP = 2 MB/s × 50 ms = 100 kB.
    let bdp = 100_000;
    assert!(
        bbr.cwnd() <= 3 * bdp,
        "cwnd {} far above 2×BDP {bdp}",
        bbr.cwnd()
    );
    assert!(bbr.cwnd() >= 4 * MSSB);
}

#[test]
fn bbr_rto_keeps_the_path_model() {
    let mut bbr = BbrLite::new(MSS, 3);
    let rtt = SimDuration::from_millis(50);
    let now = feed_bbr(&mut bbr, 10, 1_000_000, rtt, SimTime::from_millis(10));
    let bw = bbr.bw_estimate();
    assert!(bw > 0);
    bbr.on_timeout(bbr.cwnd(), now);
    assert_eq!(bbr.cwnd(), MSSB, "RTO collapses the window");
    assert_eq!(bbr.bw_estimate(), bw, "RTO must not forget the pipe");
    assert!(bbr.min_rtt().is_some());
}

// ---------------------------------------------------------------------
// Property tests: arbitrary hook interleavings
// ---------------------------------------------------------------------

/// Compact generator-friendly op encoding.
#[derive(Debug, Clone, Copy)]
enum Op {
    Ack { segs: u8, bw_kbps: u16 },
    TripleDup,
    RecoveryDup,
    Partial { segs: u8 },
    FullAck,
    Timeout,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..16, 1u16..20_000).prop_map(|(segs, bw_kbps)| Op::Ack { segs, bw_kbps }),
        Just(Op::TripleDup),
        Just(Op::RecoveryDup),
        (1u8..8).prop_map(|segs| Op::Partial { segs }),
        Just(Op::FullAck),
        Just(Op::Timeout),
    ]
}

proptest! {
    /// Any interleaving of hooks, on every algorithm: no panic, the
    /// window never collapses below 1 MSS or runs away past the cap,
    /// and a finite ssthresh never drops below its 2-MSS floor.
    #[test]
    fn arbitrary_interleavings_hold_invariants(ops in proptest::collection::vec(arb_op(), 1..120)) {
        for kind in CcKind::ALL {
            let mut cc = kind.build(MSS, 3);
            let cap = 1024 * MSSB;
            cc.set_cwnd_cap(cap);
            let mut now = SimTime::from_millis(1);
            for op in &ops {
                now += SimDuration::from_millis(20);
                match *op {
                    Op::Ack { segs, bw_kbps } => {
                        let bw = u64::from(bw_kbps) * 1000;
                        for _ in 0..segs {
                            cc.on_ack(&AckContext {
                                now,
                                acked_bytes: MSSB,
                                flight: cc.cwnd(),
                                srtt: Some(SimDuration::from_millis(80)),
                                sample: Some(RateSample {
                                    delivered: MSSB,
                                    interval: SimDuration::from_nanos(
                                        (MSSB as u128 * 1_000_000_000 / bw as u128) as u64,
                                    ),
                                    rtt: SimDuration::from_millis(80),
                                }),
                            });
                        }
                    }
                    Op::TripleDup => { cc.on_triple_dupack(cc.cwnd(), now); }
                    Op::RecoveryDup => cc.on_recovery_dupack(),
                    Op::Partial { segs } => cc.on_partial_ack(u64::from(segs) * MSSB),
                    Op::FullAck => cc.on_full_ack(now),
                    Op::Timeout => cc.on_timeout(cc.cwnd(), now),
                }
                prop_assert!(cc.cwnd() >= MSSB, "[{:?}] cwnd underflow", kind);
                // Recovery inflation may legitimately exceed the cap by
                // the dup-ack inflation; everything else must respect it.
                if !cc.in_recovery() && kind != CcKind::Reno {
                    prop_assert!(
                        cc.cwnd() <= cap,
                        "[{:?}] cwnd {} above cap {}",
                        kind, cc.cwnd(), cap
                    );
                }
                prop_assert!(cc.cwnd() < 1 << 42, "[{:?}] cwnd runaway", kind);
                let ss = cc.ssthresh();
                prop_assert!(
                    ss == u64::MAX || ss >= 2 * MSSB,
                    "[{:?}] ssthresh {} below floor",
                    kind, ss
                );
            }
        }
    }

    /// The delivery-rate math never divides by zero or overflows, and
    /// bandwidth() inverts the interval construction.
    #[test]
    fn rate_sample_bandwidth_total(delivered in 1u64..u64::from(u32::MAX), ns in 1u64..10_000_000_000u64) {
        let s = RateSample {
            delivered,
            interval: SimDuration::from_nanos(ns),
            rtt: SimDuration::from_millis(1),
        };
        let bw = s.bandwidth();
        let expect = (u128::from(delivered) * 1_000_000_000 / u128::from(ns)) as u64;
        prop_assert_eq!(bw, expect);
    }
}

// ---------------------------------------------------------------------
// Connection-level: pacer and sampler
// ---------------------------------------------------------------------

fn tuple() -> FiveTuple {
    FiveTuple {
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        src_port: 5001,
        dst_port: 80,
        protocol: 6,
    }
}

fn connected(cc: CcKind, init_cwnd_segs: u32, now: SimTime) -> (Connection, Connection) {
    let ccfg = TcpConfig {
        cc,
        init_cwnd_segs,
        ..TcpConfig::default()
    };
    let scfg = TcpConfig {
        delayed_ack: false,
        ..TcpConfig::default()
    };
    let (mut c, syns) = Connection::client(ccfg, tuple(), 1000, now);
    let mut s = Connection::server(scfg, tuple().reversed(), 9000);
    let synack = s.on_packet(&syns[0], now);
    let acks = c.on_packet(&synack[0], now);
    s.on_packet(&acks[0], now);
    (c, s)
}

fn seg(p: &Ipv4Packet) -> &TcpSegment {
    match &p.transport {
        Transport::Tcp(t) => t,
        Transport::Udp { .. } => panic!("not tcp"),
    }
}

#[test]
fn pacer_never_releases_faster_than_rate() {
    // A BBR sender over a scripted 10 ms wire. Record each data
    // segment's release time, payload, and the pacing rate in force;
    // once pacing engages, consecutive releases must be separated by at
    // least payload/rate.
    let t0 = SimTime::from_millis(10);
    let (mut c, mut s) = connected(CcKind::Bbr, 3, t0);
    c.set_budget(SendBudget::Unlimited);

    let mut now = t0;
    let mut releases: Vec<(SimTime, u64, Option<u64>)> = Vec::new();
    fn record(
        releases: &mut Vec<(SimTime, u64, Option<u64>)>,
        pkts: &[Ipv4Packet],
        at: SimTime,
        rate: Option<u64>,
    ) {
        for p in pkts {
            if seg(p).payload_len > 0 {
                releases.push((at, u64::from(seg(p).payload_len), rate));
            }
        }
    }

    let first = c.poll_send(now);
    record(
        &mut releases,
        &first,
        now,
        c.congestion_control().pacing_rate(),
    );
    let mut to_server = first;
    for _ in 0..4000 {
        // 10 ms one-way delay each direction.
        now += SimDuration::from_millis(10);
        let mut acks = Vec::new();
        for p in &to_server {
            acks.extend(s.on_packet(p, now));
        }
        now += SimDuration::from_millis(10);
        let mut data = Vec::new();
        // Record per ACK: the rate in force when a segment was released
        // is the controller's rate right after that ACK was processed
        // (the next ACK may move it).
        for a in &acks {
            let out = c.on_packet(a, now);
            record(
                &mut releases,
                &out,
                now,
                c.congestion_control().pacing_rate(),
            );
            data.extend(out);
        }
        // Drain any pacer-deferred segments at their deadlines.
        while let Some(dl) = c.next_timer() {
            if dl > now + SimDuration::from_millis(5) {
                break;
            }
            let late = c.on_timer(dl);
            record(
                &mut releases,
                &late,
                dl,
                c.congestion_control().pacing_rate(),
            );
            if late.is_empty() {
                break;
            }
            data.extend(late);
        }
        to_server = data;
        if releases.len() > 600 {
            break;
        }
    }

    let paced: Vec<_> = releases.iter().filter(|r| r.2.is_some()).collect();
    assert!(
        paced.len() > 50,
        "pacing never engaged ({} paced of {} sends)",
        paced.len(),
        releases.len()
    );
    // The pacer contract: after releasing `len` bytes at `t` under rate
    // `r`, the next release waits at least ceil(len/r).
    let mut violations = 0;
    for w in releases.windows(2) {
        let (t1, len, rate) = w[0];
        let (t2, _, _) = w[1];
        if let Some(r) = rate {
            let gap = SimDuration::from_nanos(
                ((u128::from(len) * 1_000_000_000).div_ceil(u128::from(r))) as u64,
            );
            if t2 < t1 + gap {
                violations += 1;
            }
        }
    }
    assert_eq!(violations, 0, "pacer released bytes faster than its rate");
    assert!(c.bytes_acked() > 0);
}

#[test]
fn reno_has_no_pacer_and_bursts_full_windows() {
    // Control case for the pacer test: loss-based Reno reports no rate
    // and poll_send releases the whole window at one instant.
    let t0 = SimTime::from_millis(10);
    let (mut c, _s) = connected(CcKind::Reno, 3, t0);
    c.set_budget(SendBudget::Unlimited);
    assert!(c.congestion_control().pacing_rate().is_none());
    let burst = c.poll_send(t0);
    assert_eq!(burst.len(), 3, "IW released in one burst, unpaced");
}

#[test]
fn held_ack_burst_does_not_inflate_bandwidth_sample() {
    // HACK's compress side holds TCP ACKs and can release several at
    // one instant. The sampler's interval = max(send-side, ack-side)
    // guard must keep every bandwidth sample at or below the true send
    // rate, no matter how compressed the ACK arrivals are.
    let t0 = SimTime::from_millis(100);
    let (mut c, mut s) = connected(CcKind::Bbr, 16, t0);

    // Send 10 segments exactly 1 ms apart (the "link rate"): widen the
    // byte budget one MSS at a time. The client needs an initial window
    // big enough to keep all ten in flight unacknowledged.
    let spacing = SimDuration::from_millis(1);
    let link_rate = MSSB * 1000; // bytes/sec at one segment per ms
    let mut sent = Vec::new();
    let mut now = t0;
    for i in 1..=10u64 {
        c.set_budget(SendBudget::Bytes(i * MSSB));
        let pkts = c.poll_send(now);
        assert_eq!(pkts.len(), 1, "one segment per budget step");
        sent.extend(pkts);
        now += spacing;
    }

    // The receiver sees them on schedule and generates one ACK each
    // (no delayed ACKs), but HACK holds the lot...
    let mut held = Vec::new();
    let mut at = t0 + SimDuration::from_millis(5);
    for p in &sent {
        held.extend(s.on_packet(p, at));
        at += spacing;
    }
    assert_eq!(held.len(), 10);

    // ...and releases the whole batch at one instant.
    let release = at + SimDuration::from_millis(30);
    let mut max_bw = 0u64;
    let mut last_delivered = c.delivered();
    for a in &held {
        c.on_packet(a, release);
        assert!(c.delivered() >= last_delivered, "delivered went backwards");
        last_delivered = c.delivered();
        if let Some(sample) = c.last_rate_sample() {
            max_bw = max_bw.max(sample.bandwidth());
        }
    }
    assert_eq!(c.delivered(), 10 * MSSB, "all ten segments sampled");
    assert!(max_bw > 0, "sampler produced no samples");
    assert!(
        max_bw <= link_rate * 105 / 100,
        "burst ACKs inflated bandwidth: sampled {max_bw} B/s over true rate {link_rate} B/s"
    );
}
