//! Property tests for the RFC 6298 RTO estimator, plus the connection's
//! Karn rule: a retransmitted segment's ACK never feeds an RTT sample.

use hack_sim::{SimDuration, SimTime};
use hack_tcp::{
    CcKind, Connection, FiveTuple, Ipv4Addr, Ipv4Packet, RtoEstimator, SendBudget, TcpConfig,
    TcpSegment, Transport,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum RtoOp {
    /// An RTT measurement in microseconds.
    Measure(u64),
    /// The retransmission timer fired.
    Timeout,
}

fn arb_rto_op() -> impl Strategy<Value = RtoOp> {
    prop_oneof![
        (1u64..120_000_000).prop_map(RtoOp::Measure), // up to 120 s
        Just(RtoOp::Timeout),
    ]
}

proptest! {
    /// After any operation sequence, the effective RTO stays inside
    /// [min_rto, max_rto] — the clamp applies *after* backoff doubling,
    /// so it can neither undershoot the floor nor overflow past the cap.
    #[test]
    fn rto_always_within_clamp(
        ops in proptest::collection::vec(arb_rto_op(), 0..200),
        min_ms in 1u64..2_000,
        span_ms in 1u64..120_000,
    ) {
        let min_rto = SimDuration::from_millis(min_ms);
        let max_rto = SimDuration::from_millis(min_ms + span_ms);
        let mut e = RtoEstimator::new(min_rto, max_rto);
        prop_assert!(e.rto() >= min_rto && e.rto() <= max_rto, "initial RTO outside clamp");
        for op in ops {
            match op {
                RtoOp::Measure(us) => e.on_measurement(SimDuration::from_micros(us)),
                RtoOp::Timeout => e.on_timeout(),
            }
            let rto = e.rto();
            prop_assert!(rto >= min_rto, "RTO {} below min {}", rto, min_rto);
            prop_assert!(rto <= max_rto, "RTO {} above max {}", rto, max_rto);
        }
    }

    /// Karn backoff: each timeout exactly doubles the effective RTO
    /// until the max clamps it, and doubling is monotone (an RTO after
    /// a timeout is never shorter than before it).
    #[test]
    fn timeouts_double_then_clamp(
        warmup in proptest::collection::vec(1u64..5_000_000u64, 0..10),
        timeouts in 1usize..30,
    ) {
        let min_rto = SimDuration::from_millis(200);
        let max_rto = SimDuration::from_secs(60);
        let mut e = RtoEstimator::new(min_rto, max_rto);
        for us in warmup {
            e.on_measurement(SimDuration::from_micros(us));
        }
        let mut prev = e.rto();
        for _ in 0..timeouts {
            e.on_timeout();
            let cur = e.rto();
            prop_assert!(cur >= prev, "backoff shrank the RTO: {} -> {}", prev, cur);
            prop_assert_eq!(
                cur,
                (prev * 2).min(max_rto).max(min_rto),
                "timeout must double-then-clamp"
            );
            prev = cur;
        }
    }

    /// A fresh measurement clears any accumulated backoff: the RTO
    /// returns to the RFC 6298 formula value, not a backed-off one.
    #[test]
    fn measurement_clears_backoff(
        rtt_us in 1_000u64..5_000_000,
        timeouts in 1usize..16,
    ) {
        let min_rto = SimDuration::from_millis(200);
        let max_rto = SimDuration::from_secs(60);
        let mut a = RtoEstimator::new(min_rto, max_rto);
        let mut b = RtoEstimator::new(min_rto, max_rto);
        let rtt = SimDuration::from_micros(rtt_us);
        a.on_measurement(rtt);
        b.on_measurement(rtt);
        for _ in 0..timeouts {
            b.on_timeout();
        }
        // Same second measurement on both: b's backoff must vanish.
        a.on_measurement(rtt);
        b.on_measurement(rtt);
        prop_assert_eq!(a.rto(), b.rto(), "backoff leaked through a measurement");
        prop_assert_eq!(a.srtt(), b.srtt(), "timeouts must not touch srtt");
    }
}

// ---------------------------------------------------------------------
// Karn's rule at the connection sampler
// ---------------------------------------------------------------------

fn tuple() -> FiveTuple {
    FiveTuple {
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        src_port: 5001,
        dst_port: 80,
        protocol: 6,
    }
}

fn seg(p: &Ipv4Packet) -> &TcpSegment {
    match &p.transport {
        Transport::Tcp(t) => t,
        Transport::Udp { .. } => panic!("not tcp"),
    }
}

/// RTO → go-back-N → the (late) ACK of the original flight arrives.
/// That ACK covers segments whose records were marked retransmitted;
/// Karn's rule says they contribute no RTT sample — an ambiguous ACK
/// (original or retransmission?) must not poison the RTT statistics.
#[test]
fn retransmitted_segments_never_produce_rtt_samples() {
    let t0 = SimTime::from_millis(10);
    let ccfg = TcpConfig {
        cc: CcKind::Reno,
        ..TcpConfig::default()
    };
    let scfg = TcpConfig {
        delayed_ack: false,
        // The RTO-side measurement path uses timestamp echoes; disable
        // timestamps so only the sampler's per-segment RTT path exists
        // and the assertion isolates Karn at the sampler.
        use_timestamps: false,
        ..TcpConfig::default()
    };
    let (mut c, syns) = Connection::client(ccfg, tuple(), 1000, t0);
    let mut s = Connection::server(scfg, tuple().reversed(), 9000);
    let synack = s.on_packet(&syns[0], t0);
    let acks = c.on_packet(&synack[0], t0);
    s.on_packet(&acks[0], t0);

    c.set_budget(SendBudget::Unlimited);
    let flight = c.poll_send(t0);
    assert!(!flight.is_empty());
    let samples_before = c.stats().rtt_samples;

    // The whole flight is lost; the RTO fires and go-back-N resends.
    let rto_at = c.next_timer().expect("rto armed");
    let resent = c.on_timer(rto_at);
    assert!(resent.iter().any(|p| seg(p).payload_len > 0));

    // The *original* flight's ACKs now limp in (the wire delayed, not
    // dropped, them) — ambiguous: they could equally ACK the resend.
    let ack_at = rto_at + SimDuration::from_millis(50);
    let mut late_acks = Vec::new();
    for p in &flight {
        late_acks.extend(s.on_packet(p, ack_at));
    }
    assert!(!late_acks.is_empty());
    // Processing the ACKs reopens the window; the returned packets are
    // the next flight of fresh data.
    let mut fresh = Vec::new();
    for a in &late_acks {
        fresh.extend(c.on_packet(a, ack_at));
    }
    fresh.retain(|p| seg(p).payload_len > 0);

    assert!(c.bytes_acked() > 0, "the late ACKs did land");
    assert_eq!(
        c.stats().rtt_samples,
        samples_before,
        "a retransmitted segment produced an RTT sample (Karn violation)"
    );
    assert!(
        c.last_rate_sample().is_none(),
        "a retransmitted segment produced a delivery-rate sample"
    );

    // New, clean data after recovery *does* sample again.
    assert!(!fresh.is_empty(), "sender resumed");
    let t2 = ack_at + SimDuration::from_millis(20);
    let mut acks2 = Vec::new();
    for p in &fresh {
        acks2.extend(s.on_packet(p, t2));
    }
    for a in &acks2 {
        c.on_packet(a, t2);
    }
    assert!(
        c.stats().rtt_samples > samples_before,
        "clean segments must resume RTT sampling"
    );
}
