//! A/B-compare the two event-queue implementations on the same
//! end-to-end scenario:
//!
//! ```sh
//! cargo run --release -p hack-bench --example queue_compare
//! ```
//!
//! Both kinds must produce the same goodput (the run is deterministic
//! by seed, independent of queue implementation); only events/sec may
//! differ. Useful when touching `hack-sim::queue` to see whether the
//! calendar queue still beats the reference heap on the real workload.

use hack_core::{run, HackMode, ScenarioBuilder};
use hack_sim::{QueueKind, SimDuration};
use std::time::Instant;

fn main() {
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        for rep in 0..2u64 {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
            cfg.duration = SimDuration::from_millis(1000);
            cfg.warmup = SimDuration::from_millis(200);
            cfg.seed = 1 + rep;
            cfg.queue = kind;
            let t0 = Instant::now();
            let r = run(cfg);
            let wall = t0.elapsed();
            println!(
                "{kind:?} seed{}: {:.0} ev/s ({} events, {:.1} Mbps)",
                1 + rep,
                r.events_dispatched as f64 / wall.as_secs_f64(),
                r.events_dispatched,
                r.aggregate_goodput_mbps
            );
        }
    }
}
