//! Shared command-line options for the experiment binaries.
//!
//! Every `experiments` subcommand used to re-read `--quick` / `--json`
//! / `--trace` out of the raw argument vector; [`CommonOpts::parse`] is
//! now the single place flags are interpreted, and [`USAGE`] the single
//! help text (covered by a snapshot test).

use std::path::PathBuf;

use hack_campaign::CampaignOptions;

/// The `experiments --help` text. Regenerate the snapshot with
/// `cargo run -p hack-bench --bin experiments -- --help \
///  > crates/bench/tests/snapshots/experiments-help.txt`.
pub const USAGE: &str = "\
experiments - regenerate the HACK paper's tables and figures (USENIX ATC '14)

USAGE:
    experiments [SUBCOMMAND] [FLAGS]

SUBCOMMANDS:
    fig1a           theoretical goodput vs 802.11a rate (analysis)
    fig1b           theoretical goodput vs 802.11n rate up to 600 Mbps
    fig9            SoRa testbed goodput: UDP / HACK / TCP, 1 and 2 clients
    table1          frame retry breakdown for the fig9 scenarios
    table2          ACK counts/bytes and compression ratio (25 MB transfer)
    table3          TCP ACK time-overhead breakdown (25 MB transfer)
    xval            SoRa <-> simulation cross-validation (par. 4.2)
    fig10           802.11n aggregate goodput vs number of clients
    fig11           goodput envelope vs SNR across 802.11n rates
    fig12           theoretical vs simulated goodput vs 802.11n rate
    loss-sweep      goodput vs loss rate, TCP vs TCP/HACK, i.i.d. vs bursty
                    (runs as a loss x channel x mode campaign)
    fault-matrix    one seeded run per loss model (ideal / fixed / burst /
                    corrupting / supervised); exits nonzero on zero goodput
                    or a silent corrupted-delivery path (CI smoke)
    chaos-recovery  supervised TCP/HACK vs plain TCP under the corrupting/
                    burst matrix, plus a loss storm that heals mid-run;
                    exits nonzero if any flow ends stalled or permanently
                    degraded despite a healthy channel (CI smoke)
    campaign-smoke  tiny 2x2x2 sweep run twice: fails if parallel and
                    serial aggregates differ, or if the second run gets
                    under 90% cache hits (CI smoke)
    cc-matrix       congestion control {reno,cubic,hstcp,bbr} x hack
                    on/off x {ideal,burst} channel; exits nonzero on zero
                    goodput, a silent RTT sampler, or parallel != serial
                    campaign reports (CI smoke)
    traffic-matrix  traffic model {bulk,short,bidir,cbr,onoff} x hack
                    on/off x {ideal,burst} channel with per-class FCT /
                    latency percentiles; exits nonzero on zero goodput,
                    a stalled short-flow loop, a silent latency sampler,
                    a one-sided bidirectional HACK cell, or parallel !=
                    serial campaign reports (CI smoke)
    dense-sweep     multi-BSS enterprise floor: HACK-vs-TCP goodput and
                    client medium-acquisition savings as BSS count and
                    per-cell station count grow (sharded parallel worlds)
    dense-smoke     multi-BSS worlds sharded at 1 vs 4 threads; exits
                    nonzero on any trace/exchange digest divergence or
                    zero goodput (CI smoke)
    roam-chaos      randomized mid-flow AP handoffs (seeded schedules,
                    flaky associations, a HACK-incapable AP) over plain
                    TCP vs supervised TCP/HACK; exits nonzero if any
                    flow ends stalled, no handoff completes, or a
                    sharded run diverges between 1 and 4 threads
                    (CI smoke)
    ablate-timer | ablate-delack | ablate-sync | ablate-txop
    all             everything above

FLAGS:
    --quick         shorten runs and seed counts (for CI); defaults follow
                    the paper's shape (5 runs per point)
    --seeds <n>     override the per-point seed count
    --json          additionally emit one machine-readable JSON object on
                    stdout (campaign subcommands, fault-matrix,
                    chaos-recovery)
    --trace <path>  capture a structured cross-layer event trace per run:
                    <path>.runR.seedS.jsonl holds the events,
                    <path>.runR.seedS.digest the binary digest
                    (byte-identical for the same seed)
    --threads <n>   campaign worker threads (default: all cores; campaigns
                    produce byte-identical output at any thread count)
    --cache <dir>   content-addressed result cache for campaign
                    subcommands; re-runs and interrupted sweeps resume
                    from completed jobs
    --help, -h      print this help
";

/// Flags shared by every `experiments` subcommand.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Seeds (runs) per data point.
    pub seeds: u64,
    /// Per-run simulated duration, seconds.
    pub secs: u64,
    /// CI mode: shorter runs, fewer seeds.
    pub quick: bool,
    /// Also emit machine-readable JSON on stdout.
    pub json: bool,
    /// Event-trace output prefix (`--trace`).
    pub trace: Option<PathBuf>,
    /// Campaign worker threads (0 = `available_parallelism`).
    pub threads: usize,
    /// Campaign result-cache directory.
    pub cache_dir: Option<PathBuf>,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for CommonOpts {
    fn default() -> Self {
        Self {
            seeds: 5,
            secs: 10,
            quick: false,
            json: false,
            trace: None,
            threads: 0,
            cache_dir: None,
            help: false,
        }
    }
}

fn value_of<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

impl CommonOpts {
    /// Parse an argument vector (without the program name) into options
    /// plus the first positional argument (the subcommand), if any.
    pub fn parse(args: &[String]) -> Result<(Self, Option<String>), String> {
        let mut o = Self::default();
        if args.iter().any(|a| a == "--quick") {
            o.quick = true;
            o.seeds = 2;
            o.secs = 3;
        }
        let mut positional = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => {}
                "--json" => o.json = true,
                "--help" | "-h" => o.help = true,
                "--trace" => o.trace = Some(PathBuf::from(value_of(&mut it, "--trace")?)),
                "--cache" => o.cache_dir = Some(PathBuf::from(value_of(&mut it, "--cache")?)),
                "--seeds" => {
                    o.seeds = value_of(&mut it, "--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?;
                }
                "--threads" => {
                    o.threads = value_of(&mut it, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                other if !other.starts_with("--") => {
                    positional.get_or_insert_with(|| other.to_string());
                }
                other => return Err(format!("unknown flag {other:?}; see --help")),
            }
        }
        Ok((o, positional))
    }

    /// The campaign-engine options these flags select.
    pub fn campaign(&self) -> CampaignOptions {
        CampaignOptions {
            threads: self.threads,
            cache_dir: self.cache_dir.clone(),
            job_limit: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn defaults_follow_the_paper() {
        let (o, cmd) = CommonOpts::parse(&v(&["fig9"])).unwrap();
        assert_eq!((o.seeds, o.secs, o.quick, o.json), (5, 10, false, false));
        assert_eq!(cmd.as_deref(), Some("fig9"));
    }

    #[test]
    fn quick_shrinks_seeds_and_secs_wherever_it_appears() {
        let (o, _) = CommonOpts::parse(&v(&["loss-sweep", "--quick"])).unwrap();
        assert_eq!((o.seeds, o.secs, o.quick), (2, 3, true));
    }

    #[test]
    fn explicit_seeds_override_quick() {
        let (o, _) = CommonOpts::parse(&v(&["--quick", "--seeds", "7"])).unwrap();
        assert_eq!(o.seeds, 7);
        assert!(o.quick);
    }

    #[test]
    fn value_flags_parse_and_missing_values_error() {
        let (o, _) = CommonOpts::parse(&v(&[
            "--trace",
            "/tmp/t",
            "--cache",
            "/tmp/c",
            "--threads",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("/tmp/t")));
        assert_eq!(o.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/c")));
        assert_eq!(o.threads, 3);
        assert!(o.json);
        assert!(CommonOpts::parse(&v(&["--trace"])).is_err());
        assert!(CommonOpts::parse(&v(&["--seeds", "x"])).is_err());
        assert!(CommonOpts::parse(&v(&["--frobnicate"])).is_err());
    }

    #[test]
    fn first_positional_is_the_subcommand() {
        let (_, cmd) = CommonOpts::parse(&v(&["--json", "fault-matrix"])).unwrap();
        assert_eq!(cmd.as_deref(), Some("fault-matrix"));
        let (_, none) = CommonOpts::parse(&v(&["--json"])).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn campaign_options_mirror_the_flags() {
        let (o, _) = CommonOpts::parse(&v(&["--threads", "2", "--cache", "/tmp/cc"])).unwrap();
        let c = o.campaign();
        assert_eq!(c.threads, 2);
        assert_eq!(
            c.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/cc"))
        );
        assert_eq!(c.job_limit, None);
    }
}
