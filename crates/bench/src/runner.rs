//! Multi-seed scenario execution.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use hack_campaign::{run_campaign_with, Job, SweepSpec};
use hack_core::{run, run_traced, RunResult, ScenarioConfig};
use hack_sim::RunStats;
use hack_trace::{write_jsonl, TraceHandle};

/// Where per-run trace output goes (set once by `--trace <path>`).
static TRACE_BASE: OnceLock<PathBuf> = OnceLock::new();
/// Distinguishes successive `run_seeds` calls in trace filenames.
static TRACE_RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Ring capacity for `--trace` captures: large enough that short CI runs
/// keep every event; long runs keep the tail (`overwritten` says so).
const TRACE_RING_CAPACITY: usize = 1 << 20;

/// Enable structured-event tracing for all subsequent [`run_seeds`]
/// calls. Each simulated run writes `<base>.runR.seedS.jsonl` (the
/// captured events) and `<base>.runR.seedS.digest` (the binary
/// [`hack_trace::Digest`], byte-identical across same-seed runs).
pub fn set_trace_base(base: PathBuf) {
    let _ = TRACE_BASE.set(base);
}

/// Results of running one scenario under several seeds.
#[derive(Debug)]
pub struct MultiRun {
    /// One result per seed, in seed order.
    pub runs: Vec<RunResult>,
}

impl MultiRun {
    /// Aggregate steady-state goodput across runs (mean ± std).
    pub fn aggregate_goodput(&self) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.aggregate_goodput_mbps);
        }
        s
    }

    /// Per-flow steady-state goodput for flow `i` across runs.
    pub fn flow_goodput(&self, i: usize) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.flow_goodput_mbps[i]);
        }
        s
    }

    /// Per-flow full-run goodput (including slow start) for flow `i`.
    pub fn flow_goodput_full(&self, i: usize) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.flow_goodput_full_mbps[i]);
        }
        s
    }

    /// Mean fraction of *data* MPDUs delivered without retries at the
    /// AP (Table 1's "no retries" row), across runs.
    pub fn ap_first_try(&self) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            if let Some(f) = r.ap_first_try_fraction() {
                s.push(f);
            }
        }
        s
    }
}

/// Run `cfg` under `n_seeds` consecutive seeds (base = `cfg.seed`),
/// in parallel, preserving seed order.
///
/// This is a thin campaign of one cell: the sweep engine's
/// work-stealing pool (bounded by
/// [`std::thread::available_parallelism`]) executes the seed bank, and
/// its index-ordered reduction returns results in seed order regardless
/// of which worker finishes first. Tracing rides in as a custom runner.
pub fn run_seeds(cfg: &ScenarioConfig, n_seeds: u64) -> MultiRun {
    let trace_base = TRACE_BASE.get().cloned();
    let run_no = trace_base
        .is_some()
        .then(|| TRACE_RUN_COUNTER.fetch_add(1, Ordering::Relaxed));
    let base_seed = cfg.seed;
    let spec = SweepSpec::new("run_seeds", cfg.clone()).seed_bank(base_seed, n_seeds);
    let runner = move |job: &Job| match (&trace_base, run_no) {
        (Some(base), Some(r)) => run_one_traced(job.cfg.clone(), base, r, job.seed - base_seed),
        _ => run(job.cfg.clone()),
    };
    let mut report = run_campaign_with(&spec, &hack_campaign::CampaignOptions::default(), &runner);
    let runs = match report.cells.pop() {
        Some(cell) => cell.runs,
        None => Vec::new(),
    };
    MultiRun { runs }
}

/// Run one traced scenario and write its event log + digest files.
fn run_one_traced(
    cfg: ScenarioConfig,
    base: &std::path::Path,
    run_no: u64,
    seed_no: u64,
) -> RunResult {
    let (handle, ring) = TraceHandle::ring(TRACE_RING_CAPACITY);
    let result = run_traced(cfg, handle);
    let stem = format!("{}.run{run_no}.seed{seed_no}", base.display());
    let records = ring.drain();
    let digest = ring.digest();
    if let Err(e) = std::fs::File::create(format!("{stem}.jsonl"))
        .and_then(|mut f| write_jsonl(&mut f, &records))
    {
        eprintln!("trace: cannot write {stem}.jsonl: {e}");
    }
    if let Err(e) = std::fs::write(format!("{stem}.digest"), digest.to_bytes()) {
        eprintln!("trace: cannot write {stem}.digest: {e}");
    }
    if ring.overwritten() > 0 {
        eprintln!(
            "trace: {stem}: ring wrapped, {} oldest events not in the .jsonl \
             (digest still covers all {})",
            ring.overwritten(),
            ring.emitted()
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_core::{HackMode, ScenarioBuilder};
    use hack_sim::SimDuration;

    #[test]
    fn seeds_vary_but_reproduce() {
        let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
        cfg.duration = SimDuration::from_secs(2);
        let a = run_seeds(&cfg, 2);
        let b = run_seeds(&cfg, 2);
        assert_eq!(
            a.runs[0].aggregate_goodput_mbps,
            b.runs[0].aggregate_goodput_mbps
        );
        assert_ne!(
            a.runs[0].aggregate_goodput_mbps, a.runs[1].aggregate_goodput_mbps,
            "different seeds should differ at least slightly"
        );
        let stats = a.aggregate_goodput();
        assert_eq!(stats.samples().len(), 2);
        assert!(stats.mean() > 0.0);
    }

    #[test]
    fn results_stay_in_seed_order() {
        let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
        cfg.duration = SimDuration::from_millis(1500);
        let multi = run_seeds(&cfg, 3);
        assert_eq!(multi.runs.len(), 3);
        for (i, r) in multi.runs.iter().enumerate() {
            let mut c = cfg.clone();
            c.seed = cfg.seed + i as u64;
            assert_eq!(
                r.aggregate_goodput_mbps,
                run(c).aggregate_goodput_mbps,
                "slot {i} must hold seed {}",
                cfg.seed + i as u64
            );
        }
    }
}
