//! Multi-seed scenario execution.

use hack_core::{run, RunResult, ScenarioConfig};
use hack_sim::RunStats;

/// Results of running one scenario under several seeds.
#[derive(Debug)]
pub struct MultiRun {
    /// One result per seed, in seed order.
    pub runs: Vec<RunResult>,
}

impl MultiRun {
    /// Aggregate steady-state goodput across runs (mean ± std).
    pub fn aggregate_goodput(&self) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.aggregate_goodput_mbps);
        }
        s
    }

    /// Per-flow steady-state goodput for flow `i` across runs.
    pub fn flow_goodput(&self, i: usize) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.flow_goodput_mbps[i]);
        }
        s
    }

    /// Per-flow full-run goodput (including slow start) for flow `i`.
    pub fn flow_goodput_full(&self, i: usize) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            s.push(r.flow_goodput_full_mbps[i]);
        }
        s
    }

    /// Mean fraction of *data* MPDUs delivered without retries at the
    /// AP (Table 1's "no retries" row), across runs.
    pub fn ap_first_try(&self) -> RunStats {
        let mut s = RunStats::new();
        for r in &self.runs {
            if let Some(f) = r.ap_first_try_fraction() {
                s.push(f);
            }
        }
        s
    }
}

/// Run `cfg` under `n_seeds` consecutive seeds (base = `cfg.seed`),
/// in parallel threads, preserving seed order.
pub fn run_seeds(cfg: &ScenarioConfig, n_seeds: u64) -> MultiRun {
    let handles: Vec<_> = (0..n_seeds)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg.seed + i;
            std::thread::spawn(move || run(c))
        })
        .collect();
    MultiRun {
        runs: handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread panicked"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_core::HackMode;
    use hack_sim::SimDuration;

    #[test]
    fn seeds_vary_but_reproduce() {
        let mut cfg = ScenarioConfig::dot11n_download(150, 1, HackMode::Disabled);
        cfg.duration = SimDuration::from_secs(2);
        let a = run_seeds(&cfg, 2);
        let b = run_seeds(&cfg, 2);
        assert_eq!(
            a.runs[0].aggregate_goodput_mbps,
            b.runs[0].aggregate_goodput_mbps
        );
        assert_ne!(
            a.runs[0].aggregate_goodput_mbps,
            a.runs[1].aggregate_goodput_mbps,
            "different seeds should differ at least slightly"
        );
        let stats = a.aggregate_goodput();
        assert_eq!(stats.samples().len(), 2);
        assert!(stats.mean() > 0.0);
    }
}
