//! Hot-path performance harness (`bench`).
//!
//! ```text
//! bench [--quick] [--json <path>] [--check <path>] [--tolerance <pct>]
//! ```
//!
//! Measures the simulation hot paths end to end and per stage:
//!
//! * **end-to-end events/sec** — a full 802.11n TCP/HACK download run,
//!   reporting scheduler events dispatched per wall-clock second (the
//!   number every perf PR must move),
//! * **per-stage timings** — event-queue push/pop, ROHC
//!   compress+confirm, zero-copy blob decode, driver blob rebuild,
//!   steady-state CID lookup, MD5 CID derivation, and header
//!   serialization. Stateful stages run against *persistent* endpoint
//!   state (contexts, scratch buffers, held-ACK queues), measuring the
//!   steady-state cost a long-lived driver pays — not per-op
//!   construction,
//! * **allocation counters** — a counting global allocator reports
//!   heap allocations per event / per operation (the
//!   allocations-proxy; `realloc` counts too).
//!
//! With `--json <path>` the results are written as a JSON document. If
//! the file already exists its `"baseline"` object is preserved (or,
//! failing that, its previous `"current"` object becomes the baseline),
//! so the file accumulates a before/after trajectory across PRs:
//! `speedup_events_per_sec` compares the fresh run against the recorded
//! baseline.
//!
//! With `--check <path>` the run is compared against the committed
//! results at `<path>` and the process exits nonzero if any stage's
//! `ns_per_op` regresses past the tolerance or its `allocs_per_op`
//! grows — the CI regression gate.
//!
//! `--quick` shortens both the stages and the end-to-end run for CI
//! smoke coverage (the threshold job finishes well under a minute).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hack_core::{
    run, run_dense, ArrivalDist, BssSpec, CompressSide, DenseOptions, DriverAction, HackMode,
    RoamEvent, ScenarioBuilder, ScenarioConfig, ShortFlowConfig, SizeDist, SupervisorConfig,
    TrafficClass, TrafficModel,
};
use hack_mac::RxDataInfo;
use hack_phy::StationId;
use hack_rohc::{build_blob, BlobItem, CidMap, Compressor, Decompressor};
use hack_sim::{EventQueue, SimDuration, SimTime};
use hack_tcp::{flags, FiveTuple, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};

const USAGE: &str = "\
bench — hot-path performance harness

USAGE:
    bench [--quick] [--json <path>] [--check <path>] [--tolerance <pct>]

OPTIONS:
    --quick            Smoke mode for CI: 10x fewer per-stage iterations and
                       a 300 ms (instead of 3 s) end-to-end simulation, so
                       the whole run finishes well under a minute. Per-op
                       numbers are noisier but exercise the same code paths.
    --json <path>      Write results as JSON. An existing file's baseline is
                       preserved (or its previous current becomes the
                       baseline), accumulating a before/after trajectory.
    --check <path>     Regression gate: compare this run's stages against
                       the committed results at <path>; exit 1 if any
                       stage's ns_per_op regresses by more than the
                       tolerance (plus a small absolute slack that keeps
                       sub-microsecond stages from flapping) or its
                       allocs_per_op grows by more than 0.5.
    --tolerance <pct>  Relative regression tolerance for --check, in
                       percent (default 10).
    -h, --help         Print this help.
";

// ---------------------------------------------------------------------
// Counting allocator: the allocations-proxy counter.
// ---------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Stage {
    ns_per_op: f64,
    allocs_per_op: f64,
}

/// Iteration count for a stage: full, or a tenth of it in quick mode.
fn scaled(iters: u64, quick: bool) -> u64 {
    if quick {
        (iters / 10).max(1)
    } else {
        iters
    }
}

/// Time `op` over `iters` iterations (after one warmup batch),
/// returning mean ns/op and allocations/op.
fn time_stage<F: FnMut()>(iters: u64, mut op: F) -> Stage {
    for _ in 0..iters / 10 + 1 {
        op();
    }
    let a0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    Stage {
        ns_per_op: wall.as_nanos() as f64 / iters as f64,
        allocs_per_op: allocs as f64 / iters as f64,
    }
}

fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 2),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq: TcpSeq(7777),
            ack: TcpSeq(ackno),
            flags: flags::ACK,
            window: 1024,
            options: {
                // Built by push, not `vec![..].into()`: keeps packet
                // construction off the heap so stage allocation counts
                // reflect the code under test, not the harness.
                let mut opts = hack_tcp::TcpOptions::new();
                opts.push(TcpOption::Timestamps {
                    tsval: ts,
                    tsecr: ts.wrapping_sub(3),
                });
                opts
            },
            payload_len: 0,
        }),
    }
}

// ---------------------------------------------------------------------
// Stages.
// ---------------------------------------------------------------------

fn stage_queue_push_pop(quick: bool) -> Stage {
    // Steady-state scheduler pattern: each pop reschedules, queue depth
    // stays around 64 pending events (the whole-network regime).
    let mut q = EventQueue::new();
    let mut now = 0u64;
    for i in 0..64u64 {
        q.push(SimTime::from_nanos(i * 531), i);
    }
    let mut step = 0u64;
    time_stage(scaled(200_000, quick), || {
        let (t, v) = q.pop().expect("queue never drains");
        now = t.as_nanos();
        step = step.wrapping_add(1);
        q.push(
            SimTime::from_nanos(now + 200 + (v.wrapping_mul(2654435761) % 5000)),
            step,
        );
    })
}

fn stage_compress_confirm(quick: bool) -> Stage {
    let mut comp = Compressor::new();
    comp.observe_native(&ack(1000, 1, 10));
    let mut i = 0u32;
    time_stage(scaled(100_000, quick), || {
        i = i.wrapping_add(1);
        let p = ack(
            1000u32.wrapping_add(i.wrapping_mul(2920)),
            1u16.wrapping_add(i as u16),
            10u32.wrapping_add(i),
        );
        let seg = comp.compress(&p).expect("compressible");
        std::hint::black_box(&seg);
        comp.confirm(&p);
    })
}

fn stage_decompress_blob(quick: bool) -> Stage {
    // One blob of 21 delayed ACKs (a 42-MPDU A-MPDU batch), the paper's
    // steady-state shape. Reported per *blob*, streamed through the
    // zero-copy cursor of a *persistent* decompressor — re-observing the
    // seed ACK resets the MSN/field refs so every iteration decodes the
    // same bytes fresh, the way a long-lived AP context would.
    let mut comp = Compressor::new();
    let seed = ack(1000, 1, 10);
    comp.observe_native(&seed);
    let segs: Vec<_> = (1..=21u32)
        .map(|i| {
            comp.compress(&ack(1000 + i * 2920, 1 + i as u16, 10 + i))
                .unwrap()
        })
        .collect();
    let seg_slices: Vec<Vec<u8>> = segs.iter().map(|s| s[..].to_vec()).collect();
    let blob = build_blob(&seg_slices);
    let mut d = Decompressor::new();
    time_stage(scaled(20_000, quick), || {
        d.observe_native(&seed);
        let mut packets = 0u32;
        for item in d.decode(&blob) {
            match item {
                BlobItem::Packet(p) => {
                    std::hint::black_box(&p);
                    packets += 1;
                }
                other => panic!("unexpected blob item {other:?}"),
            }
        }
        assert_eq!(packets, 21);
    })
}

fn stage_blob_rebuild(quick: bool) -> Stage {
    // One full hold-and-confirm cycle on a *persistent* driver — the
    // simulator's actual steady state: 8 ACKs held (each append patches
    // the incremental blob cache and re-installs), the blob rides an LL
    // ACK, and the next data frame confirms all 8 (prefix drain +
    // ClearBlob). Install actions hand their buffers straight back via
    // `recycle_blob`, exactly like the MAC displacing the previous blob.
    let info = RxDataInfo {
        from: StationId(0),
        mpdus_ok: 2,
        more_data: true,
        sync: false,
        advances_seq: true,
        is_aggregate: true,
    };
    let mut d = CompressSide::new(HackMode::MoreData);
    d.on_ack_out(ack(1000, 1, 10), SimTime::from_millis(1));
    d.on_data_received(&info, SimTime::from_millis(2));
    let mut i = 0u32;
    let t = SimTime::from_millis(2);
    time_stage(scaled(50_000, quick), || {
        i = i.wrapping_add(1);
        for k in 0..8u32 {
            let n = i.wrapping_mul(8).wrapping_add(k);
            let acts = d.on_ack_out(
                ack(
                    1000u32.wrapping_add(n.wrapping_mul(2920)),
                    n as u16,
                    10u32.wrapping_add(n),
                ),
                t,
            );
            let mut installed = false;
            for a in acts {
                if let DriverAction::InstallBlob { bytes, .. } = a {
                    installed = true;
                    d.recycle_blob(bytes);
                }
            }
            assert!(installed, "every held ACK re-installs the blob");
        }
        // The blob rides, then the next data frame confirms everything.
        for a in d.on_response_sent(true, t) {
            if let DriverAction::InstallBlob { bytes, .. } = a {
                d.recycle_blob(bytes);
            }
        }
        for a in d.on_data_received(&info, t) {
            if let DriverAction::InstallBlob { bytes, .. } = a {
                d.recycle_blob(bytes);
            }
        }
        assert_eq!(d.held_count(), 0, "confirm drains every ridden ACK");
    })
}

fn stage_cid_lookup(quick: bool) -> Stage {
    // Steady-state CID resolution with 64 concurrent flows: the dense-AP
    // regime where the old linear `Vec<(FiveTuple, u8)>` scan went
    // quadratic. Reported per lookup; flat cost here is the O(1) proof.
    let tuples: Vec<FiveTuple> = (0..64u32)
        .map(|i| FiveTuple {
            src_ip: Ipv4Addr::new(192, 168, 1, 10 + i as u8),
            dst_ip: Ipv4Addr::new(10, 0, 0, 1),
            src_port: 40_000 + i as u16,
            dst_port: 5001,
            protocol: 6,
        })
        .collect();
    let mut m = CidMap::new();
    for (k, t) in tuples.iter().enumerate() {
        m.insert(*t, k as u8);
    }
    let mut i = 0usize;
    time_stage(scaled(200_000, quick), || {
        i = i.wrapping_add(1);
        let hit = m.get(std::hint::black_box(&tuples[i & 63]));
        assert!(std::hint::black_box(hit).is_some());
    })
}

fn stage_md5_cid(quick: bool) -> Stage {
    let t = ack(1, 1, 1).five_tuple();
    let bytes = t.bytes();
    time_stage(scaled(200_000, quick), || {
        std::hint::black_box(hack_rohc::cid_for_tuple(&bytes));
    })
}

fn stage_header_serialize(quick: bool) -> Stage {
    let p = ack(123_456, 7, 99);
    time_stage(scaled(200_000, quick), || {
        std::hint::black_box(p.header_bytes());
    })
}

fn stage_dense_e2e(quick: bool) -> Stage {
    // Multi-BSS end to end: a 9-BSS enterprise floor (18 clients, 27
    // stations) run through the shard engine on one thread, reported as
    // ns per dispatched event. This is the domain-scoping gate — if
    // carrier sense or `end_tx` reception ever regress from
    // per-interference-domain back to O(all stations on the floor),
    // this stage moves while the single-cell end-to-end stays put.
    let ms = if quick { 120 } else { 400 };
    let cfg = ScenarioConfig::builder()
        .hack(HackMode::MoreData)
        .bss(BssSpec::enterprise_floor(9, 2))
        .duration(SimDuration::from_millis(ms))
        .stagger(SimDuration::from_millis(2))
        .warmup(SimDuration::from_millis(ms / 5))
        .build();
    let opts = DenseOptions {
        threads: 1,
        epoch: SimDuration::from_millis(5),
        digests: false,
    };
    let a0 = allocs_now();
    let t0 = Instant::now();
    let report = run_dense(&cfg, &opts);
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let events: u64 = report
        .shards
        .iter()
        .map(|s| s.result.events_dispatched)
        .sum();
    assert!(
        report.aggregate_goodput_mbps > 0.0,
        "dense bench world moved no bytes"
    );
    Stage {
        ns_per_op: wall.as_nanos() as f64 / events.max(1) as f64,
        allocs_per_op: allocs as f64 / events.max(1) as f64,
    }
}

fn stage_roam_handoff_e2e(quick: bool) -> Stage {
    // Mid-flow AP handoff end to end: a supervised two-cell world whose
    // client roams to a HACK-incapable AP and back — held-ACK flush,
    // ROHC context teardown, the association state machine, blackout
    // parking, and the re-association handshake all on the measured
    // path. Reported as ns per dispatched event; if the roam machinery
    // ever leaks cost into the per-event budget (e.g. a per-event scan
    // of the roam runtime), this stage moves while the plain end-to-end
    // stays put. The quick run stays long enough that the world's fixed
    // setup allocations don't dominate the per-event count (the --check
    // gate compares quick CI runs against the committed full-mode run).
    let ms = if quick { 400 } else { 600 };
    let mut cfg = ScenarioConfig::builder()
        .hack(HackMode::MoreData)
        .bss(vec![
            BssSpec {
                x: 0.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 25.0,
                y: 0.0,
                channel: 6,
                n_clients: 0,
            },
        ])
        .duration(SimDuration::from_millis(ms))
        .warmup(SimDuration::from_millis(ms / 5))
        .build();
    cfg.roam.ap_hack_capable = vec![true, false];
    cfg.roam.schedule = vec![
        RoamEvent {
            flow: 0,
            at: SimDuration::from_millis(ms / 3),
            target_bss: 1,
        },
        RoamEvent {
            flow: 0,
            at: SimDuration::from_millis(2 * ms / 3),
            target_bss: 0,
        },
    ];
    cfg.supervisor = Some(SupervisorConfig::default());
    let a0 = allocs_now();
    let t0 = Instant::now();
    let r = run(cfg);
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    assert_eq!(r.roams, 2, "roam bench world must complete both handoffs");
    assert!(
        r.aggregate_goodput_mbps > 0.0,
        "roam bench world moved no bytes"
    );
    Stage {
        ns_per_op: wall.as_nanos() as f64 / r.events_dispatched.max(1) as f64,
        allocs_per_op: allocs as f64 / r.events_dispatched.max(1) as f64,
    }
}

fn stage_short_flow_churn(quick: bool) -> Stage {
    // Short-flow connection churn end to end: one client running
    // web-like transfers on *fresh* five-tuples (reuse off), so every
    // transfer pays the handshake, the tuple re-key, ROHC context
    // teardown on both stations, and a fresh slow start. Small fixed
    // sizes and a tiny think gap maximize lifecycle events per
    // simulated second. Reported as ns per dispatched event; if the
    // restart path ever leaks cost into steady state (e.g. a per-event
    // scan of flow runtimes or an O(contexts) teardown), this stage
    // moves while the plain bulk end-to-end stays put.
    let ms = if quick { 300 } else { 1_000 };
    let cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData)
        .duration(SimDuration::from_millis(ms))
        .warmup(SimDuration::from_millis(ms / 5))
        .traffic(TrafficModel::ShortFlows(ShortFlowConfig {
            sizes: SizeDist::Fixed(64 * 1024),
            think: ArrivalDist::Fixed(SimDuration::from_millis(1)),
            reuse: false,
        }))
        .build();
    let a0 = allocs_now();
    let t0 = Instant::now();
    let r = run(cfg);
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    let transfers = r
        .class(TrafficClass::Short)
        .map_or(0, |c| c.transfers);
    assert!(
        transfers >= 10,
        "short-flow churn bench world completed only {transfers} transfers"
    );
    Stage {
        ns_per_op: wall.as_nanos() as f64 / r.events_dispatched.max(1) as f64,
        allocs_per_op: allocs as f64 / r.events_dispatched.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// End-to-end events/sec.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct EndToEnd {
    events: u64,
    wall_ns: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    allocs: u64,
    allocs_per_event: f64,
    goodput_mbps: f64,
}

fn end_to_end(quick: bool) -> EndToEnd {
    let (sim_ms, reps) = if quick { (300, 2) } else { (3000, 3) };
    let mut best: Option<EndToEnd> = None;
    for rep in 0..reps {
        let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
        cfg.duration = SimDuration::from_millis(sim_ms);
        cfg.warmup = SimDuration::from_millis(sim_ms / 5);
        cfg.seed = 1 + rep; // identical work profile, fresh RNG stream
        let a0 = allocs_now();
        let t0 = Instant::now();
        let r = run(cfg);
        let wall = t0.elapsed();
        let allocs = allocs_now() - a0;
        let e = EndToEnd {
            events: r.events_dispatched,
            wall_ns: wall.as_nanos() as u64,
            events_per_sec: r.events_dispatched as f64 / wall.as_secs_f64(),
            ns_per_event: wall.as_nanos() as f64 / r.events_dispatched as f64,
            allocs,
            allocs_per_event: allocs as f64 / r.events_dispatched as f64,
            goodput_mbps: r.aggregate_goodput_mbps,
        };
        if best.is_none_or(|b| e.events_per_sec > b.events_per_sec) {
            best = Some(e);
        }
    }
    best.expect("at least one rep")
}

// ---------------------------------------------------------------------
// JSON output (hand-rolled: no serde offline).
// ---------------------------------------------------------------------

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn current_json(e2e: &EndToEnd, stages: &[(&str, Stage)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "    \"events_per_sec\": {},",
        fmt_f64(e2e.events_per_sec)
    );
    let _ = writeln!(s, "    \"ns_per_event\": {},", fmt_f64(e2e.ns_per_event));
    let _ = writeln!(s, "    \"events_dispatched\": {},", e2e.events);
    let _ = writeln!(s, "    \"wall_ns\": {},", e2e.wall_ns);
    let _ = writeln!(s, "    \"allocs\": {},", e2e.allocs);
    let _ = writeln!(
        s,
        "    \"allocs_per_event\": {},",
        fmt_f64(e2e.allocs_per_event)
    );
    let _ = writeln!(s, "    \"goodput_mbps\": {},", fmt_f64(e2e.goodput_mbps));
    s.push_str("    \"stages\": {\n");
    for (i, (name, st)) in stages.iter().enumerate() {
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      \"{name}\": {{ \"ns_per_op\": {}, \"allocs_per_op\": {} }}{comma}",
            fmt_f64(st.ns_per_op),
            fmt_f64(st.allocs_per_op)
        );
    }
    s.push_str("    }\n  }");
    s
}

/// Extract the brace-matched object value of top-level `"key"` from a
/// JSON document previously written by this tool.
fn extract_object(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": {{");
    let start = text.find(&pat)? + pat.len() - 1;
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// ---------------------------------------------------------------------
// The regression gate (--check).
// ---------------------------------------------------------------------

/// Compare the fresh per-stage results against the committed JSON at
/// `path`. Returns whether every stage is within bounds.
///
/// A stage regresses when its `ns_per_op` exceeds the committed value by
/// more than `tol_pct` percent *plus* a small absolute slack (timer
/// granularity and scheduler jitter dominate sub-100ns stages — a purely
/// relative bound would flap), or when its `allocs_per_op` grows by more
/// than 0.5 (allocation counts are near-deterministic; half an
/// allocation of headroom absorbs warmup-dependent `Vec` growth while
/// still catching any real new allocation per op).
fn run_check(path: &std::path::Path, stages: &[(&str, Stage)], tol_pct: f64) -> bool {
    const ABS_SLACK_NS: f64 = 150.0;
    const ALLOC_SLACK: f64 = 0.5;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: cannot read --check file {}: {e}", path.display());
            return false;
        }
    };
    let Some(committed) =
        extract_object(&text, "current").and_then(|c| extract_object(&c, "stages"))
    else {
        eprintln!("bench: no \"current.stages\" object in {}", path.display());
        return false;
    };
    let mut ok = true;
    for (name, st) in stages {
        let Some(obj) = extract_object(&committed, name) else {
            println!("check: {name}: not in committed results (new stage), skipped");
            continue;
        };
        if let Some(base) = extract_number(&obj, "ns_per_op") {
            let limit = base * (1.0 + tol_pct / 100.0) + ABS_SLACK_NS;
            if st.ns_per_op > limit {
                eprintln!(
                    "check FAIL: {name} ns_per_op {:.1} exceeds limit {:.1} \
                     (committed {:.1}, tolerance {tol_pct}% + {ABS_SLACK_NS}ns)",
                    st.ns_per_op, limit, base
                );
                ok = false;
            }
        }
        if let Some(base) = extract_number(&obj, "allocs_per_op") {
            if st.allocs_per_op > base + ALLOC_SLACK {
                eprintln!(
                    "check FAIL: {name} allocs_per_op {:.2} grew past committed {:.2}",
                    st.allocs_per_op, base
                );
                ok = false;
            }
        }
    }
    if ok {
        println!(
            "check: all stages within {tol_pct}% (+{ABS_SLACK_NS}ns) of {}",
            path.display()
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut check_path: Option<std::path::PathBuf> = None;
    let mut tol_pct = 10.0f64;
    let mut it = args.iter();
    let missing = |flag: &str| -> ! {
        eprintln!("{flag} requires a value; see --help");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(std::path::PathBuf::from(p)),
                None => missing("--json"),
            },
            "--check" => match it.next() {
                Some(p) => check_path = Some(std::path::PathBuf::from(p)),
                None => missing("--check"),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol_pct = v,
                _ => missing("--tolerance"),
            },
            "--quick" => quick = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }

    println!("== hot-path stages (ns/op, allocs/op) ==");
    let stages: Vec<(&str, Stage)> = vec![
        ("queue_push_pop", stage_queue_push_pop(quick)),
        ("rohc_compress_confirm", stage_compress_confirm(quick)),
        ("rohc_decompress_blob21", stage_decompress_blob(quick)),
        ("driver_blob_rebuild_x8", stage_blob_rebuild(quick)),
        ("cid_lookup_x64", stage_cid_lookup(quick)),
        ("md5_cid", stage_md5_cid(quick)),
        ("header_serialize", stage_header_serialize(quick)),
        ("dense_9bss_e2e", stage_dense_e2e(quick)),
        ("roam_handoff_e2e", stage_roam_handoff_e2e(quick)),
        ("short_flow_churn_e2e", stage_short_flow_churn(quick)),
    ];
    for (name, st) in &stages {
        println!(
            "{name:<26} {:>12.1} ns/op {:>8.2} allocs/op",
            st.ns_per_op, st.allocs_per_op
        );
    }

    println!("\n== end-to-end: 802.11n 150 Mbps, 1 client, TCP/HACK ==");
    let e2e = end_to_end(quick);
    println!(
        "{:.0} events/sec  ({:.0} ns/event, {} events, {:.2} allocs/event, {:.1} Mbps goodput)",
        e2e.events_per_sec, e2e.ns_per_event, e2e.events, e2e.allocs_per_event, e2e.goodput_mbps
    );

    if let Some(path) = &json_path {
        // Preserve a previously recorded baseline so the file carries a
        // before/after trajectory; the first ever run seeds the baseline
        // from its own "current" on the *next* run.
        let previous = std::fs::read_to_string(path).ok();
        let baseline = previous
            .as_deref()
            .and_then(|t| extract_object(t, "baseline").or_else(|| extract_object(t, "current")));
        let current = current_json(&e2e, &stages);
        let speedup = baseline
            .as_deref()
            .and_then(|b| extract_number(b, "events_per_sec"))
            .map(|b| e2e.events_per_sec / b);

        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"benchmark\": \"hack hot path: calendar queue + ACK pipeline\",\n");
        let _ = writeln!(out, "  \"quick\": {quick},");
        match &baseline {
            Some(b) => {
                let _ = writeln!(out, "  \"baseline\": {b},");
            }
            None => out.push_str("  \"baseline\": null,\n"),
        }
        let _ = writeln!(out, "  \"current\": {current},");
        match speedup {
            Some(sp) => {
                let _ = writeln!(out, "  \"speedup_events_per_sec\": {}", fmt_f64(sp));
            }
            None => out.push_str("  \"speedup_events_per_sec\": null\n"),
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\nwrote {}", path.display());
        if let Some(sp) = speedup {
            println!("speedup vs recorded baseline: {sp:.2}x");
        }
    }

    if let Some(path) = &check_path {
        println!();
        if !run_check(path, &stages, tol_pct) {
            std::process::exit(1);
        }
    }
}
