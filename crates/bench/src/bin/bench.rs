//! Hot-path performance harness (`bench`).
//!
//! ```text
//! bench [--json <path>] [--quick]
//! ```
//!
//! Measures the simulation hot paths end to end and per stage:
//!
//! * **end-to-end events/sec** — a full 802.11n TCP/HACK download run,
//!   reporting scheduler events dispatched per wall-clock second (the
//!   number every perf PR must move),
//! * **per-stage timings** — event-queue push/pop, ROHC
//!   compress+confirm, blob decompression, driver blob rebuild, MD5 CID
//!   derivation, and header serialization,
//! * **allocation counters** — a counting global allocator reports
//!   heap allocations per event / per operation (the
//!   allocations-proxy; `realloc` counts too).
//!
//! With `--json <path>` the results are written as a JSON document. If
//! the file already exists its `"baseline"` object is preserved (or,
//! failing that, its previous `"current"` object becomes the baseline),
//! so the file accumulates a before/after trajectory across PRs:
//! `speedup_events_per_sec` compares the fresh run against the recorded
//! baseline.
//!
//! `--quick` shortens the end-to-end run for CI smoke coverage.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hack_core::{run, CompressSide, DriverAction, HackMode, ScenarioConfig};
use hack_mac::RxDataInfo;
use hack_phy::StationId;
use hack_rohc::{build_blob, Compressor, Decompressor};
use hack_sim::{EventQueue, SimDuration, SimTime};
use hack_tcp::{flags, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};

// ---------------------------------------------------------------------
// Counting allocator: the allocations-proxy counter.
// ---------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Stage {
    ns_per_op: f64,
    allocs_per_op: f64,
}

/// Time `op` over `iters` iterations (after one warmup batch),
/// returning mean ns/op and allocations/op.
fn time_stage<F: FnMut()>(iters: u64, mut op: F) -> Stage {
    for _ in 0..iters / 10 + 1 {
        op();
    }
    let a0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    let wall = t0.elapsed();
    let allocs = allocs_now() - a0;
    Stage {
        ns_per_op: wall.as_nanos() as f64 / iters as f64,
        allocs_per_op: allocs as f64 / iters as f64,
    }
}

fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 2),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq: TcpSeq(7777),
            ack: TcpSeq(ackno),
            flags: flags::ACK,
            window: 1024,
            options: vec![TcpOption::Timestamps {
                tsval: ts,
                tsecr: ts.wrapping_sub(3),
            }]
            .into(),
            payload_len: 0,
        }),
    }
}

// ---------------------------------------------------------------------
// Stages.
// ---------------------------------------------------------------------

fn stage_queue_push_pop() -> Stage {
    // Steady-state scheduler pattern: each pop reschedules, queue depth
    // stays around 64 pending events (the whole-network regime).
    let mut q = EventQueue::new();
    let mut now = 0u64;
    for i in 0..64u64 {
        q.push(SimTime::from_nanos(i * 531), i);
    }
    let mut step = 0u64;
    time_stage(200_000, || {
        let (t, v) = q.pop().expect("queue never drains");
        now = t.as_nanos();
        step = step.wrapping_add(1);
        q.push(
            SimTime::from_nanos(now + 200 + (v.wrapping_mul(2654435761) % 5000)),
            step,
        );
    })
}

fn stage_compress_confirm() -> Stage {
    let mut comp = Compressor::new();
    comp.observe_native(&ack(1000, 1, 10));
    let mut i = 0u32;
    time_stage(100_000, || {
        i = i.wrapping_add(1);
        let p = ack(
            1000u32.wrapping_add(i.wrapping_mul(2920)),
            1u16.wrapping_add(i as u16),
            10u32.wrapping_add(i),
        );
        let seg = comp.compress(&p).expect("compressible");
        std::hint::black_box(&seg);
        comp.confirm(&p);
    })
}

fn stage_decompress_blob() -> Stage {
    // One blob of 21 delayed ACKs (a 42-MPDU A-MPDU batch), the paper's
    // steady-state shape. Reported per *blob*.
    let mut comp = Compressor::new();
    let seed = ack(1000, 1, 10);
    comp.observe_native(&seed);
    let segs: Vec<_> = (1..=21u32)
        .map(|i| {
            comp.compress(&ack(1000 + i * 2920, 1 + i as u16, 10 + i))
                .unwrap()
        })
        .collect();
    let seg_slices: Vec<Vec<u8>> = segs.iter().map(|s| s[..].to_vec()).collect();
    let blob = build_blob(&seg_slices);
    time_stage(20_000, || {
        let mut d = Decompressor::new();
        d.observe_native(&seed);
        let res = d.decompress_blob(&blob);
        assert_eq!(res.packets.len(), 21);
        std::hint::black_box(&res);
    })
}

fn stage_blob_rebuild() -> Stage {
    // The driver's hold-and-rebuild loop: 8 held ACKs, rebuild per ACK
    // (the InstallBlob path). Measures `rebuild_blob` serialization.
    let info = RxDataInfo {
        from: StationId(0),
        mpdus_ok: 2,
        more_data: true,
        sync: false,
        advances_seq: true,
        is_aggregate: true,
    };
    let mut i = 0u32;
    time_stage(50_000, || {
        let mut d = CompressSide::new(HackMode::MoreData);
        i = i.wrapping_add(1);
        d.on_ack_out(ack(1000, 1, 10 + i), SimTime::from_millis(1));
        d.on_data_received(&info, SimTime::from_millis(2));
        for k in 1..=8u32 {
            let acts = d.on_ack_out(
                ack(1000 + k * 2920, 1 + k as u16, 10 + i + k),
                SimTime::from_millis(2),
            );
            assert!(acts
                .iter()
                .any(|a| matches!(a, DriverAction::InstallBlob { .. })));
            std::hint::black_box(&acts);
        }
    })
}

fn stage_md5_cid() -> Stage {
    let t = ack(1, 1, 1).five_tuple();
    let bytes = t.bytes();
    time_stage(200_000, || {
        std::hint::black_box(hack_rohc::cid_for_tuple(&bytes));
    })
}

fn stage_header_serialize() -> Stage {
    let p = ack(123_456, 7, 99);
    time_stage(200_000, || {
        std::hint::black_box(p.header_bytes());
    })
}

// ---------------------------------------------------------------------
// End-to-end events/sec.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct EndToEnd {
    events: u64,
    wall_ns: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    allocs: u64,
    allocs_per_event: f64,
    goodput_mbps: f64,
}

fn end_to_end(quick: bool) -> EndToEnd {
    let (sim_ms, reps) = if quick { (300, 2) } else { (3000, 3) };
    let mut best: Option<EndToEnd> = None;
    for rep in 0..reps {
        let mut cfg = ScenarioConfig::dot11n_download(150, 1, HackMode::MoreData);
        cfg.duration = SimDuration::from_millis(sim_ms);
        cfg.warmup = SimDuration::from_millis(sim_ms / 5);
        cfg.seed = 1 + rep; // identical work profile, fresh RNG stream
        let a0 = allocs_now();
        let t0 = Instant::now();
        let r = run(cfg);
        let wall = t0.elapsed();
        let allocs = allocs_now() - a0;
        let e = EndToEnd {
            events: r.events_dispatched,
            wall_ns: wall.as_nanos() as u64,
            events_per_sec: r.events_dispatched as f64 / wall.as_secs_f64(),
            ns_per_event: wall.as_nanos() as f64 / r.events_dispatched as f64,
            allocs,
            allocs_per_event: allocs as f64 / r.events_dispatched as f64,
            goodput_mbps: r.aggregate_goodput_mbps,
        };
        if best.is_none_or(|b| e.events_per_sec > b.events_per_sec) {
            best = Some(e);
        }
    }
    best.expect("at least one rep")
}

// ---------------------------------------------------------------------
// JSON output (hand-rolled: no serde offline).
// ---------------------------------------------------------------------

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn current_json(e2e: &EndToEnd, stages: &[(&str, Stage)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "    \"events_per_sec\": {},",
        fmt_f64(e2e.events_per_sec)
    );
    let _ = writeln!(s, "    \"ns_per_event\": {},", fmt_f64(e2e.ns_per_event));
    let _ = writeln!(s, "    \"events_dispatched\": {},", e2e.events);
    let _ = writeln!(s, "    \"wall_ns\": {},", e2e.wall_ns);
    let _ = writeln!(s, "    \"allocs\": {},", e2e.allocs);
    let _ = writeln!(
        s,
        "    \"allocs_per_event\": {},",
        fmt_f64(e2e.allocs_per_event)
    );
    let _ = writeln!(s, "    \"goodput_mbps\": {},", fmt_f64(e2e.goodput_mbps));
    s.push_str("    \"stages\": {\n");
    for (i, (name, st)) in stages.iter().enumerate() {
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      \"{name}\": {{ \"ns_per_op\": {}, \"allocs_per_op\": {} }}{comma}",
            fmt_f64(st.ns_per_op),
            fmt_f64(st.allocs_per_op)
        );
    }
    s.push_str("    }\n  }");
    s
}

/// Extract the brace-matched object value of top-level `"key"` from a
/// JSON document previously written by this tool.
fn extract_object(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": {{");
    let start = text.find(&pat)? + pat.len() - 1;
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            },
            "--quick" => {}
            other => {
                eprintln!("unknown flag {other:?}; usage: bench [--json <path>] [--quick]");
                std::process::exit(2);
            }
        }
    }

    println!("== hot-path stages (ns/op, allocs/op) ==");
    let stages: Vec<(&str, Stage)> = vec![
        ("queue_push_pop", stage_queue_push_pop()),
        ("rohc_compress_confirm", stage_compress_confirm()),
        ("rohc_decompress_blob21", stage_decompress_blob()),
        ("driver_blob_rebuild_x8", stage_blob_rebuild()),
        ("md5_cid", stage_md5_cid()),
        ("header_serialize", stage_header_serialize()),
    ];
    for (name, st) in &stages {
        println!(
            "{name:<26} {:>12.1} ns/op {:>8.2} allocs/op",
            st.ns_per_op, st.allocs_per_op
        );
    }

    println!("\n== end-to-end: 802.11n 150 Mbps, 1 client, TCP/HACK ==");
    let e2e = end_to_end(quick);
    println!(
        "{:.0} events/sec  ({:.0} ns/event, {} events, {:.2} allocs/event, {:.1} Mbps goodput)",
        e2e.events_per_sec, e2e.ns_per_event, e2e.events, e2e.allocs_per_event, e2e.goodput_mbps
    );

    let Some(path) = json_path else { return };

    // Preserve a previously recorded baseline so the file carries a
    // before/after trajectory; the first ever run seeds the baseline
    // from its own "current" on the *next* run.
    let previous = std::fs::read_to_string(&path).ok();
    let baseline = previous
        .as_deref()
        .and_then(|t| extract_object(t, "baseline").or_else(|| extract_object(t, "current")));
    let current = current_json(&e2e, &stages);
    let speedup = baseline
        .as_deref()
        .and_then(|b| extract_number(b, "events_per_sec"))
        .map(|b| e2e.events_per_sec / b);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"benchmark\": \"hack hot path: calendar queue + ACK pipeline\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    match &baseline {
        Some(b) => {
            let _ = writeln!(out, "  \"baseline\": {b},");
        }
        None => out.push_str("  \"baseline\": null,\n"),
    }
    let _ = writeln!(out, "  \"current\": {current},");
    match speedup {
        Some(sp) => {
            let _ = writeln!(out, "  \"speedup_events_per_sec\": {}", fmt_f64(sp));
        }
        None => out.push_str("  \"speedup_events_per_sec\": null\n"),
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());
    if let Some(sp) = speedup {
        println!("speedup vs recorded baseline: {sp:.2}x");
    }
}
