//! Regenerate every table and figure of the HACK paper (USENIX ATC '14).
//!
//! Run `experiments --help` (or see [`hack_bench::USAGE`]) for the
//! subcommand list and flags. The sweep-shaped subcommands
//! (`loss-sweep`, `fault-matrix`, `chaos-recovery`, `campaign-smoke`)
//! run on the `hack-campaign` engine: declarative axes over
//! [`ScenarioConfig`], a work-stealing worker pool, and an optional
//! content-addressed result cache (`--cache <dir>`) — with
//! byte-identical output at any thread count.

use hack_analysis::{CapacityModel, Protocol};
use hack_bench::{run_seeds, set_trace_base, CommonOpts, USAGE};
use hack_campaign::{campaign_csv, campaign_json, run_campaign, Axis, CellReport, SweepSpec};
use hack_core::{
    run_auto, run_dense, BssSpec, CbrConfig, CcKind, ChannelChange, ChannelEvent,
    CompressSideStats, CorruptModel, DenseOptions, DenseReport, FlowHealth, GeParams, HackMode,
    LossConfig, OnOffConfig, RoamEvent, RunResult, ScenarioBuilder, ScenarioConfig,
    ShortFlowConfig, SupervisorConfig, SupervisorReport, TrafficClass, TrafficModel,
};
use hack_phy::{Channel, PhyRate, StationId, DOT11A_RATES_MBPS, DOT11N_HT40_SGI_MBPS};
use hack_sim::{QuantileSketch, RunStats, SimDuration};

type Opts = CommonOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, positional) = match CommonOpts::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if opts.help {
        print!("{USAGE}");
        return;
    }
    if let Some(p) = opts.trace.clone() {
        set_trace_base(p);
    }
    let cmd = positional.as_deref().unwrap_or("all");

    match cmd {
        "fig1a" => fig1a(),
        "fig1b" => fig1b(),
        "fig9" => fig9(&opts),
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "table3" => table3(&opts),
        "xval" => xval(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "loss-sweep" => loss_sweep(&opts),
        "fault-matrix" => fault_matrix(&opts),
        "chaos-recovery" => chaos_recovery(&opts),
        "campaign-smoke" => campaign_smoke(&opts),
        "cc-matrix" => cc_matrix(&opts),
        "traffic-matrix" => traffic_matrix(&opts),
        "dense-sweep" => dense_sweep(&opts),
        "dense-smoke" => dense_smoke(&opts),
        "roam-chaos" => roam_chaos(&opts),
        "ablate-timer" => ablate_timer(&opts),
        "ablate-delack" => ablate_delack(&opts),
        "ablate-sync" => ablate_sync(&opts),
        "ablate-txop" => ablate_txop(&opts),
        "all" => {
            fig1a();
            fig1b();
            fig9(&opts);
            table1(&opts);
            table2(&opts);
            table3(&opts);
            xval(&opts);
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            loss_sweep(&opts);
            fault_matrix(&opts);
            chaos_recovery(&opts);
            campaign_smoke(&opts);
            cc_matrix(&opts);
            traffic_matrix(&opts);
            dense_sweep(&opts);
            dense_smoke(&opts);
            roam_chaos(&opts);
            ablate_timer(&opts);
            ablate_delack(&opts);
            ablate_sync(&opts);
            ablate_txop(&opts);
        }
        other => {
            eprintln!("unknown subcommand {other:?}; see --help");
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!("\n===== {title} =====");
}

/// `mean ± std` goodput string for one campaign cell, matching the
/// `RunStats` display the direct-run tables use.
fn cell_goodput(cell: &CellReport) -> String {
    let mut s = RunStats::new();
    for r in &cell.runs {
        s.push(r.aggregate_goodput_mbps);
    }
    s.to_string()
}

// ----------------------------------------------------------------------
// Figure 1: analytical capacity
// ----------------------------------------------------------------------

fn fig1a() {
    banner("Figure 1(a): theoretical goodput, 802.11a (Mbps)");
    let m = CapacityModel::dot11a();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "rate", "TCP/802.11a", "TCP/HACK", "UDP", "gain"
    );
    for &mbps in &DOT11A_RATES_MBPS {
        let r = PhyRate::dot11a(mbps);
        let tcp = m.goodput_dot11a(r, Protocol::Tcp);
        let hack = m.goodput_dot11a(r, Protocol::TcpHack);
        let udp = m.goodput_dot11a(r, Protocol::Udp);
        println!(
            "{mbps:>6} {tcp:>12.2} {hack:>12.2} {udp:>12.2} {:>7.1}%",
            (hack / tcp - 1.0) * 100.0
        );
    }
}

fn fig1b() {
    banner("Figure 1(b): theoretical goodput, 802.11n (Mbps)");
    let m = CapacityModel::dot11n();
    let rates: Vec<u64> = {
        let mut v: Vec<u64> = DOT11N_HT40_SGI_MBPS
            .iter()
            .flat_map(|&b| (1..=4u64).map(move |s| b * s))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "rate", "TCP/802.11n", "TCP/HACK", "UDP", "gain"
    );
    for mbps in rates {
        let r = PhyRate::ht(mbps);
        let tcp = m.goodput_dot11n(r, Protocol::Tcp);
        let hack = m.goodput_dot11n(r, Protocol::TcpHack);
        let udp = m.goodput_dot11n(r, Protocol::Udp);
        println!(
            "{mbps:>6} {tcp:>12.2} {hack:>12.2} {udp:>12.2} {:>7.1}%",
            (hack / tcp - 1.0) * 100.0
        );
    }
}

// ----------------------------------------------------------------------
// Figure 9 / Table 1: the SoRa testbed
// ----------------------------------------------------------------------

fn sora_cfg(clients: &str, mode: HackMode, udp: bool, opts: &Opts) -> ScenarioConfig {
    let mut cfg = match clients {
        "c1" => ScenarioBuilder::sora_testbed(1, mode).build(),
        "c2" => {
            let mut c = ScenarioBuilder::sora_testbed(1, mode).build();
            c.loss = LossConfig::PerClient(vec![0.02]);
            c
        }
        _ => ScenarioBuilder::sora_testbed(2, mode).build(),
    };
    cfg.duration = SimDuration::from_secs(opts.secs);
    if udp {
        cfg = cfg.with_udp();
    }
    cfg
}

fn fig9(opts: &Opts) {
    banner("Figure 9: SoRa testbed mean goodput (Mbps), mean ± std over runs");
    println!("(paper anchors at 54 Mbps: UDP ≈ 26.5, TCP/HACK ≈ 25.0, TCP/802.11a ≈ 19.4)");
    for (label, clients) in [
        ("One client (C1)", "c1"),
        ("One client (C2)", "c2"),
        ("Both clients", "both"),
    ] {
        println!("-- {label} --");
        for (tag, mode, udp) in [
            ("U", HackMode::Disabled, true),
            ("H", HackMode::MoreData, false),
            ("T", HackMode::Disabled, false),
        ] {
            let mr = run_seeds(&sora_cfg(clients, mode, udp, opts), opts.seeds);
            if clients == "both" {
                if udp {
                    // UDP has per-client meters too.
                    let c1 = mr.flow_goodput(0);
                    let c2 = mr.flow_goodput(1);
                    println!("  {tag}: client1 {c1}   client2 {c2}");
                } else {
                    let c1 = mr.flow_goodput(0);
                    let c2 = mr.flow_goodput(1);
                    println!("  {tag}: client1 {c1}   client2 {c2}");
                }
            } else {
                println!("  {tag}: {}", mr.aggregate_goodput());
            }
        }
    }
}

fn table1(opts: &Opts) {
    banner("Table 1: % of data frames needing no retries (AP transmissions)");
    println!("(paper: UDP 99 %, TCP/HACK 97-98 %, TCP/802.11a 86-88 %)");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "", "UDP/802.11a", "TCP/HACK", "TCP/802.11a"
    );
    for (label, clients) in [
        ("Client 1 alone", "c1"),
        ("Client 2 alone", "c2"),
        ("Both clients", "both"),
    ] {
        let mut row = format!("{label:<18}");
        for (mode, udp) in [
            (HackMode::Disabled, true),
            (HackMode::MoreData, false),
            (HackMode::Disabled, false),
        ] {
            let mr = run_seeds(&sora_cfg(clients, mode, udp, opts), opts.seeds);
            let f = mr.ap_first_try();
            row.push_str(&format!(" {:>11.1}%", f.mean() * 100.0));
        }
        println!("{row}");
    }
}

// ----------------------------------------------------------------------
// Tables 2 and 3: the 25 MB transfer
// ----------------------------------------------------------------------

fn transfer_cfg(mode: HackMode) -> ScenarioConfig {
    let mut cfg = ScenarioBuilder::sora_testbed(1, mode).build();
    cfg.transfer_bytes = Some(25_000_000);
    cfg.duration = SimDuration::from_secs(60);
    cfg
}

fn table2(_opts: &Opts) {
    banner("Table 2: ACK accounting over a 25 MB transfer");
    println!("(paper: TCP 9060 ACKs / 471120 B; HACK 10 native + 9050 compressed, ratio 12)");
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "", "ACK count", "ACK bytes", "ACKC count", "ACKC bytes", "ratio"
    );
    for (label, mode) in [
        ("TCP/802.11a", HackMode::Disabled),
        ("TCP/HACK", HackMode::MoreData),
    ] {
        let mr = run_seeds(&transfer_cfg(mode), 1);
        let r = &mr.runs[0];
        let d = &r.driver[0];
        let ratio = r.compressor[0].ratio();
        println!(
            "{label:<14} {:>10} {:>12} {:>10} {:>12} {:>8.1}",
            d.native_acks, d.native_ack_bytes, d.hacked_acks, d.hacked_ack_bytes, ratio,
        );
        if let Some(t) = r.completion() {
            println!("  (transfer completed in {:.2} s)", t.as_secs_f64());
        }
    }
}

fn table3(_opts: &Opts) {
    banner("Table 3: TCP ACK time overheads over a 25 MB transfer (ms)");
    println!("(paper: TCP 70/0/1093/456; HACK 0.08/13.1/1.17/0.46)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>14}",
        "", "TCP ACK", "ROHC", "Channel", "LL ACK ovh"
    );
    for (label, mode) in [
        ("TCP/802.11a", HackMode::Disabled),
        ("TCP/HACK", HackMode::MoreData),
    ] {
        let mr = run_seeds(&transfer_cfg(mode), 1);
        let r = &mr.runs[0];
        let client = &r.mac[1];
        let ms = |d: hack_sim::SimDuration| d.as_nanos() as f64 / 1e6;
        println!(
            "{label:<14} {:>10.2} {:>10.2} {:>10.2} {:>14.2}",
            ms(client.airtime_ack.total()),
            ms(client.airtime_blob.total()),
            ms(client.acquire_wait_ack.total()),
            ms(client.ll_ack_overhead.total()),
        );
    }
    let mr = run_seeds(&transfer_cfg(HackMode::MoreData), 1);
    println!(
        "(blob fits within AIFS on {:.1}% of augmented LL ACKs; paper: 98.5%)",
        mr.runs[0].blob_within_aifs * 100.0
    );
}

// ----------------------------------------------------------------------
// §4.2 cross-validation
// ----------------------------------------------------------------------

fn xval(opts: &Opts) {
    banner("Cross-validation (§4.2): fixed-loss 802.11a, with/without SoRa LL ACK delay");
    println!("(paper: TCP 22.4 ideal vs 19.6 SoRa; HACK 28 ideal vs 25.5 SoRa)");
    println!(
        "{:<12} {:>6} {:>18} {:>18}",
        "protocol", "loss", "ideal LL ACKs", "SoRa LL ACKs"
    );
    for (label, mode, loss) in [
        ("TCP/802.11a", HackMode::Disabled, 0.12),
        ("TCP/HACK", HackMode::MoreData, 0.02),
    ] {
        let mut row = format!("{label:<12} {:>5.0}%", loss * 100.0);
        for sora in [false, true] {
            let mut cfg = ScenarioBuilder::sora_testbed(1, mode).build();
            cfg.loss = LossConfig::PerClient(vec![loss]);
            cfg.sora_quirks = sora;
            cfg.duration = SimDuration::from_secs(opts.secs);
            let mr = run_seeds(&cfg, opts.seeds);
            row.push_str(&format!(" {:>18}", mr.aggregate_goodput().to_string()));
        }
        println!("{row}");
    }
}

// ----------------------------------------------------------------------
// Fault injection: loss-rate sweep and the CI fault matrix
// ----------------------------------------------------------------------

const SWEEP_LOSSES: [f64; 6] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20];

/// The loss sweep as a declarative campaign: loss × channel × mode.
///
/// The `chan` axis's "burst" point *reads* the i.i.d. rate the `loss`
/// axis installed and rewrites it as an equal-mean Gilbert–Elliott
/// model — axes apply in declaration order, so later axes may refine
/// earlier ones.
fn loss_sweep_spec(opts: &Opts) -> SweepSpec {
    let mut base = ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build();
    base.duration = SimDuration::from_secs(opts.secs);
    let seed = base.seed;
    let mut loss_axis = Axis::new("loss");
    for loss in SWEEP_LOSSES {
        loss_axis = loss_axis.point(format!("{:.0}%", loss * 100.0), move |c| {
            c.loss = LossConfig::PerClient(vec![loss]);
        });
    }
    SweepSpec::new("loss-sweep", base)
        .axis(loss_axis)
        .axis(Axis::new("chan").point("iid", |_| {}).point("burst", |c| {
            if let LossConfig::PerClient(per) = &c.loss {
                let mean = per.first().copied().unwrap_or(0.0);
                c.loss = LossConfig::Burst(GeParams::bursty(mean, 8.0));
            }
        }))
        .axis(
            Axis::new("mode")
                .point("tcp", |c| c.hack_mode = HackMode::Disabled)
                .point("hack", |c| c.hack_mode = HackMode::MoreData),
        )
        .seed_bank(seed, opts.seeds)
}

fn loss_sweep(opts: &Opts) {
    banner("Loss sweep: goodput (Mbps) vs loss rate, i.i.d. vs bursty (mean burst 8)");
    println!("(same mean loss, different clustering: Gilbert–Elliott trades back-to-back");
    println!(" losses for longer clean spells, which A-MPDU retries ride out differently)");
    println!(
        "{:<6} {:>16} {:>16} {:>16} {:>16}",
        "loss", "TCP iid", "HACK iid", "TCP burst", "HACK burst"
    );
    let report = run_campaign(&loss_sweep_spec(opts), &opts.campaign());
    // Cells are odometer-ordered (mode fastest, then chan, then loss):
    // cell = (loss_idx * 2 + chan_idx) * 2 + mode_idx.
    for (li, loss) in SWEEP_LOSSES.iter().enumerate() {
        let mut row = format!("{:>4.0}% ", loss * 100.0);
        for chan in 0..2 {
            for mode in 0..2 {
                let cell = (li * 2 + chan) * 2 + mode;
                match report.cells.iter().find(|c| c.cell == cell) {
                    Some(c) => row.push_str(&format!(" {:>16}", cell_goodput(c))),
                    None => row.push_str(&format!(" {:>16}", "-")),
                }
            }
        }
        println!("{row}");
    }
    if opts.json {
        println!("{}", campaign_json(&report));
    }
}

/// Hand-rolled JSON for one compress side's driver counters.
fn driver_json(d: &CompressSideStats) -> String {
    format!(
        "{{\"native_acks\":{},\"hacked_acks\":{},\"timer_flushes\":{},\
         \"noop_flushes\":{},\"dropped_on_flush\":{},\"spilled\":{},\
         \"reenqueued\":{},\"forced_native\":{}}}",
        d.native_acks,
        d.hacked_acks,
        d.timer_flushes,
        d.noop_flushes,
        d.dropped_on_flush,
        d.spilled,
        d.reenqueued,
        d.forced_native,
    )
}

/// Hand-rolled JSON for one flow's supervisor outcome.
fn supervisor_json(rep: &SupervisorReport) -> String {
    format!(
        "{{\"final_state\":\"{}\",\"degraded\":{},\"fallbacks\":{},\
         \"probations\":{},\"recoveries\":{},\"refreshes\":{}}}",
        rep.final_state.name(),
        rep.stats.degraded,
        rep.stats.fallbacks,
        rep.stats.probations,
        rep.stats.recoveries,
        rep.stats.refreshes,
    )
}

/// One human-readable supervisor summary line (per flow).
fn supervisor_line(rep: &SupervisorReport) -> String {
    format!(
        "final={} degraded={} fallbacks={} probations={} recoveries={} refreshes={}",
        rep.final_state.name(),
        rep.stats.degraded,
        rep.stats.fallbacks,
        rep.stats.probations,
        rep.stats.recoveries,
        rep.stats.refreshes,
    )
}

fn fault_matrix(opts: &Opts) {
    banner("Fault matrix: one seeded run per loss model (CI smoke)");
    println!("(fails the process on zero goodput, or if the corrupting row never");
    println!(" exercises the FCS / ROHC CRC-3 corrupted-delivery path; the last");
    println!(" row re-runs the corrupting model with the HACK supervisor on)");
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6}",
        "model",
        "goodput",
        "fcs_bad",
        "crc_fail",
        "native",
        "hacked",
        "spill",
        "tflush",
        "noop",
        "drop"
    );
    const CORRUPTING: CorruptModel = CorruptModel {
        data_frac: 0.5,
        control_per: 0.02,
        fcs_miss: 0.25,
    };
    let mut base = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
    base.duration = SimDuration::from_secs(opts.secs);
    // One model axis, one seed: each point is a self-contained fault
    // scenario layered onto the shared base.
    let spec = SweepSpec::new("fault-matrix", base).axis(
        Axis::new("model")
            .point("ideal", |c| c.loss = LossConfig::Ideal)
            .point("fixed", |c| c.loss = LossConfig::PerClient(vec![0.12]))
            .point("burst", |c| {
                c.loss = LossConfig::Burst(GeParams::bursty(0.12, 8.0));
            })
            .point("corrupting", |c| {
                c.loss = LossConfig::Burst(GeParams::bursty(0.12, 8.0));
                c.corrupt = Some(CORRUPTING);
            })
            .point("supervised", |c| {
                c.loss = LossConfig::Burst(GeParams::bursty(0.12, 8.0));
                c.corrupt = Some(CORRUPTING);
                c.supervisor = Some(SupervisorConfig::default());
            }),
    );
    let report = run_campaign(&spec, &opts.campaign());
    let mut failed = false;
    let mut json_rows = Vec::new();
    for cell in &report.cells {
        let label = cell.labels[0].as_str();
        let supervised = label == "supervised";
        let r = &cell.runs[0];
        let d = &r.driver[0];
        let fcs_bad: u64 = r.mac.iter().map(|m| m.rx_fcs_bad.get()).sum();
        let crc = r.decompressor.crc_failures;
        let goodput = cell.goodput.mean;
        let mut verdict = "";
        if goodput <= 0.0 {
            verdict = "  <-- FAIL: zero goodput";
            failed = true;
        } else if label == "corrupting" && (fcs_bad == 0 || crc == 0) {
            // The supervised row may legitimately mute the CRC path by
            // falling back to native ACKs, so the silent-path check only
            // gates the unsupervised corrupting row.
            verdict = "  <-- FAIL: corrupted-delivery path silent";
            failed = true;
        }
        println!(
            "{label:<12} {goodput:>8.2} M {fcs_bad:>10} {crc:>9} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6}{verdict}",
            d.native_acks, d.hacked_acks, d.spilled, d.timer_flushes, d.noop_flushes,
            d.dropped_on_flush
        );
        if supervised {
            for rep in &r.supervisor {
                println!("             supervisor: {}", supervisor_line(rep));
            }
        }
        let sup = r
            .supervisor
            .first()
            .map_or_else(|| "null".into(), supervisor_json);
        json_rows.push(format!(
            "{{\"model\":\"{label}\",\"goodput_mbps\":{goodput:.3},\
             \"rx_fcs_bad\":{fcs_bad},\"crc_failures\":{crc},\
             \"driver\":{},\"supervisor\":{sup}}}",
            driver_json(d)
        ));
    }
    if opts.json {
        println!("{{\"fault_matrix\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
    println!("fault matrix OK");
}

// ----------------------------------------------------------------------
// Chaos recovery: the supervisor's CI smoke
// ----------------------------------------------------------------------

/// The PR 3 "everything on" fault scenario (bursty loss + corrupted
/// delivery + mid-run dynamics) — identical to the one the supervisor
/// integration tests run. Seeds come from the campaign's seed bank.
fn chaos_faulty(mode: HackMode, supervised: bool) -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, mode).build();
    c.duration = SimDuration::from_secs(2);
    c.loss = LossConfig::Burst(GeParams::bursty(0.08, 6.0));
    c.corrupt = Some(CorruptModel {
        data_frac: 0.5,
        control_per: 0.02,
        fcs_miss: 0.25,
    });
    c.dynamics = vec![
        ChannelEvent {
            at: SimDuration::from_millis(600),
            change: ChannelChange::ClientLoss {
                client: 0,
                per: 0.1,
            },
        },
        ChannelEvent {
            at: SimDuration::from_millis(1200),
            change: ChannelChange::SnrOffsetDb(-3.0),
        },
    ];
    if supervised {
        c.supervisor = Some(SupervisorConfig::default());
    }
    c
}

/// A 60 % loss storm that heals to 2 % mid-run: drives the full
/// degrade → fallback → probation → recovery arc.
fn chaos_storm() -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
    c.duration = SimDuration::from_secs(4);
    c.loss = LossConfig::PerClient(vec![0.6]);
    c.dynamics = vec![ChannelEvent {
        at: SimDuration::from_millis(1500),
        change: ChannelChange::ClientLoss {
            client: 0,
            per: 0.02,
        },
    }];
    c.supervisor = Some(SupervisorConfig::default());
    c
}

fn chaos_recovery(opts: &Opts) {
    banner("Chaos recovery: supervised HACK under faults + a healing loss storm");
    println!("(fails the process if any supervised flow ends the run stalled — zero");
    println!(" goodput in the final window — or permanently degraded despite a");
    println!(" healthy channel at the end of the storm scenario)");
    let matrix_seeds: &[u64] = if opts.quick {
        &[13, 21]
    } else {
        &[13, 21, 34, 89]
    };
    let storm_seeds: &[u64] = if opts.quick { &[5, 9] } else { &[5, 9, 17] };
    let mut failed = false;
    let mut json_rows = Vec::new();

    println!("-- corrupting/burst matrix: plain TCP vs supervised TCP/HACK --");
    println!(
        "{:>6} {:>10} {:>10} {:>10}  supervisor",
        "seed", "tcp", "hack+sup", "final-win"
    );
    let mut tcp_total = 0.0;
    let mut sup_total = 0.0;
    // One campaign: a protocol axis (plain TCP vs supervised HACK) over
    // the matrix seed bank. Cell 0 is TCP, cell 1 supervised HACK; runs
    // come back in seed-bank order.
    let faulty_spec = SweepSpec::new("chaos-faulty", chaos_faulty(HackMode::Disabled, false))
        .axis(
            Axis::new("proto")
                .point("tcp", |c| {
                    c.hack_mode = HackMode::Disabled;
                    c.supervisor = None;
                })
                .point("hack+sup", |c| {
                    c.hack_mode = HackMode::MoreData;
                    c.supervisor = Some(SupervisorConfig::default());
                }),
        )
        .seeds(matrix_seeds.to_vec());
    let faulty = run_campaign(&faulty_spec, &opts.campaign());
    for (i, &seed) in matrix_seeds.iter().enumerate() {
        let (tcp, sup) = (&faulty.cells[0].runs[i], &faulty.cells[1].runs[i]);
        tcp_total += tcp.aggregate_goodput_mbps;
        sup_total += sup.aggregate_goodput_mbps;
        let mut verdict = "";
        if stalled(sup) {
            verdict = "  <-- FAIL: flow ended stalled";
            failed = true;
        }
        let final_win = sup.flow_goodput_final_mbps[0];
        println!(
            "{seed:>6} {:>8.2} M {:>8.2} M {final_win:>8.2} M  {}{verdict}",
            tcp.aggregate_goodput_mbps,
            sup.aggregate_goodput_mbps,
            supervisor_line(&sup.supervisor[0]),
        );
        json_rows.push(format!(
            "{{\"scenario\":\"faulty\",\"seed\":{seed},\
             \"tcp_goodput_mbps\":{:.3},\"sup_goodput_mbps\":{:.3},\
             \"final_window_mbps\":{final_win:.3},\
             \"driver\":{},\"supervisor\":{}}}",
            tcp.aggregate_goodput_mbps,
            sup.aggregate_goodput_mbps,
            driver_json(&sup.driver[0]),
            supervisor_json(&sup.supervisor[0]),
        ));
    }
    println!(
        "aggregate: plain TCP {tcp_total:.2} M, supervised HACK {sup_total:.2} M ({})",
        if sup_total >= tcp_total {
            "supervision kept HACK's edge"
        } else {
            "WARNING: supervised HACK behind plain TCP on this seed set"
        }
    );

    println!("-- loss storm (60 % -> 2 % at 1.5 s): fallback must recover --");
    println!(
        "{:>6} {:>10} {:>10}  supervisor",
        "seed", "goodput", "final-win"
    );
    let storm_spec = SweepSpec::new("chaos-storm", chaos_storm()).seeds(storm_seeds.to_vec());
    let storm = run_campaign(&storm_spec, &opts.campaign());
    for (i, &seed) in storm_seeds.iter().enumerate() {
        let r = &storm.cells[0].runs[i];
        let rep = &r.supervisor[0];
        let mut verdict = "";
        if stalled(r) {
            verdict = "  <-- FAIL: flow ended stalled";
            failed = true;
        } else if rep.final_state != FlowHealth::Healthy {
            verdict = "  <-- FAIL: degraded despite healthy channel";
            failed = true;
        }
        let final_win = r.flow_goodput_final_mbps[0];
        println!(
            "{seed:>6} {:>8.2} M {final_win:>8.2} M  {}{verdict}",
            r.aggregate_goodput_mbps,
            supervisor_line(rep),
        );
        json_rows.push(format!(
            "{{\"scenario\":\"storm_heal\",\"seed\":{seed},\
             \"sup_goodput_mbps\":{:.3},\"final_window_mbps\":{final_win:.3},\
             \"driver\":{},\"supervisor\":{}}}",
            r.aggregate_goodput_mbps,
            driver_json(&r.driver[0]),
            supervisor_json(rep),
        ));
    }
    if opts.json {
        println!("{{\"chaos_recovery\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
    println!("chaos recovery OK");
}

/// A flow is stalled if it moved no data in the run's final window.
fn stalled(r: &RunResult) -> bool {
    r.flow_goodput_final_mbps.iter().any(|&g| g <= 0.0)
}

// ----------------------------------------------------------------------
// Campaign smoke: the engine's own CI gate
// ----------------------------------------------------------------------

/// A tiny 2×2×2 sweep (loss × mode × 2 seeds) exercising the whole
/// campaign stack: fails the process if parallel and serial execution
/// emit different aggregates, or if a second cached run resolves fewer
/// than 90% of its jobs from the cache.
fn campaign_smoke(opts: &Opts) {
    banner("Campaign smoke: 2×2×2 sweep — parallel determinism + cache hit rate");
    let mut base = ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build();
    if opts.quick {
        // Keep a real steady-state window (default warmup is 1 s).
        base.warmup = SimDuration::from_millis(200);
        base.duration = SimDuration::from_millis(800);
    } else {
        base.duration = SimDuration::from_secs(2);
    }
    let seed = base.seed;
    let spec = SweepSpec::new("campaign-smoke", base)
        .axis(
            Axis::new("loss")
                .point("2%", |c| c.loss = LossConfig::PerClient(vec![0.02]))
                .point("5%", |c| c.loss = LossConfig::PerClient(vec![0.05])),
        )
        .axis(
            Axis::new("mode")
                .point("tcp", |c| c.hack_mode = HackMode::Disabled)
                .point("hack", |c| c.hack_mode = HackMode::MoreData),
        )
        .seed_bank(seed, 2);

    // (1) Determinism: one worker vs the full pool, byte for byte.
    let mut serial_opts = opts.campaign();
    serial_opts.threads = 1;
    serial_opts.cache_dir = None;
    let mut parallel_opts = opts.campaign();
    parallel_opts.cache_dir = None;
    let serial = run_campaign(&spec, &serial_opts);
    let parallel = run_campaign(&spec, &parallel_opts);
    let serial_json = campaign_json(&serial);
    if serial_json != campaign_json(&parallel) {
        eprintln!("FAIL: parallel and serial campaigns emitted different reports");
        std::process::exit(1);
    }
    println!(
        "determinism: serial == parallel over {} jobs ({} cells)",
        serial.jobs_total,
        serial.cells.len()
    );

    // (2) Cache: run the same sweep twice through a cache directory.
    let scratch = opts.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("hack-campaign-smoke-{}", std::process::id()))
    });
    let ephemeral = opts.cache_dir.is_none();
    if ephemeral {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let mut cached_opts = opts.campaign();
    cached_opts.cache_dir = Some(scratch.clone());
    let first = run_campaign(&spec, &cached_opts);
    let second = run_campaign(&spec, &cached_opts);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let hit_rate = second.cache_hits as f64 / second.jobs_total.max(1) as f64;
    println!(
        "cache: first run {} executed / {} hits, second run {} executed / {} hits ({:.0}% hit rate)",
        first.jobs_executed,
        first.cache_hits,
        second.jobs_executed,
        second.cache_hits,
        hit_rate * 100.0
    );
    if hit_rate < 0.9 {
        eprintln!("FAIL: second run hit rate {:.0}% < 90%", hit_rate * 100.0);
        std::process::exit(1);
    }
    // Cached results must feed the same aggregates as fresh ones.
    let tail = |s: &str| s[s.find("\"cells\":").map_or(0, |i| i)..].to_string();
    if tail(&campaign_json(&second)) != tail(&serial_json) {
        eprintln!("FAIL: cache round-trip changed the aggregates");
        std::process::exit(1);
    }
    print!("{}", campaign_csv(&second));
    if opts.json {
        println!("{}", campaign_json(&second));
    }
    println!("campaign smoke OK");
}

// ----------------------------------------------------------------------
// CC matrix: the congestion-control suite's CI gate
// ----------------------------------------------------------------------

/// Sampler-derived mean RTT for one campaign cell, in milliseconds,
/// aggregated over every sender flow in every seeded run.
fn cell_mean_rtt_ms(cell: &CellReport) -> Option<f64> {
    let (mut sum_us, mut n) = (0u64, 0u64);
    for r in &cell.runs {
        for t in &r.sender_tcp {
            sum_us += t.rtt_sum_us;
            n += t.rtt_samples;
        }
    }
    (n > 0).then(|| sum_us as f64 / n as f64 / 1000.0)
}

/// Every congestion controller × HACK on/off × {ideal, burst} channel,
/// over the common seed bank. Fails the process on zero goodput in any
/// cell, a dead delivery-rate sampler (no RTT samples — the trait
/// plumbing regressed), or a parallel run diverging from a serial one
/// (a controller smuggled nondeterminism — wall-clock time, iteration
/// order — into the sim).
fn cc_matrix(opts: &Opts) {
    banner("CC matrix: {reno,cubic,hstcp,bbr} × hack × channel (CI smoke)");
    println!("(fails the process on zero goodput, a silent RTT sampler, or");
    println!(" parallel ≠ serial campaign reports; goodput is mean over seeds,");
    println!(" rtt is the delivery-rate sampler's mean across flows and seeds)");
    let mut base = ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build();
    base.duration = SimDuration::from_secs(opts.secs);
    let seed = base.seed;
    let mut cc_axis = Axis::new("cc");
    for kind in CcKind::ALL {
        cc_axis = cc_axis.point(kind.name(), move |c| c.cc = kind);
    }
    // Odometer-ordered (mode fastest, then chan, then cc):
    // cell = (cc_idx * 2 + chan_idx) * 2 + mode_idx.
    let spec = SweepSpec::new("cc-matrix", base)
        .axis(cc_axis)
        .axis(
            Axis::new("chan")
                .point("ideal", |c| c.loss = LossConfig::Ideal)
                .point("burst", |c| {
                    c.loss = LossConfig::Burst(GeParams::bursty(0.05, 8.0));
                }),
        )
        .axis(
            Axis::new("mode")
                .point("tcp", |c| c.hack_mode = HackMode::Disabled)
                .point("hack", |c| c.hack_mode = HackMode::MoreData),
        )
        .seed_bank(seed, opts.seeds);

    let report = run_campaign(&spec, &opts.campaign());
    // Determinism gate: one worker must reproduce the pool byte for byte.
    let mut serial_opts = opts.campaign();
    serial_opts.threads = 1;
    if campaign_json(&run_campaign(&spec, &serial_opts)) != campaign_json(&report) {
        eprintln!("FAIL: parallel and serial cc-matrix reports differ");
        std::process::exit(1);
    }

    println!(
        "{:<6} {:<6} {:>14} {:>9} {:>14} {:>9}",
        "cc", "chan", "tcp", "rtt", "hack", "rtt"
    );
    let mut failed = false;
    let mut json_rows = Vec::new();
    for (cc_idx, kind) in CcKind::ALL.into_iter().enumerate() {
        for (chan_idx, chan) in ["ideal", "burst"].into_iter().enumerate() {
            let mut cols = String::new();
            for mode_idx in 0..2 {
                let cell = &report.cells[(cc_idx * 2 + chan_idx) * 2 + mode_idx];
                debug_assert_eq!(cell.labels, [kind.name(), chan, ["tcp", "hack"][mode_idx]]);
                let rtt = cell_mean_rtt_ms(cell);
                let mut verdict = "";
                if cell.goodput.mean <= 0.0 {
                    verdict = "  <-- FAIL: zero goodput";
                    failed = true;
                } else if rtt.is_none() {
                    verdict = "  <-- FAIL: RTT sampler silent";
                    failed = true;
                }
                let rtt_s = rtt.map_or_else(|| "-".into(), |ms| format!("{ms:.1}"));
                cols += &format!(" {:>14} {rtt_s:>9}{verdict}", cell_goodput(cell));
                json_rows.push(format!(
                    "{{\"cc\":\"{}\",\"chan\":\"{chan}\",\"mode\":\"{}\",\
                     \"goodput_mbps\":{:.3},\"mean_rtt_ms\":{}}}",
                    kind.name(),
                    ["tcp", "hack"][mode_idx],
                    cell.goodput.mean,
                    rtt.map_or_else(|| "null".into(), |ms| format!("{ms:.3}")),
                ));
            }
            println!("{:<6} {chan:<6}{cols}", kind.name());
        }
    }
    if opts.json {
        println!("{{\"cc_matrix\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
    println!("cc matrix OK");
}

/// Merge one class's report across every seeded run of a campaign cell.
/// Returns `(transfers, fct, latency, jitter)` — sketches merged with
/// [`QuantileSketch::merge`], which is order-insensitive, so the result
/// is identical at any worker-thread count.
fn merged_class(
    cell: &CellReport,
    class: TrafficClass,
) -> (u64, QuantileSketch, QuantileSketch, QuantileSketch) {
    let mut transfers = 0;
    let mut fct = QuantileSketch::new();
    let mut latency = QuantileSketch::new();
    let mut jitter = QuantileSketch::new();
    for r in &cell.runs {
        if let Some(c) = r.class(class) {
            transfers += c.transfers;
            fct.merge(&c.fct);
            latency.merge(&c.latency);
            jitter.merge(&c.jitter);
        }
    }
    (transfers, fct, latency, jitter)
}

/// Every traffic model × HACK on/off × {ideal, burst} channel, over the
/// common seed bank — the scenario-diversity counterpart of
/// [`cc_matrix`]. Fails the process on zero goodput in any cell, on a
/// short-flow cell that completes no transfers, on a paced-UDP cell
/// whose latency sampler stays silent, on a bidirectional HACK cell
/// where either side's held-ACK counter is zero, or on a parallel run
/// diverging from a serial one.
fn traffic_matrix(opts: &Opts) {
    banner("Traffic matrix: {bulk,short,bidir,cbr,onoff} × hack × channel (CI smoke)");
    println!("(fails the process on zero goodput, a stalled short-flow loop,");
    println!(" a silent one-way-latency sampler, a one-sided bidirectional");
    println!(" HACK cell, or parallel ≠ serial campaign reports; percentiles");
    println!(" are FCT for TCP classes and one-way latency for paced UDP,");
    println!(" merged across seeds)");
    let mut base = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
    base.duration = SimDuration::from_secs(opts.secs);
    let seed = base.seed;
    // Odometer-ordered (mode fastest, then chan, then model):
    // cell = (model_idx * 2 + chan_idx) * 2 + mode_idx.
    const MODELS: [&str; 5] = ["bulk", "short", "bidir", "cbr", "onoff"];
    let model_of = |label: &str| -> TrafficModel {
        match label {
            "bulk" => TrafficModel::BulkDownload,
            "short" => TrafficModel::ShortFlows(ShortFlowConfig::default()),
            "bidir" => TrafficModel::Bidirectional,
            "cbr" => TrafficModel::Cbr(CbrConfig::default()),
            "onoff" => TrafficModel::OnOff(OnOffConfig::default()),
            other => unreachable!("unknown model label {other}"),
        }
    };
    let class_of = |label: &str| -> TrafficClass {
        match label {
            "bulk" => TrafficClass::Bulk,
            "short" => TrafficClass::Short,
            "bidir" => TrafficClass::Bidir,
            "cbr" => TrafficClass::Cbr,
            "onoff" => TrafficClass::OnOff,
            other => unreachable!("unknown model label {other}"),
        }
    };
    let mut model_axis = Axis::new("model");
    for label in MODELS {
        model_axis = model_axis.point(label, move |c| c.traffic = model_of(label));
    }
    let spec = SweepSpec::new("traffic-matrix", base)
        .axis(model_axis)
        .axis(
            Axis::new("chan")
                .point("ideal", |c| c.loss = LossConfig::Ideal)
                .point("burst", |c| {
                    c.loss = LossConfig::Burst(GeParams::bursty(0.05, 8.0));
                }),
        )
        .axis(
            Axis::new("mode")
                .point("tcp", |c| c.hack_mode = HackMode::Disabled)
                .point("hack", |c| c.hack_mode = HackMode::MoreData),
        )
        .seed_bank(seed, opts.seeds);

    let report = run_campaign(&spec, &opts.campaign());
    // Determinism gate: one worker must reproduce the pool byte for
    // byte. The jobs header of `campaign_json` counts cache hits, so
    // the comparison runs bypass the cache (a warm-cache report could
    // never byte-match a cold one even with identical physics).
    let mut serial_opts = opts.campaign();
    serial_opts.threads = 1;
    serial_opts.cache_dir = None;
    let serial_json = campaign_json(&run_campaign(&spec, &serial_opts));
    let parallel_json = if opts.cache_dir.is_some() {
        let mut parallel_opts = opts.campaign();
        parallel_opts.cache_dir = None;
        campaign_json(&run_campaign(&spec, &parallel_opts))
    } else {
        campaign_json(&report)
    };
    if serial_json != parallel_json {
        eprintln!("FAIL: parallel and serial traffic-matrix reports differ");
        std::process::exit(1);
    }

    let q_ms = |s: &QuantileSketch, q: f64| s.quantile(q).map(|ns| ns as f64 / 1e6);
    let fmt_q = |v: Option<f64>| v.map_or_else(|| "-".into(), |ms| format!("{ms:.1}"));
    println!(
        "{:<6} {:<6} {:<5} {:>14} {:>9} {:<4} {:>8} {:>8} {:>8} {:>8}",
        "model", "chan", "mode", "goodput", "transfers", "of", "p50ms", "p95ms", "p99ms", "jit95"
    );
    let mut failed = false;
    let mut json_rows = Vec::new();
    for (model_idx, model) in MODELS.into_iter().enumerate() {
        let class = class_of(model);
        let paced = matches!(class, TrafficClass::Cbr | TrafficClass::OnOff);
        for (chan_idx, chan) in ["ideal", "burst"].into_iter().enumerate() {
            for (mode_idx, mode) in ["tcp", "hack"].into_iter().enumerate() {
                let cell = &report.cells[(model_idx * 2 + chan_idx) * 2 + mode_idx];
                debug_assert_eq!(cell.labels, [model, chan, mode]);
                let (transfers, fct, latency, jitter) = merged_class(cell, class);
                // TCP classes report FCT percentiles; paced UDP reports
                // one-way delivery latency instead (a CBR stream never
                // "completes", so FCT is meaningless there).
                let (metric, sketch) = if paced { ("lat", &latency) } else { ("fct", &fct) };
                let mut verdict = String::new();
                if cell.goodput.mean <= 0.0 {
                    verdict = "  <-- FAIL: zero goodput".into();
                    failed = true;
                } else if class == TrafficClass::Short && (transfers == 0 || fct.count() == 0) {
                    verdict = "  <-- FAIL: short-flow loop stalled".into();
                    failed = true;
                } else if paced && latency.count() == 0 {
                    verdict = "  <-- FAIL: latency sampler silent".into();
                    failed = true;
                }
                if class == TrafficClass::Bidir && mode == "hack" {
                    // The acceptance bar for bidirectional HACK: the
                    // client driver (upload ACKs) and the AP driver
                    // (download ACKs) must both have held ACKs.
                    let (cli, ap) = cell.runs.iter().fold((0u64, 0u64), |(c, a), r| {
                        (
                            c + r.driver.iter().map(|d| d.hacked_acks).sum::<u64>(),
                            a + r.driver_ap.iter().map(|d| d.hacked_acks).sum::<u64>(),
                        )
                    });
                    if cli == 0 || ap == 0 {
                        verdict = format!(
                            "  <-- FAIL: one-sided bidir HACK (client {cli}, ap {ap} held)"
                        );
                        failed = true;
                    }
                }
                let jit = if paced { q_ms(&jitter, 0.95) } else { None };
                println!(
                    "{model:<6} {chan:<6} {mode:<5} {:>14} {transfers:>9} {metric:<4} {:>8} {:>8} {:>8} {:>8}{verdict}",
                    cell_goodput(cell),
                    fmt_q(q_ms(sketch, 0.5)),
                    fmt_q(q_ms(sketch, 0.95)),
                    fmt_q(q_ms(sketch, 0.99)),
                    fmt_q(jit),
                );
                let jnum = |v: Option<f64>| {
                    v.map_or_else(|| "null".into(), |ms| format!("{ms:.3}"))
                };
                json_rows.push(format!(
                    "{{\"model\":\"{model}\",\"chan\":\"{chan}\",\"mode\":\"{mode}\",\
                     \"goodput_mbps\":{:.3},\"transfers\":{transfers},\"metric\":\"{metric}\",\
                     \"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"jitter_p95_ms\":{}}}",
                    cell.goodput.mean,
                    jnum(q_ms(sketch, 0.5)),
                    jnum(q_ms(sketch, 0.95)),
                    jnum(q_ms(sketch, 0.99)),
                    jnum(jit),
                ));
            }
        }
    }
    if opts.json {
        println!("{{\"traffic_matrix\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
    println!("traffic matrix OK");
}

// ----------------------------------------------------------------------
// Dense deployments: multi-BSS sharded worlds
// ----------------------------------------------------------------------

/// An enterprise-floor scenario sized for the dense subcommands.
fn dense_cfg(
    n_bss: usize,
    clients_per: usize,
    mode: HackMode,
    ms: u64,
    seed: u64,
) -> ScenarioConfig {
    ScenarioConfig::builder()
        .hack(mode)
        .bss(BssSpec::enterprise_floor(n_bss, clients_per))
        .duration(SimDuration::from_millis(ms))
        .stagger(SimDuration::from_millis(2))
        .warmup(SimDuration::from_millis(ms / 10))
        .seed(seed)
        .build()
}

/// Total medium acquisitions by *client* stations across every shard —
/// the reverse-path channel cost (data is downstream, so client
/// transmissions are almost entirely TCP-ACK batches, the acquisitions
/// HACK exists to eliminate). Shard station order is per-cell blocks
/// (AP, then its clients), which is what the index walk follows.
fn client_acquisitions(report: &DenseReport, cfg: &ScenarioConfig) -> u64 {
    let mut total = 0;
    for shard in &report.shards {
        let mut i = 0usize;
        for &b in &shard.bss {
            i += 1; // skip the cell's AP
            for _ in 0..cfg.bss[b].n_clients {
                total += shard.result.mac[i].tx_attempts.get();
                i += 1;
            }
        }
    }
    total
}

/// Dense-deployment sweep: HACK-vs-TCP goodput and medium-acquisition
/// savings as the floor grows in both directions — BSS count (spatial
/// reuse; shards run in parallel) and clients per cell (contention
/// inside each cell, where HACK's reverse-path savings compound).
fn dense_sweep(opts: &Opts) {
    banner("Dense sweep: HACK vs TCP across BSS count × clients per cell");
    let ms = if opts.quick { 200 } else { 3_000 };
    let (bss_counts, clients_per): (&[usize], &[usize]) = if opts.quick {
        (&[1, 4], &[1, 4])
    } else {
        (&[1, 4, 9, 16], &[1, 2, 4, 8])
    };
    println!(
        "({} ms per run, enterprise-floor grid, channels 3-coloured;",
        ms
    );
    println!(" acq = client medium acquisitions, the reverse-path cost HACK removes)");
    println!(
        "{:>4} {:>8} {:>6} {:>12} {:>12} {:>7} {:>10} {:>10} {:>7}",
        "bss", "cli/bss", "flows", "tcp Mbps", "hack Mbps", "ratio", "acq tcp", "acq hack", "saved"
    );
    let dense_opts = DenseOptions {
        threads: if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.threads
        },
        epoch: SimDuration::from_millis(10),
        digests: false,
    };
    let mut json_rows = Vec::new();
    for &nb in bss_counts {
        for &cp in clients_per {
            let tcp_cfg = dense_cfg(nb, cp, HackMode::Disabled, ms, 1);
            let hack_cfg = dense_cfg(nb, cp, HackMode::MoreData, ms, 1);
            let tcp = run_dense(&tcp_cfg, &dense_opts);
            let hack = run_dense(&hack_cfg, &dense_opts);
            let (acq_tcp, acq_hack) = (
                client_acquisitions(&tcp, &tcp_cfg),
                client_acquisitions(&hack, &hack_cfg),
            );
            let ratio = hack.aggregate_goodput_mbps / tcp.aggregate_goodput_mbps.max(1e-9);
            let saved = 1.0 - acq_hack as f64 / acq_tcp.max(1) as f64;
            println!(
                "{:>4} {:>8} {:>6} {:>12.1} {:>12.1} {:>7.3} {:>10} {:>10} {:>6.1}%",
                nb,
                cp,
                nb * cp,
                tcp.aggregate_goodput_mbps,
                hack.aggregate_goodput_mbps,
                ratio,
                acq_tcp,
                acq_hack,
                saved * 100.0
            );
            json_rows.push(format!(
                "{{\"bss\":{nb},\"clients_per_bss\":{cp},\
                 \"tcp_mbps\":{:.3},\"hack_mbps\":{:.3},\
                 \"acq_tcp\":{acq_tcp},\"acq_hack\":{acq_hack}}}",
                tcp.aggregate_goodput_mbps, hack.aggregate_goodput_mbps
            ));
        }
    }
    if opts.json {
        println!("{{\"dense_sweep\":[{}]}}", json_rows.join(","));
    }
}

/// Dense smoke (CI gate): a multi-BSS floor and an apartment corridor
/// each run sharded at 1 and 4 worker threads; fails the process on any
/// digest divergence (shard traces or the epoch exchange ledger), on
/// differing merged goodputs, or on zero aggregate goodput.
fn dense_smoke(opts: &Opts) {
    banner("Dense smoke: sharded multi-BSS worlds — 1 vs 4 threads, byte for byte");
    let ms = if opts.quick { 150 } else { 400 };
    let scenarios: Vec<(&str, ScenarioConfig)> = vec![
        (
            "enterprise-floor 9×2",
            dense_cfg(9, 2, HackMode::MoreData, ms, 3),
        ),
        ("apartment-block 6×2", {
            let mut c = dense_cfg(6, 2, HackMode::MoreData, ms, 4);
            c.bss = BssSpec::apartment_block(6, 2);
            c
        }),
    ];
    let at = |threads: usize| DenseOptions {
        threads,
        epoch: SimDuration::from_millis(5),
        digests: true,
    };
    let mut failed = false;
    for (name, cfg) in &scenarios {
        let serial = run_dense(cfg, &at(1));
        let parallel = run_dense(cfg, &at(4));
        let mut verdict = "ok";
        if serial.exchange_digest != parallel.exchange_digest {
            verdict = "FAIL: exchange ledger diverged";
        } else if serial
            .shards
            .iter()
            .zip(&parallel.shards)
            .any(|(s, p)| s.digest != p.digest)
        {
            verdict = "FAIL: shard trace digests diverged";
        } else if serial.flow_goodput_mbps != parallel.flow_goodput_mbps {
            verdict = "FAIL: merged goodputs diverged";
        } else if serial.aggregate_goodput_mbps <= 0.0 {
            verdict = "FAIL: zero goodput";
        }
        println!(
            "{name}: {} shards, {} epochs, {:.1} Mbps aggregate — {verdict}",
            serial.shards.len(),
            serial.epochs,
            serial.aggregate_goodput_mbps
        );
        failed |= verdict != "ok";
    }
    if failed {
        std::process::exit(1);
    }
    println!("dense smoke OK");
}

// ----------------------------------------------------------------------
// Roam chaos: mid-flow AP handoffs under randomized schedules (CI gate)
// ----------------------------------------------------------------------

/// Seeded 64-bit mixer for schedule generation (splitmix64): the roam
/// schedules are "random" but a pure function of the scenario seed, so
/// every run of this subcommand is reproducible.
fn mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Three cells in a row on distinct channels — the middle one unable to
/// decode HACK blobs — with a seeded schedule of 1–2 handoffs per flow
/// and flaky association attempts. Every flow starts at its home AP and
/// wanders; chained handoffs keep their per-flow time order.
fn roam_world(seed: u64, ms: u64, mode: HackMode, supervised: bool) -> ScenarioConfig {
    let mut c = ScenarioConfig::builder()
        .hack(mode)
        .bss(vec![
            BssSpec {
                x: 0.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 25.0,
                y: 0.0,
                channel: 6,
                n_clients: 1,
            },
            BssSpec {
                x: 50.0,
                y: 0.0,
                channel: 11,
                n_clients: 1,
            },
        ])
        .duration(SimDuration::from_millis(ms))
        .stagger(SimDuration::from_millis(2))
        .warmup(SimDuration::from_millis(5))
        .seed(seed)
        .build();
    c.roam.ap_hack_capable = vec![true, false, true];
    c.roam.assoc_fail_prob = 0.3;
    let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut schedule = Vec::new();
    for flow in 0..3usize {
        let hops = 1 + (mix64(&mut s) % 2) as usize;
        let mut ats: Vec<u64> = (0..hops)
            .map(|_| 150 + mix64(&mut s) % ms.saturating_sub(400).max(1))
            .collect();
        ats.sort_unstable();
        let mut cell = flow; // home cell: one client per BSS, in order
        for at in ats {
            let target = (cell + 1 + (mix64(&mut s) % 2) as usize) % 3;
            schedule.push(RoamEvent {
                flow,
                at: SimDuration::from_millis(at),
                target_bss: target,
            });
            cell = target;
        }
    }
    c.roam.schedule = schedule;
    if supervised {
        c.supervisor = Some(SupervisorConfig::default());
    }
    c
}

/// Roam chaos (CI gate): randomized handoff schedules over a 3-BSS
/// world, plain TCP vs supervised TCP/HACK, plus a 1-vs-4-thread
/// sharded determinism check. Fails the process if any flow ends the
/// run stalled, if no handoff ever completes, or if the sharded run's
/// digests diverge between thread counts; warns (without failing) if
/// supervised HACK falls behind plain TCP in aggregate.
fn roam_chaos(opts: &Opts) {
    banner("Roam chaos: mid-flow AP handoffs — plain TCP vs supervised TCP/HACK");
    println!("(seeded random schedules, 30 % association-attempt failures, middle AP");
    println!(" HACK-incapable; fails on a stalled flow, zero completed handoffs, or");
    println!(" parallel != serial sharded digests)");
    let seeds: &[u64] = if opts.quick {
        &[13, 21]
    } else {
        &[13, 21, 34, 89]
    };
    let ms = if opts.quick { 600 } else { 1200 };
    let mut failed = false;
    let mut json_rows = Vec::new();
    let mut tcp_total = 0.0;
    let mut sup_total = 0.0;

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>6} {:>9}  supervisor (flow 0)",
        "seed", "tcp", "hack+sup", "final-win", "roams", "handoffs"
    );
    for &seed in seeds {
        let tcp = run_auto(roam_world(seed, ms, HackMode::Disabled, false));
        let sup = run_auto(roam_world(seed, ms, HackMode::MoreData, true));
        tcp_total += tcp.aggregate_goodput_mbps;
        sup_total += sup.aggregate_goodput_mbps;
        let handoffs: u64 = sup.supervisor.iter().map(|r| r.stats.handoffs).sum();
        let mut verdict = "";
        if stalled(&sup) || stalled(&tcp) {
            verdict = "  <-- FAIL: flow ended stalled";
            failed = true;
        } else if sup.roams == 0 || tcp.roams == 0 {
            verdict = "  <-- FAIL: no handoff completed";
            failed = true;
        } else if handoffs != sup.roams {
            verdict = "  <-- FAIL: supervisor lost track of a handoff";
            failed = true;
        }
        let final_min = sup
            .flow_goodput_final_mbps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        println!(
            "{seed:>6} {:>8.2} M {:>8.2} M {final_min:>8.2} M {:>6} {handoffs:>9}  {}{verdict}",
            tcp.aggregate_goodput_mbps,
            sup.aggregate_goodput_mbps,
            sup.roams,
            supervisor_line(&sup.supervisor[0]),
        );
        json_rows.push(format!(
            "{{\"seed\":{seed},\"tcp_goodput_mbps\":{:.3},\
             \"sup_goodput_mbps\":{:.3},\"final_window_min_mbps\":{final_min:.3},\
             \"roams\":{},\"handoffs\":{handoffs},\"supervisor\":{}}}",
            tcp.aggregate_goodput_mbps,
            sup.aggregate_goodput_mbps,
            sup.roams,
            supervisor_json(&sup.supervisor[0]),
        ));
    }
    println!(
        "aggregate: plain TCP {tcp_total:.2} M, supervised HACK {sup_total:.2} M ({})",
        if sup_total >= tcp_total {
            "HACK's edge survived the handoffs"
        } else {
            "WARNING: supervised HACK behind plain TCP on this seed set"
        }
    );

    // Sharded determinism: the same roaming world (cross-cell handoffs
    // couple all three cells into one roam-closure shard) must produce
    // byte-identical digests at 1 and 4 worker threads.
    let cfg = roam_world(seeds[0], ms, HackMode::MoreData, true);
    let at = |threads: usize| DenseOptions {
        threads,
        epoch: SimDuration::from_millis(10),
        digests: true,
    };
    let serial = run_dense(&cfg, &at(1));
    let parallel = run_dense(&cfg, &at(4));
    let mut verdict = "ok";
    if serial.exchange_digest != parallel.exchange_digest {
        verdict = "FAIL: exchange ledger diverged";
    } else if serial
        .shards
        .iter()
        .zip(&parallel.shards)
        .any(|(s, p)| s.digest != p.digest)
    {
        verdict = "FAIL: shard trace digests diverged";
    } else if serial.flow_goodput_mbps != parallel.flow_goodput_mbps {
        verdict = "FAIL: merged goodputs diverged";
    }
    println!(
        "sharded 1 vs 4 threads: {} shards, {:.1} Mbps aggregate — {verdict}",
        serial.shards.len(),
        serial.aggregate_goodput_mbps
    );
    failed |= verdict != "ok";

    if opts.json {
        println!("{{\"roam_chaos\":[{}]}}", json_rows.join(","));
    }
    if failed {
        std::process::exit(1);
    }
    println!("roam chaos OK");
}

// ----------------------------------------------------------------------
// Figure 10: clients sweep on 802.11n
// ----------------------------------------------------------------------

fn fig10(opts: &Opts) {
    banner("Figure 10: 802.11n aggregate goodput (Mbps) vs number of clients");
    println!("(paper: UDP ≈ flat; HACK-MoreData +15%→+22% over TCP; Opportunistic ≈ TCP)");
    println!(
        "{:>8} {:>16} {:>18} {:>16} {:>16}",
        "clients", "UDP", "TCP/HACK MD", "TCP/Opp. HACK", "TCP/802.11n"
    );
    for n in [1usize, 2, 4, 10] {
        let mut row = format!("{n:>8}");
        for (mode, udp) in [
            (HackMode::Disabled, true),
            (HackMode::MoreData, false),
            (HackMode::Opportunistic, false),
            (HackMode::Disabled, false),
        ] {
            let mut cfg = ScenarioBuilder::dot11n_download(150, n, mode).build();
            // Duration = staggered starts + warmup + a full measurement
            // window, so the steady-state window is the same length for
            // every client count.
            cfg.stagger = SimDuration::from_millis(200);
            cfg.duration =
                cfg.stagger * (n as u64) + cfg.warmup + SimDuration::from_secs(opts.secs);
            if udp {
                cfg = cfg.with_udp();
            }
            let mr = run_seeds(&cfg, opts.seeds);
            let w = if mode == HackMode::MoreData && !udp {
                18
            } else {
                16
            };
            row.push_str(&format!(
                " {:>w$}",
                mr.aggregate_goodput().to_string(),
                w = w
            ));
        }
        println!("{row}");
    }
}

// ----------------------------------------------------------------------
// Figures 11 and 12: SNR sweep and theory-vs-simulation
// ----------------------------------------------------------------------

fn snr_run(rate: u64, snr_db: f64, mode: HackMode, opts: &Opts) -> f64 {
    // Skip rates hopelessly beyond their sensitivity: they deliver ~0.
    let r = PhyRate::ht(rate);
    if snr_db < r.min_snr_db() - 4.0 {
        return 0.0;
    }
    let mut ch = Channel::indoor();
    ch.place(StationId(0), 0.0, 0.0);
    let d = ch.distance_for_snr(snr_db);
    let mut cfg = ScenarioBuilder::dot11n_download(rate, 1, mode).build();
    cfg.loss = LossConfig::SnrDistance(d);
    cfg.duration = SimDuration::from_secs(opts.secs.min(6));
    let mr = run_seeds(&cfg, opts.seeds.min(3));
    // Figure 11 averages goodput including slow start.
    mr.flow_goodput_full(0).mean()
}

fn fig11(opts: &Opts) {
    banner("Figure 11: goodput envelope vs SNR (802.11n rates), incl. slow start");
    println!("(paper: HACK improves the envelope by ~12.6% on average across SNRs)");
    let snrs: Vec<f64> = (0..=10).map(|i| f64::from(i) * 3.0).collect();
    print!("{:>6}", "SNR");
    for &r in &DOT11N_HT40_SGI_MBPS {
        print!(" {r:>6}");
    }
    println!(" {:>9} {:>9} {:>7}", "envT", "envH", "gain");
    let mut gains = Vec::new();
    for &snr in &snrs {
        let mut row = format!("{snr:>6.1}");
        let mut env_t: f64 = 0.0;
        let mut env_h: f64 = 0.0;
        for &rate in &DOT11N_HT40_SGI_MBPS {
            let h = snr_run(rate, snr, HackMode::MoreData, opts);
            let t = snr_run(rate, snr, HackMode::Disabled, opts);
            env_h = env_h.max(h);
            env_t = env_t.max(t);
            row.push_str(&format!(" {h:>6.1}"));
        }
        let gain = if env_t > 1.0 {
            (env_h / env_t - 1.0) * 100.0
        } else {
            0.0
        };
        if env_t > 1.0 {
            gains.push(gain);
        }
        println!("{row} {env_t:>9.1} {env_h:>9.1} {gain:>6.1}%");
    }
    if !gains.is_empty() {
        println!(
            "average envelope improvement: {:.1}%",
            gains.iter().sum::<f64>() / gains.len() as f64
        );
    }
    println!("(per-rate columns show TCP/HACK; envT/envH are the best-rate envelopes)");
}

fn fig12(opts: &Opts) {
    banner("Figure 12: theoretical vs simulated goodput vs 802.11n rate (Mbps)");
    println!("(paper: simulated < theoretical; simulated HACK gain 14% at 150 vs 7% predicted)");
    let m = CapacityModel::dot11n();
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "rate", "theor.TCP", "sim.TCP", "theor.HACK", "sim.HACK", "th.gain", "sim.gain"
    );
    for &rate in &DOT11N_HT40_SGI_MBPS {
        let r = PhyRate::ht(rate);
        let tt = m.goodput_dot11n(r, Protocol::Tcp);
        let th = m.goodput_dot11n(r, Protocol::TcpHack);
        let mut cfg_t = ScenarioBuilder::dot11n_download(rate, 1, HackMode::Disabled).build();
        let mut cfg_h = ScenarioBuilder::dot11n_download(rate, 1, HackMode::MoreData).build();
        cfg_t.duration = SimDuration::from_secs(opts.secs.min(6));
        cfg_h.duration = SimDuration::from_secs(opts.secs.min(6));
        let st = run_seeds(&cfg_t, opts.seeds.min(3))
            .aggregate_goodput()
            .mean();
        let sh = run_seeds(&cfg_h, opts.seeds.min(3))
            .aggregate_goodput()
            .mean();
        println!(
            "{rate:>6} {tt:>10.1} {st:>10.1} {th:>10.1} {sh:>10.1} {:>8.1}% {:>8.1}%",
            (th / tt - 1.0) * 100.0,
            (sh / st - 1.0) * 100.0
        );
    }
}

// ----------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ----------------------------------------------------------------------

fn ablate_timer(opts: &Opts) {
    banner("Ablation: explicit-timer HACK vs MORE DATA (802.11n, 1 client)");
    println!("(left: server behind the wired backhaul — data trickles in and every hold");
    println!(" gets a ride, so the timer looks harmless; right: sender on the AP with a");
    println!(" 32 KB receive window — the whole window lands in one batch, the queue drains,");
    println!(" and held ACKs stall the ACK clock: the §3.2 pathology)");
    for (label, mode) in [
        ("Disabled", HackMode::Disabled),
        (
            "ExplicitTimer(5ms)",
            HackMode::ExplicitTimer(SimDuration::from_millis(5)),
        ),
        (
            "ExplicitTimer(20ms)",
            HackMode::ExplicitTimer(SimDuration::from_millis(20)),
        ),
        (
            "ExplicitTimer(100ms)",
            HackMode::ExplicitTimer(SimDuration::from_millis(100)),
        ),
        ("MoreData", HackMode::MoreData),
    ] {
        let mut cfg = ScenarioBuilder::dot11n_download(150, 1, mode).build();
        cfg.duration = SimDuration::from_secs(opts.secs);
        let backhaul = run_seeds(&cfg, opts.seeds.min(3));
        let mut stall = cfg.clone();
        stall.server_at_ap = true;
        stall.rcv_window = 32 * 1024;
        let local = run_seeds(&stall, opts.seeds.min(3));
        println!(
            "{label:<22} backhaul {:>16}   local/32KB {:>16}",
            backhaul.aggregate_goodput().to_string(),
            local.aggregate_goodput().to_string()
        );
    }
}

fn ablate_delack(opts: &Opts) {
    banner("Ablation: TCP delayed ACK on/off (802.11n, 1 client)");
    for (label, mode) in [
        ("TCP/802.11n", HackMode::Disabled),
        ("TCP/HACK", HackMode::MoreData),
    ] {
        for delack in [true, false] {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 1, mode).build();
            cfg.delayed_ack = delack;
            cfg.duration = SimDuration::from_secs(opts.secs);
            let mr = run_seeds(&cfg, opts.seeds.min(3));
            println!("{label:<14} delack={delack:<5} {}", mr.aggregate_goodput());
        }
    }
}

fn ablate_sync(opts: &Opts) {
    banner("Ablation: §3.4 SYNC retention on/off at marginal SNR (802.11n)");
    println!("(SNR-driven loss hits Block ACKs too, so BAR exhaustion and SYNC engage)");
    // Just above the 15 Mbps sensitivity: at this SNR the 12 Mbps basic
    // rate is itself marginal, so Block ACKs (especially blob-extended
    // ones) die often enough for the retention machinery to matter.
    let rate = 15u64;
    let mut ch = Channel::indoor();
    ch.place(StationId(0), 0.0, 0.0);
    let d = ch.distance_for_snr(PhyRate::ht(rate).min_snr_db() + 2.2);
    for disable in [false, true] {
        let mut cfg = ScenarioBuilder::dot11n_download(rate, 1, HackMode::MoreData).build();
        cfg.loss = LossConfig::SnrDistance(d);
        cfg.disable_sync = disable;
        // A tight retry budget makes BAR exhaustion (the SYNC trigger)
        // reachable within a short run — with the standard limit of 7 it
        // needs 8 consecutive control-frame losses and essentially never
        // fires, which is itself a (reassuring) finding.
        cfg.retry_limit = Some(1);
        cfg.duration = SimDuration::from_secs(opts.secs);
        let mr = run_seeds(&cfg, opts.seeds);
        let crc: u64 = mr.runs.iter().map(|r| r.decompressor.crc_failures).sum();
        let dups: u64 = mr.runs.iter().map(|r| r.decompressor.duplicates).sum();
        let to: u64 = mr.runs.iter().map(|r| r.sender_tcp[0].timeouts).sum();
        let bars: u64 = mr.runs.iter().map(|r| r.mac[0].bars_exhausted.get()).sum();
        println!(
            "sync={:<5} goodput {}  BAR exhaustions {}  blob dups {}  CRC failures {}  TCP timeouts {}",
            !disable,
            mr.aggregate_goodput(),
            bars,
            dups,
            crc,
            to
        );
    }
}

fn ablate_txop(opts: &Opts) {
    banner("Ablation: TXOP limit sweep (802.11n 150 Mbps, 1 client)");
    println!("(§5: shorter TXOPs cost efficiency; HACK claws some back)");
    for ms in [1u64, 2, 4, 8] {
        let mut row = format!("TXOP {ms:>2} ms ");
        for (label, mode) in [("TCP", HackMode::Disabled), ("HACK", HackMode::MoreData)] {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 1, mode).build();
            cfg.txop_limit = Some(SimDuration::from_millis(ms));
            cfg.duration = SimDuration::from_secs(opts.secs);
            let mr = run_seeds(&cfg, opts.seeds.min(3));
            row.push_str(&format!(" {label} {}", mr.aggregate_goodput()));
        }
        println!("{row}");
    }
}
