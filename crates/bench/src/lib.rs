//! # hack-bench — experiment harness for the HACK paper reproduction
//!
//! Helpers shared by the `experiments` binary: multi-seed scenario
//! execution (the paper averages five runs per data point) and small
//! table-formatting utilities. The per-figure logic lives in
//! `src/bin/experiments.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;

pub use runner::{run_seeds, set_trace_base, MultiRun};
