//! # hack-bench — experiment harness for the HACK paper reproduction
//!
//! Helpers shared by the `experiments` binary: multi-seed scenario
//! execution (the paper averages five runs per data point, run as a
//! one-cell `hack-campaign` sweep) and the shared command-line flag
//! parser. The per-figure logic lives in `src/bin/experiments.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod runner;

pub use cli::{CommonOpts, USAGE};
pub use runner::{run_seeds, set_trace_base, MultiRun};
