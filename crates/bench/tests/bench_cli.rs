//! CLI contract tests for the `bench` binary: the `--help` snapshot,
//! flag-parsing exit codes, and the `--check` regression gate's
//! pass/fail behaviour against a freshly written JSON file.

use std::process::Command;

fn bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench"))
}

#[test]
fn help_output_matches_snapshot() {
    let out = bench().arg("--help").output().expect("spawn");
    assert!(out.status.success(), "--help must exit 0");
    let expected = include_str!("snapshots/bench-help.txt");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "help text drifted from the snapshot; regenerate with\n  \
         cargo run -p hack-bench --bin bench -- --help \
         > crates/bench/tests/snapshots/bench-help.txt"
    );
    assert!(out.stderr.is_empty(), "--help must not write to stderr");
}

#[test]
fn short_help_flag_works_too() {
    let long = bench().arg("--help").output().expect("spawn");
    let short = bench().arg("-h").output().expect("spawn");
    assert!(short.status.success());
    assert_eq!(long.stdout, short.stdout);
}

#[test]
fn unknown_flag_exits_2_with_a_pointer_to_help() {
    let out = bench().arg("--no-such-flag").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--no-such-flag"), "stderr: {err}");
    assert!(
        err.contains("--help"),
        "stderr should point at --help: {err}"
    );
}

#[test]
fn missing_flag_value_exits_2() {
    for flag in ["--json", "--check", "--tolerance"] {
        let out = bench().arg(flag).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag} without a value");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(flag),
            "stderr should name the offending flag {flag}"
        );
    }
}

/// A quick run checked against its own freshly written results must
/// pass, and checked against an absurdly fast fabricated baseline must
/// fail — the regression gate in both directions. One test so the
/// (slow, debug-profile) bench binary runs only twice.
#[test]
fn check_gate_passes_self_and_fails_fabricated_baseline() {
    let dir = std::env::temp_dir().join(format!("bench-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let json = dir.join("hotpath.json");

    let out = bench()
        .args(["--quick", "--json"])
        .arg(&json)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "--quick --json run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Self-check: generous tolerance absorbs run-to-run noise.
    let out = bench()
        .args(["--quick", "--tolerance", "400", "--check"])
        .arg(&json)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "self-check should pass: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Fabricate an impossible baseline: every stage at 0.001 ns/op and
    // zero allocs. Any real run regresses against it.
    let text = std::fs::read_to_string(&json).expect("read json");
    let fabricated = rewrite_field(
        &rewrite_field(&text, "\"ns_per_op\": ", "0.001"),
        "\"allocs_per_op\": ",
        "-1.0",
    );
    let fast = dir.join("impossible.json");
    std::fs::write(&fast, fabricated).expect("write fabricated");

    let out = bench()
        .args(["--quick", "--check"])
        .arg(&fast)
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(1),
        "check against an impossible baseline must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("check FAIL"),
        "gate stderr should flag the regression: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Replace every numeric value following `key` with `value` — enough
/// JSON surgery to fabricate a baseline without a parser dependency.
fn rewrite_field(text: &str, key: &str, value: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(key) {
        let after = pos + key.len();
        out.push_str(&rest[..after]);
        out.push_str(value);
        // Skip the old numeric literal (digits, sign, dot, exponent).
        let tail = &rest[after..];
        let skip = tail
            .char_indices()
            .find(|(_, c)| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .map(|(i, _)| i)
            .unwrap_or(tail.len());
        rest = &tail[skip..];
    }
    out.push_str(rest);
    out
}
