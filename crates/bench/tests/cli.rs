//! CLI contract tests for the `experiments` binary: the `--help`
//! snapshot and flag-parsing exit codes.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn help_output_matches_snapshot() {
    let out = experiments().arg("--help").output().expect("spawn");
    assert!(out.status.success(), "--help must exit 0");
    let expected = include_str!("snapshots/experiments-help.txt");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "help text drifted from the snapshot; regenerate with\n  \
         cargo run -p hack-bench --bin experiments -- --help \
         > crates/bench/tests/snapshots/experiments-help.txt"
    );
    assert!(out.stderr.is_empty(), "--help must not write to stderr");
}

#[test]
fn short_help_flag_works_too() {
    let long = experiments().arg("--help").output().expect("spawn");
    let short = experiments().arg("-h").output().expect("spawn");
    assert!(short.status.success());
    assert_eq!(long.stdout, short.stdout);
}

#[test]
fn unknown_flag_exits_2_with_a_pointer_to_help() {
    let out = experiments().arg("--no-such-flag").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--no-such-flag"), "stderr: {err}");
    assert!(
        err.contains("--help"),
        "stderr should point at --help: {err}"
    );
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = experiments().arg("no-such-cmd").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_flag_value_exits_2() {
    let out = experiments().arg("--trace").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}
