//! Micro-benchmark: ROHC-style compression and decompression of TCP
//! ACKs — the per-ACK work HACK adds to the driver hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use hack_rohc::{build_blob, Compressor, Decompressor};
use hack_tcp::{flags, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};

fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 2),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq: TcpSeq(7777),
            ack: TcpSeq(ackno),
            flags: flags::ACK,
            window: 1024,
            options: vec![TcpOption::Timestamps {
                tsval: ts,
                tsecr: ts.wrapping_sub(3),
            }]
            .into(),
            payload_len: 0,
        }),
    }
}

fn bench_rohc(c: &mut Criterion) {
    c.bench_function("compress_one_ack", |b| {
        let mut comp = Compressor::new();
        comp.observe_native(&ack(1000, 1, 10));
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let p = ack(
                1000u32.wrapping_add(i.wrapping_mul(2920)),
                1u16.wrapping_add(i as u16),
                10u32.wrapping_add(i),
            );
            let seg = comp.compress(&p).expect("compressible");
            // Steady state: the driver confirms each ACK after its ride,
            // keeping the floor (and field widths) tight.
            comp.confirm(&p);
            seg
        });
    });

    c.bench_function("decompress_blob_of_21", |b| {
        // A typical Block ACK blob: 21 delayed ACKs from a 42-MPDU batch.
        let mut comp = Compressor::new();
        let mut dec_template = Decompressor::new();
        let seed = ack(1000, 1, 10);
        comp.observe_native(&seed);
        dec_template.observe_native(&seed);
        let segs: Vec<_> = (1..=21u32)
            .map(|i| {
                comp.compress(&ack(1000 + i * 2920, 1 + i as u16, 10 + i))
                    .unwrap()
            })
            .collect();
        let blob = build_blob(&segs);
        b.iter(|| {
            // Fresh decompressor per iteration so MSN dedup never trips.
            let mut d = Decompressor::new();
            d.observe_native(&seed);
            let res = d.decompress_blob(&blob);
            assert_eq!(res.packets.len(), 21);
            res.packets.len()
        });
    });

    c.bench_function("header_serialize_52B", |b| {
        let p = ack(123_456, 7, 99);
        b.iter(|| p.header_bytes());
    });

    c.bench_function("md5_cid", |b| {
        let t = ack(1, 1, 1).five_tuple();
        let bytes = t.bytes();
        b.iter(|| hack_rohc::cid_for_tuple(&bytes));
    });
}

criterion_group!(benches, bench_rohc);
criterion_main!(benches);
