//! Macro-benchmark: whole-network simulation throughput (simulated
//! seconds per wall-clock second) for the paper's main scenarios.

use criterion::{criterion_group, criterion_main, Criterion};
use hack_core::{run, HackMode, ScenarioBuilder};
use hack_sim::SimDuration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);

    g.bench_function("dot11n_1client_stock_500ms", |b| {
        b.iter(|| {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
            cfg.duration = SimDuration::from_millis(500);
            run(cfg).ppdus
        });
    });

    g.bench_function("dot11n_1client_hack_500ms", |b| {
        b.iter(|| {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
            cfg.duration = SimDuration::from_millis(500);
            run(cfg).ppdus
        });
    });

    g.bench_function("dot11n_10clients_hack_500ms", |b| {
        b.iter(|| {
            let mut cfg = ScenarioBuilder::dot11n_download(150, 10, HackMode::MoreData).build();
            cfg.duration = SimDuration::from_millis(500);
            run(cfg).ppdus
        });
    });

    g.bench_function("sora_dot11a_hack_500ms", |b| {
        b.iter(|| {
            let mut cfg = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
            cfg.duration = SimDuration::from_millis(500);
            run(cfg).ppdus
        });
    });

    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
