//! Micro-benchmark: the discrete-event queue (push/pop throughput),
//! which bounds overall simulation speed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hack_sim::{EventQueue, SimRng, SimTime};

fn bench_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::new(42);
        let times: Vec<u64> = (0..10_000)
            .map(|_| u64::from(rng.uniform(1 << 30)))
            .collect();
        b.iter_batched(
            || times.clone(),
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut n = 0usize;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("event_queue_interleaved_1k", |b| {
        let mut rng = SimRng::new(7);
        let deltas: Vec<u64> = (0..1_000).map(|_| u64::from(rng.uniform(10_000))).collect();
        b.iter_batched(
            || deltas.clone(),
            |deltas| {
                let mut q = EventQueue::new();
                let mut now = SimTime::ZERO;
                // Steady-state pattern: each pop schedules two pushes.
                q.push(now, 0u64);
                for d in deltas {
                    if let Some((t, _)) = q.pop() {
                        now = t;
                        q.push(now + hack_sim::SimDuration::from_nanos(d), d);
                    }
                }
                q.len()
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
