//! Micro-benchmark: MAC-layer A-MPDU batch building and Block ACK
//! resolution — the per-exchange work at an aggregating station.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hack_mac::{AckBitmap, DestQueue, MacConfig, Msdu, SeqNum};
use hack_phy::{PhyRate, StationId};

#[derive(Debug, Clone)]
struct Pkt(u32);
impl Msdu for Pkt {
    fn wire_len(&self) -> u32 {
        self.0
    }
}

fn bench_mac(c: &mut Criterion) {
    let cfg = MacConfig::dot11n(PhyRate::ht(150));

    c.bench_function("build_42_mpdu_batch", |b| {
        b.iter_batched(
            || {
                let mut q = DestQueue::new(StationId(1));
                for _ in 0..100 {
                    q.enqueue(Pkt(1512));
                }
                q
            },
            |mut q| {
                let batch = q.build_batch(StationId(0), &cfg);
                assert_eq!(batch.len(), 42);
                batch.len()
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("resolve_block_ack_42", |b| {
        b.iter_batched(
            || {
                let mut q = DestQueue::new(StationId(1));
                for _ in 0..42 {
                    q.enqueue(Pkt(1512));
                }
                let batch = q.build_batch(StationId(0), &cfg);
                let mut bm = AckBitmap::new(SeqNum::new(0));
                for m in &batch {
                    bm.set(m.seq);
                }
                (q, bm)
            },
            |(mut q, bm)| {
                let res = q.on_block_ack(&bm, 7);
                assert_eq!(res.acked, 42);
                res.acked
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("ampdu_wire_len_42", |b| {
        let lens = vec![1550u32; 42];
        b.iter(|| hack_mac::ampdu_wire_len(&lens));
    });
}

criterion_group!(benches, bench_mac);
criterion_main!(benches);
