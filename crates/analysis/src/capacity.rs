//! Per-acquisition overhead accounting for 802.11a DCF and 802.11n EDCA.

use hack_mac::frame::{ampdu_wire_len, sizes};
use hack_phy::{MacTimings, PhyRate};
use hack_sim::SimDuration;

/// Which protocol stack the model evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Stock TCP: every delayed ACK costs a medium acquisition.
    Tcp,
    /// TCP/HACK: TCP ACKs ride the link-layer acknowledgments.
    TcpHack,
    /// Unidirectional UDP: the capacity baseline.
    Udp,
}

/// The analytical capacity model.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    /// MAC timing parameters (802.11a DCF or 802.11n EDCA).
    pub timings: MacTimings,
    /// TCP maximum segment size in bytes.
    pub mss: u32,
    /// TCP/IP header bytes on a data segment (with timestamps: 52).
    pub tcp_header: u32,
    /// Data segments per TCP ACK (2 = delayed ACK).
    pub segs_per_ack: u32,
    /// Bytes one compressed TCP ACK adds to a link-layer ACK.
    pub hack_seg_bytes: u32,
    /// Extra LL ACK turnaround latency beyond SIFS (SoRa: ~37 µs;
    /// commercial NICs: 10–13 µs; ideal: 0).
    pub ll_ack_extra: SimDuration,
}

impl CapacityModel {
    /// The paper's 802.11a model (DCF, single MPDUs).
    pub fn dot11a() -> Self {
        CapacityModel {
            timings: MacTimings::dot11a(),
            mss: 1460,
            tcp_header: 52,
            segs_per_ack: 2,
            hack_seg_bytes: 9,
            ll_ack_extra: SimDuration::ZERO,
        }
    }

    /// The paper's 802.11n model (EDCA, A-MPDU aggregation).
    pub fn dot11n() -> Self {
        CapacityModel {
            timings: MacTimings::dot11n(),
            mss: 1460,
            tcp_header: 52,
            segs_per_ack: 2,
            hack_seg_bytes: 9,
            ll_ack_extra: SimDuration::ZERO,
        }
    }

    /// Average pre-transmission idle period: AIFS/DIFS plus mean backoff.
    fn acquisition(&self) -> SimDuration {
        self.timings.aifs() + self.timings.mean_backoff()
    }

    /// Airtime of a control response (ACK/Block ACK) of `bytes` at the
    /// basic rate for `rate`, plus any configured LL ACK latency.
    fn response_time(&self, rate: PhyRate, bytes: u32) -> SimDuration {
        self.timings.sifs
            + self.ll_ack_extra
            + rate.basic_response_rate().ppdu_duration(u64::from(bytes))
    }

    /// MPDU length of a TCP data segment on the wire: payload plus the
    /// TCP/IP headers (`tcp_header` covers IP + TCP + options) plus MAC
    /// framing.
    fn data_mpdu_len(&self) -> u32 {
        // IP packet = mss + tcp_header (tcp_header covers IP+TCP+options)
        self.mss + self.tcp_header + sizes::DATA_OVERHEAD
    }

    fn tcp_ack_mpdu_len(&self) -> u32 {
        self.tcp_header + sizes::DATA_OVERHEAD
    }

    // ------------------------------------------------------------------
    // 802.11a (single MPDU per acquisition)
    // ------------------------------------------------------------------

    /// One full single-MPDU exchange: acquisition + data + SIFS + ACK.
    fn dot11a_exchange(&self, rate: PhyRate, mpdu_bytes: u32) -> SimDuration {
        self.acquisition()
            + rate.ppdu_duration(u64::from(mpdu_bytes))
            + self.response_time(rate, sizes::ACK)
    }

    /// Predicted application goodput (Mbps) on 802.11a.
    pub fn goodput_dot11a(&self, rate: PhyRate, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::Udp => {
                // 1500-byte IP datagrams (1472 payload).
                let t = self.dot11a_exchange(rate, 1500 + sizes::DATA_OVERHEAD);
                mbps(1472, t)
            }
            Protocol::Tcp => {
                // Per segs_per_ack data segments: that many data
                // exchanges plus one TCP ACK exchange.
                let data = self.dot11a_exchange(rate, self.data_mpdu_len());
                let ack = self.dot11a_exchange(rate, self.tcp_ack_mpdu_len());
                let total = data * u64::from(self.segs_per_ack) + ack;
                mbps(u64::from(self.mss) * u64::from(self.segs_per_ack), total)
            }
            Protocol::TcpHack => {
                // Data exchanges only; one LL ACK per segs_per_ack
                // carries the compressed TCP ACK.
                let plain = self.dot11a_exchange(rate, self.data_mpdu_len());
                let augmented = self.acquisition()
                    + rate.ppdu_duration(u64::from(self.data_mpdu_len()))
                    + self.response_time(rate, sizes::ACK + 2 + self.hack_seg_bytes);
                let total = plain * u64::from(self.segs_per_ack - 1) + augmented;
                mbps(u64::from(self.mss) * u64::from(self.segs_per_ack), total)
            }
        }
    }

    // ------------------------------------------------------------------
    // 802.11n (A-MPDU per acquisition)
    // ------------------------------------------------------------------

    /// One A-MPDU exchange of `lens` MPDUs answered by a Block ACK of
    /// `ba_bytes`.
    fn dot11n_exchange(&self, rate: PhyRate, lens: &[u32], ba_bytes: u32) -> SimDuration {
        self.acquisition()
            + rate.ppdu_duration(u64::from(ampdu_wire_len(lens)))
            + self.response_time(rate, ba_bytes)
    }

    /// Predicted application goodput (Mbps) on 802.11n with maximal
    /// aggregation.
    pub fn goodput_dot11n(&self, rate: PhyRate, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::Udp => {
                let n = ampdu_frames(rate, 1500 + sizes::DATA_OVERHEAD, &self.timings);
                let lens = vec![1500 + sizes::DATA_OVERHEAD; n];
                let t = self.dot11n_exchange(rate, &lens, sizes::BLOCK_ACK);
                mbps(1472 * n as u64, t)
            }
            Protocol::Tcp => {
                let n = ampdu_frames(rate, self.data_mpdu_len(), &self.timings);
                let data_lens = vec![self.data_mpdu_len(); n];
                let n_acks = (n as u32).div_ceil(self.segs_per_ack) as usize;
                let ack_lens = vec![self.tcp_ack_mpdu_len(); n_acks];
                let t = self.dot11n_exchange(rate, &data_lens, sizes::BLOCK_ACK)
                    + self.dot11n_exchange(rate, &ack_lens, sizes::BLOCK_ACK);
                mbps(u64::from(self.mss) * n as u64, t)
            }
            Protocol::TcpHack => {
                let n = ampdu_frames(rate, self.data_mpdu_len(), &self.timings);
                let data_lens = vec![self.data_mpdu_len(); n];
                let n_acks = (n as u32).div_ceil(self.segs_per_ack);
                let ba = sizes::BLOCK_ACK + 2 + n_acks * self.hack_seg_bytes;
                let t = self.dot11n_exchange(rate, &data_lens, ba);
                mbps(u64::from(self.mss) * n as u64, t)
            }
        }
    }
}

/// The number of MPDUs of `mpdu_len` bytes that fit one A-MPDU under the
/// 64-frame window, the 64 KB aggregate bound, and the TXOP airtime
/// limit — the same arithmetic the MAC's batch builder applies.
pub fn ampdu_frames(rate: PhyRate, mpdu_len: u32, timings: &MacTimings) -> usize {
    let mut n = 0usize;
    let mut lens = Vec::new();
    while n < 64 {
        lens.push(mpdu_len);
        let agg = ampdu_wire_len(&lens);
        let fits = agg <= 65_535 && rate.ppdu_duration(u64::from(agg)) <= timings.txop_limit;
        if !fits {
            break;
        }
        n += 1;
    }
    n.max(1)
}

fn mbps(payload_bytes: u64, t: SimDuration) -> f64 {
    (payload_bytes * 8) as f64 / t.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_dot11a_54_matches_paper_ballpark() {
        // The paper: "In an ideal 802.11 MAC, UDP would achieve
        // 30.2 Mbps" at 54 Mbps with LL ACKs enabled.
        let m = CapacityModel::dot11a();
        let g = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Udp);
        assert!((28.0..31.5).contains(&g), "UDP@54 = {g:.2} Mbps");
    }

    #[test]
    fn tcp_dot11a_54_matches_ns3_crossval() {
        // §4.2 cross-validation: lossless-ish ns-3 TCP/802.11a at 54 Mbps
        // ≈ 22.4 Mbps; the pure analysis (no collisions, no TCP
        // dynamics) sits slightly above it.
        let m = CapacityModel::dot11a();
        let g = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Tcp);
        assert!((21.5..24.5).contains(&g), "TCP@54 = {g:.2} Mbps");
    }

    #[test]
    fn hack_dot11a_54_approaches_udp() {
        let m = CapacityModel::dot11a();
        let udp = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Udp);
        let hack = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::TcpHack);
        let tcp = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Tcp);
        assert!(hack > tcp);
        assert!(hack < udp);
        // ns-3 simulated TCP/HACK at 54 Mbps ≈ 28 Mbps.
        assert!((26.0..30.0).contains(&hack), "HACK@54 = {hack:.2}");
    }

    #[test]
    fn fig1a_shape_hack_gain_grows_with_rate() {
        let m = CapacityModel::dot11a();
        let gain = |mbps: u64| {
            let r = PhyRate::dot11a(mbps);
            m.goodput_dot11a(r, Protocol::TcpHack) / m.goodput_dot11a(r, Protocol::Tcp)
        };
        assert!(gain(54) > gain(24));
        assert!(gain(24) > gain(6));
        assert!(gain(6) > 1.0);
    }

    #[test]
    fn batch_sizes_match_the_macs() {
        let t = MacTimings::dot11n();
        // 1512-byte IP data + 38 MAC overhead = 1550-byte MPDUs: 42 fill
        // 64 KB at 150 Mbps.
        assert_eq!(ampdu_frames(PhyRate::ht(150), 1550, &t), 42);
        // At 15 Mbps the 4 ms TXOP binds: only a handful fit.
        let n15 = ampdu_frames(PhyRate::ht(15), 1550, &t);
        assert!((3..=5).contains(&n15), "n15 = {n15}");
        // Tiny MPDUs: the 64-frame window binds.
        assert_eq!(ampdu_frames(PhyRate::ht(150), 90, &t), 64);
    }

    #[test]
    fn fig1b_anchors() {
        let m = CapacityModel::dot11n();
        // At 150 Mbps the paper's analysis predicts ~7% HACK gain
        // (Figure 12 discussion).
        let tcp = m.goodput_dot11n(PhyRate::ht(150), Protocol::Tcp);
        let hack = m.goodput_dot11n(PhyRate::ht(150), Protocol::TcpHack);
        let gain = hack / tcp - 1.0;
        assert!((100.0..125.0).contains(&tcp), "TCP@150 = {tcp:.1}");
        assert!(
            (0.04..0.12).contains(&gain),
            "gain@150 = {:.1}%",
            gain * 100.0
        );
        // At 600 Mbps the gain approaches ~20%.
        let tcp6 = m.goodput_dot11n(PhyRate::ht(600), Protocol::Tcp);
        let hack6 = m.goodput_dot11n(PhyRate::ht(600), Protocol::TcpHack);
        let gain6 = hack6 / tcp6 - 1.0;
        assert!(
            (0.10..0.30).contains(&gain6),
            "gain@600 = {:.1}%",
            gain6 * 100.0
        );
        assert!(gain6 > gain, "gain grows with rate");
    }

    #[test]
    fn udp_always_upper_bounds_tcp_protocols() {
        let m = CapacityModel::dot11n();
        for mbps in [15u64, 30, 45, 60, 90, 120, 135, 150] {
            let r = PhyRate::ht(mbps);
            let udp = m.goodput_dot11n(r, Protocol::Udp);
            let hack = m.goodput_dot11n(r, Protocol::TcpHack);
            let tcp = m.goodput_dot11n(r, Protocol::Tcp);
            assert!(
                udp > hack && hack > tcp,
                "at {mbps}: {udp:.1}/{hack:.1}/{tcp:.1}"
            );
        }
    }

    #[test]
    fn sora_ll_ack_delay_reduces_capacity() {
        let mut m = CapacityModel::dot11a();
        let ideal = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Udp);
        m.ll_ack_extra = SimDuration::from_micros(37);
        let sora = m.goodput_dot11a(PhyRate::dot11a(54), Protocol::Udp);
        // The paper: SoRa's LL ACK delays alone reduce attainable UDP
        // throughput from 30.2 to 28.1 Mbps (~7%).
        let loss = 1.0 - sora / ideal;
        assert!((0.04..0.12).contains(&loss), "loss = {:.1}%", loss * 100.0);
    }

    #[test]
    fn goodput_monotone_in_phy_rate() {
        let m = CapacityModel::dot11n();
        let mut last = 0.0;
        for mbps in [15u64, 30, 45, 60, 90, 120, 135, 150, 300, 450, 600] {
            let g = m.goodput_dot11n(PhyRate::ht(mbps), Protocol::TcpHack);
            assert!(g > last, "{mbps}: {g:.1} ≤ {last:.1}");
            last = g;
        }
    }
}
