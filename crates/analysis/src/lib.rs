//! # hack-analysis — closed-form 802.11 MAC capacity models
//!
//! The paper's §2.1 analysis: predicted TCP goodput as a function of
//! physical-layer bit-rate for stock 802.11a/n, TCP/HACK, and
//! unidirectional UDP, from per-medium-acquisition overhead accounting.
//! These models generate Figure 1(a), Figure 1(b), and the theoretical
//! curves of Figure 12.
//!
//! Assumptions mirror the paper's: lossless links, no collisions or
//! retries, delayed ACK (one TCP ACK per two data segments), senders
//! always backlogged, the largest A-MPDU permitted by the 64 KB bound or
//! the 4 ms transmit-opportunity limit, and mean backoff of CWmin/2
//! slots per acquisition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;

pub use capacity::{ampdu_frames, CapacityModel, Protocol};
