//! Sinks and the cheap cloneable handle the protocol crates carry.
//!
//! The design constraint is the one stated in `hack-sim`'s tracer:
//! experiments run millions of events, so tracing must cost nothing
//! when off. [`TraceHandle`] is an `Option<Arc<dyn TraceSink>>`; a
//! disabled handle is `None` and every emit is a single branch. The
//! production sink is [`RingSink`]: a bounded lock-free ring buffer of
//! fixed-width encoded records that also folds every record into a
//! running [`Digest`] and per-kind [`Counters`], so the digest and
//! counters cover the *whole* run even when the ring has wrapped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use crate::counters::Counters;
use crate::event::{Event, Record};
use crate::export::{fnv1a_words, Digest, FNV_OFFSET};

/// Where records go. Implementations must be callable through `&self`
/// from the simulation hot path.
pub trait TraceSink: Send + Sync {
    /// Consume one stamped event.
    fn record(&self, rec: Record);
}

/// A cheap, cloneable capability to emit trace events.
///
/// Cloned into every layer of the stack; the default/`off` handle makes
/// every emit a single `is_some` branch with no allocation.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl TraceHandle {
    /// The disabled handle (records nothing, costs one branch).
    pub fn off() -> Self {
        TraceHandle::default()
    }

    /// A handle forwarding to `sink`.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// A handle plus its ring sink, ready to drain after the run.
    pub fn ring(capacity: usize) -> (TraceHandle, Arc<RingSink>) {
        let sink = Arc::new(RingSink::new(capacity));
        (TraceHandle::to(sink.clone()), sink)
    }

    /// Whether events are being recorded — guard any costly argument
    /// computation with this (or use [`crate::trace_ev!`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record `event` at simulation time `t_nanos` on `node`.
    #[inline]
    pub fn emit(&self, t_nanos: u64, node: u32, event: Event) {
        if let Some(sink) = &self.sink {
            sink.record(Record {
                t: t_nanos,
                node,
                event,
            });
        }
    }
}

/// Emit an event without evaluating its arguments when tracing is off.
#[macro_export]
macro_rules! trace_ev {
    ($handle:expr, $t:expr, $node:expr, $event:expr) => {
        if $handle.enabled() {
            $handle.emit($t, $node, $event);
        }
    };
}

const SLOT_WORDS: usize = 5;

/// One ring slot: a sequence word plus the encoded record.
///
/// The sequence word is `index + 1` once the slot's words are fully
/// written, so a reader can detect slots that are empty or mid-write.
struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w: Default::default(),
        }
    }
}

/// A bounded, lock-free ring buffer of trace records.
///
/// Writers claim a slot with one `fetch_add` and never block; when the
/// ring is full the oldest records are overwritten (the digest and
/// counters still cover every record ever emitted). The simulator emits
/// from a single thread per run, which makes the running digest
/// well-defined; concurrent emitters remain memory-safe but interleave
/// the digest fold in a nondeterministic order.
pub struct RingSink {
    slots: Vec<Slot>,
    mask: u64,
    head: AtomicU64,
    digest_hash: AtomicU64,
    per_layer: [AtomicU64; 5],
    counters: Counters,
    // Serializes drain() against itself only; emitters never touch it.
    drain_guard: Mutex<()>,
}

impl RingSink {
    /// A ring holding up to `capacity` records (rounded up to a power of
    /// two, minimum 64).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(64);
        RingSink {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            digest_hash: AtomicU64::new(FNV_OFFSET),
            per_layer: Default::default(),
            counters: Counters::new(),
            drain_guard: Mutex::new(()),
        }
    }

    /// Records emitted so far (including any overwritten in the ring).
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records that fell off the ring (emitted − retained).
    pub fn overwritten(&self) -> u64 {
        self.emitted().saturating_sub(self.slots.len() as u64)
    }

    /// The per-kind counters registry.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The whole-run digest: event count, per-layer counts, and the
    /// FNV-1a fold of every record's 40-byte image, in emission order.
    pub fn digest(&self) -> Digest {
        Digest {
            events: self.emitted(),
            hash: self.digest_hash.load(Ordering::Acquire),
            per_layer: [
                self.per_layer[0].load(Ordering::Acquire),
                self.per_layer[1].load(Ordering::Acquire),
                self.per_layer[2].load(Ordering::Acquire),
                self.per_layer[3].load(Ordering::Acquire),
                self.per_layer[4].load(Ordering::Acquire),
            ],
        }
    }

    /// Snapshot the retained records, oldest first. Slots currently
    /// mid-write (possible only with concurrent emitters) are skipped.
    pub fn drain(&self) -> Vec<Record> {
        let _g = self.drain_guard.lock().expect("drain poisoned");
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                continue; // empty or torn
            }
            let w = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
                slot.w[4].load(Ordering::Relaxed),
            ];
            if let Some(rec) = Record::decode(w) {
                out.push(rec);
            }
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, rec: Record) {
        let words = rec.encode();
        let i = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(i & self.mask) as usize];
        slot.seq.store(0, Ordering::Release); // invalidate while writing
        for (a, w) in slot.w.iter().zip(words) {
            a.store(w, Ordering::Relaxed);
        }
        slot.seq.store(i + 1, Ordering::Release);

        // Whole-run accounting (not subject to ring wrap-around).
        let h = self.digest_hash.load(Ordering::Acquire);
        self.digest_hash
            .store(fnv1a_words(h, &words), Ordering::Release);
        self.per_layer[rec.event.layer() as usize].fetch_add(1, Ordering::Relaxed);
        self.counters.bump(rec.event.kind());
    }
}

/// An unbounded in-memory sink for tests (mutex-protected).
#[derive(Default)]
pub struct VecSink {
    records: Mutex<Vec<Record>>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// All records seen so far, in order.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("poisoned").clone()
    }
}

impl TraceSink for VecSink {
    fn record(&self, rec: Record) {
        self.records.lock().expect("poisoned").push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> Event {
        Event::MacBackoff { slots: i, cw: 15 }
    }

    #[test]
    fn off_handle_is_inert() {
        let h = TraceHandle::off();
        assert!(!h.enabled());
        h.emit(1, 2, ev(3)); // must not panic or allocate
    }

    #[test]
    fn ring_retains_latest_and_counts_all() {
        let (h, sink) = TraceHandle::ring(64);
        for i in 0..200u32 {
            h.emit(u64::from(i), 0, ev(i));
        }
        assert_eq!(sink.emitted(), 200);
        assert_eq!(sink.overwritten(), 200 - 64);
        let recs = sink.drain();
        assert_eq!(recs.len(), 64);
        assert_eq!(recs.first().map(|r| r.t), Some(136));
        assert_eq!(recs.last().map(|r| r.t), Some(199));
        assert_eq!(sink.digest().per_layer[1], 200);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let (ha, sa) = TraceHandle::ring(64);
        let (hb, sb) = TraceHandle::ring(64);
        ha.emit(1, 0, ev(1));
        ha.emit(2, 0, ev(2));
        hb.emit(2, 0, ev(2));
        hb.emit(1, 0, ev(1));
        assert_ne!(sa.digest().hash, sb.digest().hash);
        assert_eq!(sa.digest().events, sb.digest().events);
    }
}
