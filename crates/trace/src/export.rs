//! Exporters: human-greppable JSONL and a compact binary digest.
//!
//! The digest is the determinism primitive: it folds every record's
//! 40-byte image through FNV-1a in emission order, so "same seed ⇒
//! byte-identical digest file" is checkable with a plain byte compare
//! (and cheap to keep as a golden file).

use std::io::{self, BufRead, Write};

use crate::event::Record;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold one encoded record (five little-endian words) into an FNV-1a
/// running hash.
pub fn fnv1a_words(mut hash: u64, words: &[u64; 5]) -> u64 {
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// The whole-run summary a sink accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    /// Total records emitted.
    pub events: u64,
    /// FNV-1a fold of every record image, in emission order.
    pub hash: u64,
    /// Record counts per layer (`Layer` repr order).
    pub per_layer: [u64; 5],
}

const DIGEST_MAGIC: &[u8; 4] = b"HTRD";
const DIGEST_VERSION: u16 = 1;
/// Serialized digest size in bytes.
pub const DIGEST_LEN: usize = 4 + 2 + 8 + 8 + 5 * 8;

impl Digest {
    /// Compute the digest of an in-memory record stream (equivalent to
    /// what a sink accumulates while recording it).
    pub fn of_records(records: &[Record]) -> Digest {
        let mut d = Digest {
            events: 0,
            hash: FNV_OFFSET,
            per_layer: [0; 5],
        };
        for r in records {
            d.events += 1;
            d.hash = fnv1a_words(d.hash, &r.encode());
            d.per_layer[r.event.layer() as usize] += 1;
        }
        d
    }

    /// The compact binary form (fixed [`DIGEST_LEN`] bytes).
    pub fn to_bytes(&self) -> [u8; DIGEST_LEN] {
        let mut out = [0u8; DIGEST_LEN];
        out[0..4].copy_from_slice(DIGEST_MAGIC);
        out[4..6].copy_from_slice(&DIGEST_VERSION.to_le_bytes());
        out[6..14].copy_from_slice(&self.events.to_le_bytes());
        out[14..22].copy_from_slice(&self.hash.to_le_bytes());
        for (i, c) in self.per_layer.iter().enumerate() {
            out[22 + i * 8..30 + i * 8].copy_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Parse the binary form (checks magic, version, and length).
    pub fn from_bytes(bytes: &[u8]) -> Option<Digest> {
        if bytes.len() != DIGEST_LEN || &bytes[0..4] != DIGEST_MAGIC {
            return None;
        }
        if u16::from_le_bytes(bytes[4..6].try_into().ok()?) != DIGEST_VERSION {
            return None;
        }
        let word = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        Some(Digest {
            events: word(6),
            hash: word(14),
            per_layer: [word(22), word(30), word(38), word(46), word(54)],
        })
    }
}

/// Write records as JSONL, one event per line.
pub fn write_jsonl<W: Write>(mut w: W, records: &[Record]) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_json_line())?;
    }
    Ok(())
}

/// Read a JSONL stream back into records. Blank lines are skipped;
/// unparseable lines are errors.
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<Record>> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match Record::from_json_line(&line) {
            Some(rec) => out.push(rec),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad trace line {}: {line:?}", i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample() -> Vec<Record> {
        vec![
            Record {
                t: 10,
                node: 0,
                event: Event::SimFlowStart { flow: 0 },
            },
            Record {
                t: 20,
                node: 1,
                event: Event::TcpCwnd {
                    cwnd: 14_600,
                    ssthresh: u64::MAX,
                },
            },
        ]
    }

    #[test]
    fn digest_roundtrips_and_detects_difference() {
        let d = Digest::of_records(&sample());
        assert_eq!(Digest::from_bytes(&d.to_bytes()), Some(d));
        let mut other = sample();
        other[1].t += 1;
        assert_ne!(Digest::of_records(&other).hash, d.hash);
        assert!(Digest::from_bytes(b"nope").is_none());
    }

    #[test]
    fn jsonl_roundtrips() {
        let recs = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recs).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }
}
