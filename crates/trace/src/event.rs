//! The typed event vocabulary and its two serializations.
//!
//! Every event is stamped into a [`Record`] with the simulation time (in
//! integer nanoseconds) and the emitting node, and carries up to three
//! `u64` payload words. That fixed shape gives every record an exact
//! 40-byte binary encoding ([`Record::encode`]) — the unit both the
//! lock-free ring buffer and the run digest operate on — and a
//! line-oriented JSONL encoding ([`Record::to_json_line`]) for humans
//! and external tools. Both encodings round-trip losslessly.

/// The protocol layer an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Layer {
    /// Radio: PPDUs on the medium, collisions, per-MPDU loss draws.
    Phy = 0,
    /// 802.11 MAC: contention, aggregation, link-layer ACKs, HACK bits.
    Mac = 1,
    /// TCP endpoints: congestion control, timers, retransmissions.
    Tcp = 2,
    /// ROHC-style ACK compression contexts.
    Rohc = 3,
    /// Scenario-level events from the simulation driver.
    Sim = 4,
}

impl Layer {
    /// All layers, in `repr` order.
    pub const ALL: [Layer; 5] = [Layer::Phy, Layer::Mac, Layer::Tcp, Layer::Rohc, Layer::Sim];

    /// Lower-case name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Phy => "phy",
            Layer::Mac => "mac",
            Layer::Tcp => "tcp",
            Layer::Rohc => "rohc",
            Layer::Sim => "sim",
        }
    }

    fn from_u8(v: u8) -> Option<Layer> {
        Layer::ALL.get(v as usize).copied()
    }
}

/// Field ↔ payload-word conversion for the types events may carry.
trait FieldCode {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

impl FieldCode for u64 {
    fn to_u64(self) -> u64 {
        self
    }
    fn from_u64(v: u64) -> u64 {
        v
    }
}

impl FieldCode for u32 {
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
    fn from_u64(v: u64) -> u32 {
        v as u32
    }
}

impl FieldCode for bool {
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
    fn from_u64(v: u64) -> bool {
        v != 0
    }
}

/// Static description of one event kind.
#[derive(Debug, Clone, Copy)]
pub struct EventMeta {
    /// Stable wire id (never renumber a released kind).
    pub kind: u8,
    /// JSONL event name.
    pub name: &'static str,
    /// Owning layer.
    pub layer: Layer,
    /// Payload field names, in payload-word order.
    pub fields: &'static [&'static str],
}

macro_rules! define_events {
    ($(
        $(#[$vmeta:meta])*
        $variant:ident = $kind:literal, $layer:ident, $jname:literal,
        { $( $(#[$fmeta:meta])* $field:ident : $fty:ty ),* $(,)? }
    );* $(;)?) => {
        /// A structured cross-layer trace event.
        ///
        /// Payloads are limited to three words; identifiers that need
        /// correlation (transmissions, contexts) carry explicit ids.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum Event {
            $( $(#[$vmeta])* $variant { $( $(#[$fmeta])* $field: $fty ),* } ),*
        }

        /// Every event kind, in wire-id order.
        pub const EVENT_META: &[EventMeta] = &[
            $(EventMeta {
                kind: $kind,
                name: $jname,
                layer: Layer::$layer,
                fields: &[$(stringify!($field)),*],
            }),*
        ];

        impl Event {
            /// Stable wire kind id.
            pub fn kind(&self) -> u8 {
                match self { $( Event::$variant { .. } => $kind ),* }
            }

            /// Payload words (unused trailing words are zero).
            pub fn payload(&self) -> [u64; 3] {
                match *self {
                    $( Event::$variant { $($field),* } => {
                        let mut _w = [0u64; 3];
                        let mut _i = 0usize;
                        $( _w[_i] = FieldCode::to_u64($field); _i += 1; )*
                        _w
                    } ),*
                }
            }

            /// Rebuild an event from its kind id and payload words.
            /// Unknown kinds yield `None`; unused words are ignored.
            pub fn from_payload(kind: u8, w: [u64; 3]) -> Option<Event> {
                match kind {
                    $( $kind => {
                        let mut _i = 0usize;
                        Some(Event::$variant {
                            $( $field: {
                                let v = FieldCode::from_u64(w[_i]);
                                _i += 1;
                                v
                            } ),*
                        })
                    } ),*
                    _ => None,
                }
            }
        }
    };
}

define_events! {
    /// A PPDU begins on the air. Node = transmitter.
    PhyTxStart = 0, Phy, "tx_start", {
        /// Medium-assigned transmission id (correlates with `tx_end`).
        tx: u64,
        /// Destination station (`u32::MAX` for broadcast/unknown).
        dst: u32,
        /// MPDUs in the (possibly aggregated) PPDU.
        mpdus: u32,
    };
    /// A PPDU ends. Node = transmitter.
    PhyTxEnd = 1, Phy, "tx_end", {
        /// Transmission id from the matching `tx_start`.
        tx: u64,
        /// MPDUs decoded by at least one receiver.
        delivered: u32,
        /// MPDUs lost everywhere (collision or channel error).
        lost: u32,
    };
    /// The PPDU overlapped another transmission. Node = transmitter.
    PhyCollision = 2, Phy, "collision", {
        /// Transmission id of the corrupted PPDU.
        tx: u64,
    };
    /// A channel-error (PER) draw killed one MPDU. Node = receiver.
    PhyPerDrop = 3, Phy, "per_drop", {
        /// Transmission id carrying the MPDU.
        tx: u64,
        /// Index of the lost MPDU within the A-MPDU.
        mpdu: u32,
    };
    /// The preamble itself was not detected. Node = receiver.
    PhyPreambleMiss = 4, Phy, "preamble_miss", {
        /// Transmission id whose preamble was missed.
        tx: u64,
    };
    /// The fault injector corrupted one MPDU instead of silently
    /// dropping it. Node = receiver.
    PhyFaultInjected = 5, Phy, "fault_injected", {
        /// Transmission id carrying the MPDU.
        tx: u64,
        /// Index of the corrupted MPDU within the A-MPDU.
        mpdu: u32,
        /// Whether the (modelled) FCS nevertheless passed, delivering
        /// the corrupted frame to the MAC.
        fcs_ok: bool,
    };

    /// A mid-run station loss step was applied to the medium — either
    /// mutating the fixed-loss table or composing an override on top of
    /// the burst/SNR models. Node = the station whose loss changed.
    PhyLossOverride = 6, Phy, "loss_override", {
        /// Station whose loss rate changed.
        station: u32,
        /// New per-MPDU loss probability, IEEE-754 bits.
        per_bits: u64,
        /// Whether the step *composed* with a stochastic loss model
        /// (burst/SNR) rather than mutating the fixed-loss table.
        composed: bool,
    };

    /// A backoff counter was (re)drawn. Node = contender.
    MacBackoff = 16, Mac, "backoff", {
        /// Slots drawn.
        slots: u32,
        /// Contention window the draw came from.
        cw: u32,
    };
    /// An A-MPDU batch was assembled for transmission. Node = sender.
    MacAmpdu = 17, Mac, "ampdu", {
        /// Destination station.
        dst: u32,
        /// MPDUs in the batch.
        mpdus: u32,
        /// Total MAC-layer bytes.
        bytes: u64,
    };
    /// A link-layer ACK or Block ACK was sent. Node = responder.
    MacLlAck = 18, Mac, "ll_ack", {
        /// Peer being acknowledged.
        peer: u32,
        /// Block ACK (`true`) or plain ACK (`false`).
        block: bool,
        /// MPDUs acknowledged.
        acked: u32,
    };
    /// A Block ACK Request was sent. Node = requester.
    MacBar = 19, Mac, "bar", {
        /// Peer the BAR is aimed at.
        peer: u32,
    };
    /// MPDUs are being retransmitted. Node = sender.
    MacRetry = 20, Mac, "retry", {
        /// Destination station.
        dst: u32,
        /// MPDUs scheduled for retry.
        mpdus: u32,
    };
    /// MPDUs exhausted the retry limit and were dropped. Node = sender.
    MacDrop = 21, Mac, "mac_drop", {
        /// Destination station.
        dst: u32,
        /// MPDUs dropped.
        mpdus: u32,
    };
    /// A HACK blob rode a link-layer response. Node = responder.
    MacBlobAttach = 22, Mac, "blob_attach", {
        /// Peer receiving the augmented response.
        peer: u32,
        /// Blob size in bytes.
        bytes: u32,
    };
    /// A compressed-ACK blob finished its DMA into the NIC. Node = owner.
    MacBlobInstall = 23, Mac, "blob_install", {
        /// Peer the blob will be sent toward.
        peer: u32,
        /// Blob size in bytes.
        bytes: u32,
    };
    /// Corrupted MPDUs arrived and failed the FCS check. Node = receiver.
    MacFrameCorrupted = 24, Mac, "frame_corrupted", {
        /// Transmitting station of the corrupted PPDU.
        from: u32,
        /// Number of FCS-failed MPDUs in the reception.
        mpdus: u32,
    };
    /// A roam decision fired (scheduled, or SNR trigger after a station
    /// move): the client will leave its AP. Node = the roaming client.
    MacRoamTriggered = 25, Mac, "roam_triggered", {
        /// Flow index of the roaming client.
        flow: u32,
        /// BSS (cell) index being left.
        from_cell: u32,
        /// Target BSS (cell) index.
        to_cell: u32,
    };
    /// The client disassociated from its AP: held ACKs flushed, ROHC
    /// contexts torn down, per-association MAC state cleared. Node = the
    /// roaming client.
    MacDisassociated = 26, Mac, "disassociated", {
        /// Flow index of the roaming client.
        flow: u32,
        /// AP station id the client left.
        ap: u32,
    };
    /// A (re-)association completed and the HACK capability bit was
    /// renegotiated with the new AP. Node = the roaming client.
    MacReassociated = 27, Mac, "reassociated", {
        /// Flow index of the roaming client.
        flow: u32,
        /// AP station id of the new association.
        ap: u32,
        /// Whether HACK was negotiated on the new association.
        hack: bool,
    };

    /// Congestion window or slow-start threshold changed. Node = endpoint.
    TcpCwnd = 32, Tcp, "cwnd", {
        /// New congestion window (bytes).
        cwnd: u64,
        /// New slow-start threshold (bytes).
        ssthresh: u64,
    };
    /// The retransmission timeout fired. Node = endpoint.
    TcpRto = 33, Tcp, "rto", {
        /// Sequence number being recovered.
        seq: u64,
    };
    /// Fast retransmit triggered by duplicate ACKs. Node = endpoint.
    TcpFastRetransmit = 34, Tcp, "fast_retx", {
        /// Sequence number being retransmitted.
        seq: u64,
    };
    /// The delayed-ACK timer fired. Node = endpoint.
    TcpDelayedAck = 35, Tcp, "delayed_ack", {
        /// Cumulative ACK number sent.
        ack: u64,
    };
    /// A rate-based congestion controller changed reportable state
    /// (mode, pacing rate, or bandwidth estimate). Loss-based
    /// controllers never emit this. Node = endpoint.
    CcStateChange = 36, Tcp, "cc_state", {
        /// Algorithm-specific state id (BbrLite: 0 = startup,
        /// 1 = drain, 2 = probe-bw).
        state: u32,
        /// Pacing rate in bytes/sec (0 = unpaced).
        pacing: u64,
        /// Bandwidth estimate in bytes/sec (0 = none yet).
        bw: u64,
    };

    /// A compression context was initialized from a native packet.
    RohcContextInit = 48, Rohc, "ctx_init", {
        /// Context id.
        cid: u64,
    };
    /// A context advanced (one ACK compressed or decompressed).
    RohcContextUpdate = 49, Rohc, "ctx_update", {
        /// Context id.
        cid: u64,
        /// Master sequence number after the update.
        msn: u32,
    };
    /// A fresh CID was derived for a five-tuple.
    RohcCidAlloc = 50, Rohc, "cid_alloc", {
        /// The allocated context id.
        cid: u64,
    };
    /// Decompression rejected a segment.
    RohcDecompressFail = 51, Rohc, "decomp_fail", {
        /// Failure class (see `hack-rohc`'s error taxonomy).
        reason: u32,
    };

    /// A flow's traffic started. Node = the flow's wireless client.
    SimFlowStart = 64, Sim, "flow_start", {
        /// Flow index.
        flow: u32,
    };
    /// A scheduled mid-run channel-dynamics event was applied (SNR
    /// step, loss-rate step, or station move). Node = the AP.
    SimChannelUpdate = 65, Sim, "channel_update", {
        /// Index into the scenario's dynamics schedule.
        index: u32,
    };
    /// The HACK supervisor moved a flow from `Healthy` to `Degraded`:
    /// its fault score crossed the degrade threshold. Node = the flow's
    /// wireless client.
    SupFlowDegraded = 66, Sim, "sup_degraded", {
        /// Flow index.
        flow: u32,
        /// Fault score at the transition.
        score: u32,
    };
    /// The supervisor forced a flow onto the native-ACK path. Node = the
    /// flow's wireless client.
    SupFallback = 67, Sim, "sup_fallback", {
        /// Flow index.
        flow: u32,
        /// Why: 0 = accumulated faults, 1 = peer not HACK-capable
        /// (permanent).
        reason: u32,
        /// Probation backoff armed at this fallback, in microseconds
        /// (0 for a permanent fallback).
        backoff_us: u64,
    };
    /// The probation window opened: HACK re-enabled on trial after a
    /// full ROHC context refresh. Node = the flow's wireless client.
    SupProbation = 68, Sim, "sup_probation", {
        /// Flow index.
        flow: u32,
        /// Probation attempt number (1-based, cumulative).
        attempt: u64,
    };
    /// The flow returned to `Healthy`. Node = the flow's wireless client.
    SupRecovered = 69, Sim, "sup_recovered", {
        /// Flow index.
        flow: u32,
        /// State the flow recovered from: 0 = Degraded, 1 = Probation.
        from: u32,
    };
    /// A handoff blackout was reported to the supervisor: the flow is
    /// forced native and will pass through probation on the new
    /// association. Node = the flow's wireless client.
    SupHandoffBlackout = 70, Sim, "sup_handoff", {
        /// Flow index.
        flow: u32,
        /// BSS (cell) index the flow is roaming toward.
        to_cell: u32,
    };
}

/// Look up the static metadata for a kind id.
pub fn meta_by_kind(kind: u8) -> Option<&'static EventMeta> {
    EVENT_META.iter().find(|m| m.kind == kind)
}

/// Look up a kind id by its JSONL event name.
pub fn kind_by_name(name: &str) -> Option<u8> {
    EVENT_META.iter().find(|m| m.name == name).map(|m| m.kind)
}

impl Event {
    /// The layer this event belongs to.
    pub fn layer(&self) -> Layer {
        self.meta().layer
    }

    /// Short JSONL event name.
    pub fn name(&self) -> &'static str {
        self.meta().name
    }

    /// Static metadata for this event's kind.
    pub fn meta(&self) -> &'static EventMeta {
        meta_by_kind(self.kind()).expect("every variant has meta")
    }
}

/// One stamped event: what happened, when, and at which node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulation time in nanoseconds since t = 0.
    pub t: u64,
    /// Emitting node (station id, endpoint id, …; layer-scoped).
    pub node: u32,
    /// The event itself.
    pub event: Event,
}

impl Record {
    /// Fixed-width binary encoding: five little-endian words
    /// `[time, node/layer/kind, payload0, payload1, payload2]`.
    pub fn encode(&self) -> [u64; 5] {
        let tag = (u64::from(self.node) << 32)
            | (u64::from(self.event.layer() as u8) << 8)
            | u64::from(self.event.kind());
        let p = self.event.payload();
        [self.t, tag, p[0], p[1], p[2]]
    }

    /// Decode the five-word form. Returns `None` for unknown kinds or a
    /// layer byte inconsistent with the kind (torn/corrupt slot).
    pub fn decode(w: [u64; 5]) -> Option<Record> {
        let node = (w[1] >> 32) as u32;
        let layer = ((w[1] >> 8) & 0xFF) as u8;
        let kind = (w[1] & 0xFF) as u8;
        let event = Event::from_payload(kind, [w[2], w[3], w[4]])?;
        if Layer::from_u8(layer) != Some(event.layer()) {
            return None;
        }
        Some(Record {
            t: w[0],
            node,
            event,
        })
    }

    /// The 40-byte little-endian byte image (digest input).
    pub fn to_bytes(&self) -> [u8; 40] {
        let mut out = [0u8; 40];
        for (i, w) in self.encode().iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// One JSONL line (no trailing newline): stamp fields, then the
    /// event's named payload fields. Booleans appear as 0/1.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let meta = self.event.meta();
        let payload = self.event.payload();
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"node\":{},\"layer\":\"{}\",\"event\":\"{}\"",
            self.t,
            self.node,
            meta.layer.name(),
            meta.name
        );
        for (name, value) in meta.fields.iter().zip(payload) {
            let _ = write!(s, ",\"{name}\":{value}");
        }
        s.push('}');
        s
    }

    /// Parse a line produced by [`Record::to_json_line`].
    pub fn from_json_line(line: &str) -> Option<Record> {
        let mut t = None;
        let mut node = None;
        let mut event_name = None;
        let mut fields: Vec<(&str, u64)> = Vec::new();
        for (key, val) in scan_json_object(line)? {
            match (key, val) {
                ("t", JsonVal::Num(v)) => t = Some(v),
                ("node", JsonVal::Num(v)) => node = Some(v as u32),
                ("event", JsonVal::Str(s)) => event_name = Some(s),
                ("layer", JsonVal::Str(_)) => {} // redundant, checked below
                (k, JsonVal::Num(v)) => fields.push((k, v)),
                _ => return None,
            }
        }
        let meta = meta_by_kind(kind_by_name(event_name?)?)?;
        let mut w = [0u64; 3];
        for (i, fname) in meta.fields.iter().enumerate() {
            w[i] = fields.iter().find(|(k, _)| k == fname)?.1;
        }
        let event = Event::from_payload(meta.kind, w)?;
        Some(Record {
            t: t?,
            node: node?,
            event,
        })
    }
}

enum JsonVal<'a> {
    Num(u64),
    Str(&'a str),
}

/// Scan a flat JSON object of string keys and unsigned-integer or plain
/// string values — exactly the subset [`Record::to_json_line`] emits.
fn scan_json_object(line: &str) -> Option<Vec<(&str, JsonVal<'_>)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.trim_start_matches([',', ' ']);
        if rest.is_empty() {
            break;
        }
        rest = rest.strip_prefix('"')?;
        let kend = rest.find('"')?;
        let (key, after) = rest.split_at(kend);
        rest = after.strip_prefix('"')?.strip_prefix(':')?;
        if let Some(s) = rest.strip_prefix('"') {
            let vend = s.find('"')?;
            out.push((key, JsonVal::Str(&s[..vend])));
            rest = &s[vend + 1..];
        } else {
            let vend = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if vend == 0 {
                return None;
            }
            out.push((key, JsonVal::Num(rest[..vend].parse().ok()?)));
            rest = &rest[vend..];
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_meta_consistent() {
        for (i, a) in EVENT_META.iter().enumerate() {
            for b in &EVENT_META[i + 1..] {
                assert_ne!(a.kind, b.kind, "{} vs {}", a.name, b.name);
                assert_ne!(a.name, b.name);
            }
            assert!(a.fields.len() <= 3);
        }
    }

    #[test]
    fn binary_roundtrip() {
        let rec = Record {
            t: 123_456_789,
            node: 3,
            event: Event::MacAmpdu {
                dst: 1,
                mpdus: 42,
                bytes: 63_504,
            },
        };
        assert_eq!(Record::decode(rec.encode()), Some(rec));
    }

    #[test]
    fn json_roundtrip() {
        let rec = Record {
            t: 42,
            node: 0,
            event: Event::MacLlAck {
                peer: 7,
                block: true,
                acked: 21,
            },
        };
        let line = rec.to_json_line();
        assert_eq!(Record::from_json_line(&line), Some(rec));
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Event::from_payload(255, [0, 0, 0]), None);
        let mut w = Record {
            t: 0,
            node: 0,
            event: Event::SimFlowStart { flow: 0 },
        }
        .encode();
        w[1] |= 0xFF; // clobber the kind byte
        assert_eq!(Record::decode(w), None);
    }
}
