//! A registry of per-event-kind counters.
//!
//! Counters are the always-cheap aggregate view of a trace: one atomic
//! increment per event, readable at any point during or after a run
//! without touching the ring buffer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{meta_by_kind, EVENT_META};

/// Dense per-kind counters (indexed by wire kind id).
pub struct Counters {
    counts: Vec<AtomicU64>,
}

impl Default for Counters {
    fn default() -> Self {
        Counters::new()
    }
}

impl Counters {
    /// A zeroed registry covering every known event kind.
    pub fn new() -> Self {
        let max_kind = EVENT_META.iter().map(|m| m.kind).max().unwrap_or(0);
        Counters {
            counts: (0..=max_kind).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Increment the counter for `kind` (unknown kinds are ignored).
    #[inline]
    pub fn bump(&self, kind: u8) {
        if let Some(c) = self.counts.get(kind as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current count for `kind`.
    pub fn get(&self, kind: u8) -> u64 {
        self.counts
            .get(kind as usize)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of every *named* kind with a nonzero count, as
    /// `(event name, count)` in wire-id order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(kind, c)| {
                let n = c.load(Ordering::Relaxed);
                let meta = meta_by_kind(kind as u8)?;
                (n > 0).then_some((meta.name, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn bump_and_snapshot() {
        let c = Counters::new();
        let kind = Event::SimFlowStart { flow: 0 }.kind();
        c.bump(kind);
        c.bump(kind);
        assert_eq!(c.get(kind), 2);
        assert_eq!(c.snapshot(), vec![("flow_start", 2)]);
        c.bump(255); // unknown: ignored, not a panic
    }
}
