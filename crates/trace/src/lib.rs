//! `hack-trace`: deterministic cross-layer structured event tracing.
//!
//! Every layer of the simulated stack (PHY, MAC, TCP, ROHC, and the
//! simulation driver) can emit typed [`Event`]s stamped with simulation
//! time and node id through a cloneable [`TraceHandle`]. When tracing is
//! disabled the handle is a `None` and each emit costs one branch, so
//! the hot path stays untouched for large experiment sweeps.
//!
//! The production sink is [`RingSink`]: a bounded lock-free ring that
//! retains the most recent records, plus whole-run aggregates that are
//! immune to wrap-around — per-kind [`Counters`] and a running
//! [`Digest`] (an FNV-1a fold of every record's fixed 40-byte image, in
//! emission order). The digest turns the repo's determinism claim into
//! a byte-comparable artifact: same seed ⇒ byte-identical digest.
//!
//! Records export as JSONL (one flat object per event) or as the
//! compact binary digest; both round-trip losslessly.
//!
//! ```
//! use hack_trace::{Event, TraceHandle};
//!
//! let (handle, sink) = TraceHandle::ring(1024);
//! handle.emit(42, 0, Event::MacBackoff { slots: 7, cw: 15 });
//! assert_eq!(sink.digest().events, 1);
//! assert_eq!(sink.counters().snapshot(), vec![("backoff", 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod export;
pub mod sink;

pub use counters::Counters;
pub use event::{kind_by_name, meta_by_kind, Event, EventMeta, Layer, Record, EVENT_META};
pub use export::{read_jsonl, write_jsonl, Digest, DIGEST_LEN, FNV_OFFSET};
pub use sink::{RingSink, TraceHandle, TraceSink, VecSink};
