//! Property-based tests for the trace serialization formats: any event
//! must survive both the compact binary word encoding and the JSONL
//! text form byte-exactly, and the digest must be order- and
//! content-sensitive.

use hack_trace::{read_jsonl, write_jsonl, Digest, Event, Record, EVENT_META};
use proptest::prelude::*;

/// An arbitrary well-formed record: any known kind, any payload. The
/// payload words pass through `Event::from_payload`, which narrows each
/// word to its field's width — so the resulting event is canonical and
/// every serialization round-trip must reproduce it exactly.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        any::<u32>(),
        0usize..EVENT_META.len(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(t, node, ki, w0, w1, w2)| Record {
            t,
            node,
            event: Event::from_payload(EVENT_META[ki].kind, [w0, w1, w2])
                .expect("every EVENT_META kind decodes"),
        })
}

proptest! {
    /// Binary: encode → decode is the identity on well-formed records.
    #[test]
    fn binary_words_roundtrip(rec in arb_record()) {
        prop_assert_eq!(Record::decode(rec.encode()), Some(rec));
    }

    /// The 40-byte image is exactly the little-endian word encoding.
    #[test]
    fn byte_image_matches_words(rec in arb_record()) {
        let bytes = rec.to_bytes();
        for (i, w) in rec.encode().iter().enumerate() {
            prop_assert_eq!(&bytes[i * 8..(i + 1) * 8], &w.to_le_bytes());
        }
    }

    /// JSONL: to_json_line → from_json_line is the identity.
    #[test]
    fn json_line_roundtrips(rec in arb_record()) {
        let line = rec.to_json_line();
        prop_assert_eq!(Record::from_json_line(&line), Some(rec), "line: {line}");
    }

    /// Whole-stream JSONL round-trips through a writer/reader pair.
    #[test]
    fn jsonl_stream_roundtrips(recs in proptest::collection::vec(arb_record(), 0..64)) {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recs).expect("infallible vec writer");
        let back = read_jsonl(buf.as_slice()).expect("parse own output");
        prop_assert_eq!(back, recs);
    }

    /// Digest serialization round-trips, and the digest distinguishes
    /// any reordering or record change (for these generated streams).
    #[test]
    fn digest_roundtrips_and_is_sensitive(
        recs in proptest::collection::vec(arb_record(), 1..48),
        flip in any::<u64>(),
    ) {
        let d = Digest::of_records(&recs);
        prop_assert_eq!(Digest::from_bytes(&d.to_bytes()), Some(d));

        // Same stream → same digest.
        prop_assert_eq!(Digest::of_records(&recs), d);

        // A one-bit timestamp perturbation must change the hash.
        let mut mutated = recs.clone();
        let i = (flip as usize) % mutated.len();
        mutated[i].t ^= 1;
        prop_assert_ne!(Digest::of_records(&mutated).hash, d.hash);
    }
}
