//! A reusable scratch-buffer pool for byte vectors.
//!
//! The HACK hot path rebuilds a NIC blob on every held ACK and every
//! confirmation — previously a fresh `Vec<u8>` each time, dropped a few
//! microseconds later when the next rebuild displaced it. [`BufPool`]
//! closes that loop: `take` hands out a cleared buffer with its old
//! capacity intact, `put` returns a displaced buffer for reuse.
//!
//! The pool is deliberately dumb — a bounded LIFO stack of buffers, no
//! sizing classes — because the blob path recycles buffers of one
//! rough size. Hit/miss counters feed the bench harness's
//! allocations-proxy so regressions in recycling show up in
//! `BENCH_hotpath.json`.

/// A bounded pool of reusable `Vec<u8>` scratch buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    max_pooled: usize,
    hits: u64,
    misses: u64,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl BufPool {
    /// Default retention: plenty for one driver's blob churn while
    /// bounding worst-case memory if recycling outpaces reuse.
    const DEFAULT_MAX_POOLED: usize = 32;

    /// A pool retaining up to [`Self::DEFAULT_MAX_POOLED`] buffers.
    pub fn new() -> Self {
        BufPool::with_max_pooled(Self::DEFAULT_MAX_POOLED)
    }

    /// A pool retaining at most `max_pooled` free buffers; `put` beyond
    /// that drops the buffer.
    pub fn with_max_pooled(max_pooled: usize) -> Self {
        BufPool {
            free: Vec::new(),
            max_pooled,
            hits: 0,
            misses: 0,
        }
    }

    /// An empty buffer: recycled (capacity retained, counted as a hit)
    /// when one is pooled, freshly allocated otherwise.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.hits += 1;
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer for reuse. Cleared here so `take` is O(1).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_pooled && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of free buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// `take` calls served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `take` calls that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut p = BufPool::new();
        let mut b = p.take();
        assert_eq!(p.misses(), 1);
        b.extend_from_slice(&[1, 2, 3, 4]);
        let cap = b.capacity();
        p.put(b);
        let b2 = p.take();
        assert_eq!(p.hits(), 1);
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut p = BufPool::new();
        p.put(Vec::new());
        assert_eq!(p.pooled(), 0);
    }

    #[test]
    fn retention_is_bounded() {
        let mut p = BufPool::with_max_pooled(2);
        for _ in 0..5 {
            p.put(Vec::with_capacity(8));
        }
        assert_eq!(p.pooled(), 2);
    }

    #[test]
    fn lifo_order() {
        let mut p = BufPool::new();
        p.put(Vec::with_capacity(10));
        p.put(Vec::with_capacity(20));
        assert_eq!(p.take().capacity(), 20);
        assert_eq!(p.take().capacity(), 10);
    }
}
