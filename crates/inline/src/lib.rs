//! `InlineVec`: a `SmallVec`-style growable vector that stores up to
//! `N` elements inline (no heap allocation) and spills to a `Vec` only
//! beyond that.
//!
//! Built in-tree because this workspace compiles with no registry
//! access, and written in safe Rust: the inline buffer is a plain
//! `[T; N]` (hence the `T: Default` bound for vacant slots) and the
//! spill is an ordinary `Vec<T>`. The invariant is simple — elements
//! live *either* entirely in the inline buffer (`len <= N`, spill
//! empty) *or* entirely in the spill (`len > N`).
//!
//! The hot users are [`hack-tcp`]'s `TcpSegment::options` (at most four
//! options on any real segment) and the ROHC compressor's output
//! segments (≤ 12 bytes unless SACK blocks pile up) — both previously
//! a guaranteed heap allocation per packet.

#![forbid(unsafe_code)]

pub mod pool;

pub use pool::BufPool;

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A growable vector with inline storage for the first `N` elements.
pub struct InlineVec<T, const N: usize> {
    buf: [T; N],
    spill: Vec<T>,
    len: usize,
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            buf: std::array::from_fn(|_| T::default()),
            spill: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True while elements still fit in the inline buffer.
    pub fn is_inline(&self) -> bool {
        self.len <= N
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.buf[..self.len]
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len <= N {
            &mut self.buf[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Remove all elements (keeps the spill's capacity, like `Vec`).
    pub fn clear(&mut self) {
        self.spill.clear();
        self.len = 0;
    }
}

impl<T: Default + Clone, const N: usize> InlineVec<T, N> {
    /// Append an element, spilling to the heap on the `N+1`-th.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.buf[self.len] = value;
        } else {
            if self.len == N {
                // First overflow: migrate the inline elements.
                self.spill.reserve(N + 1);
                for slot in &mut self.buf {
                    self.spill.push(std::mem::take(slot));
                }
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Remove and return the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.spill.is_empty() {
            Some(std::mem::take(&mut self.buf[self.len]))
        } else {
            let v = self.spill.pop();
            // Migrate back inline once we fit again, keeping the
            // either/or invariant.
            if self.len <= N {
                for (i, x) in self.spill.drain(..).enumerate() {
                    self.buf[i] = x;
                }
            }
            v
        }
    }

    /// Shorten to `new_len` elements (no-op when already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        while self.len > new_len {
            self.pop();
        }
    }

    /// Append every element of `slice` (clones).
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        if self.len + slice.len() <= N {
            // Fast path: everything stays inline.
            self.buf[self.len..self.len + slice.len()].clone_from_slice(slice);
            self.len += slice.len();
        } else {
            for x in slice {
                self.push(x.clone());
            }
        }
    }
}

impl<T, const N: usize> AsRef<[T]> for InlineVec<T, N> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Default + Clone, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() > N {
            let len = v.len();
            InlineVec {
                buf: std::array::from_fn(|_| T::default()),
                spill: v,
                len,
            }
        } else {
            let mut out = Self::new();
            for x in v {
                out.push(x);
            }
            out
        }
    }
}

impl<T: Default + Clone, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<T: Default + Clone, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<T: Clone + Default, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owned iteration: drains inline elements by value.
pub struct IntoIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    front: usize,
}

impl<T: Default + Clone, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.front >= self.vec.len() {
            return None;
        }
        let v = std::mem::take(&mut self.vec.as_mut_slice()[self.front]);
        self.front += 1;
        Some(v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.vec.len() - self.front;
        (n, Some(n))
    }
}

impl<T: Default + Clone, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            vec: self,
            front: 0,
        }
    }
}

/// `inline_vec![a, b, c]` — literal constructor, mirroring `vec!`.
#[macro_export]
macro_rules! inline_vec {
    () => { $crate::InlineVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::InlineVec::new();
        $(v.push($x);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u32, 4>;

    #[test]
    fn push_stays_inline_then_spills() {
        let mut v = V::new();
        for i in 0..4 {
            v.push(i);
            assert!(v.is_inline());
        }
        v.push(4);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_migrates_back_inline() {
        let mut v: V = (0..6).collect();
        assert!(!v.is_inline());
        assert_eq!(v.pop(), Some(5));
        assert_eq!(v.pop(), Some(4));
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn from_vec_round_trips() {
        for n in 0..10u32 {
            let src: Vec<u32> = (0..n).collect();
            let iv: V = src.clone().into();
            assert_eq!(iv.as_slice(), src.as_slice());
            assert_eq!(iv, src);
        }
    }

    #[test]
    fn owned_iteration_yields_all() {
        let v: V = (0..7).collect();
        let out: Vec<u32> = v.into_iter().collect();
        assert_eq!(out, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn macro_and_eq() {
        let v: V = inline_vec![1, 2, 3];
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(v[..], [1, 2, 3]);
        let w: V = inline_vec![1, 2, 3];
        assert_eq!(v, w);
    }

    #[test]
    fn clear_and_truncate() {
        let mut v: V = (0..6).collect();
        v.truncate(5);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        v.truncate(2);
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1]);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[u32]);
    }

    #[test]
    fn debug_formats_like_slice() {
        let v: V = inline_vec![9, 8];
        assert_eq!(format!("{v:?}"), "[9, 8]");
    }
}
