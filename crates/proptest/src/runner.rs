//! Case execution: a deterministic per-test RNG and the case loop.

/// Default number of cases per property (override with `PROPTEST_CASES`).
const DEFAULT_CASES: u64 = 96;

/// The random stream handed to strategies: xoshiro256++ seeded from the
/// test name and case index, so every case reproduces in isolation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — stable name hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_test(name: &str, case: u64) -> Self {
        let mut sm = fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Unbiased uniform draw in `[0, n)` (Lemire rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (u128::from(x)) * (u128::from(n));
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Run `body` over the configured number of generated cases, panicking
/// with the case index on the first failure.
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let n = cases();
    for case in 0..n {
        let mut rng = TestRng::for_test(name, case);
        if let Err(msg) = body(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{n}: {msg}\n\
                 (rerun deterministically: the case RNG is seeded from the \
                 test name and case index)"
            );
        }
    }
}
