//! `Option` strategies (`of`).

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // 3:1 Some:None, matching proptest's default weighting.
        if rng.below(4) < 3 {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` of the inner strategy three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
