//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace must build without registry access, so the property
//! tests link against this shim instead of crates.io `proptest`. It
//! implements the subset of the API the tests use — `proptest!`,
//! `prop_assert*!`, `prop_oneof!`, `any::<T>()`, ranges, tuples,
//! `Just`, `prop_map`, `collection::vec`, and `option::of` — with
//! random (not shrinking) case generation driven by a deterministic
//! per-test seed, so failures reproduce exactly.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its seed and case index
//!   instead of a minimized input;
//! * `Strategy::generate` draws a value directly rather than building a
//!   `ValueTree`;
//! * the case count defaults to 96 and follows `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod runner;
pub mod strategy;

/// What the `proptest!`-generated test bodies yield per case.
pub type TestCaseResult = Result<(), String>;

pub mod prelude {
    //! The usual glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal test running [`runner::run`] over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($(&$strat,)*);
                $crate::runner::run(stringify!($name), |__rng| {
                    let ($($arg,)*) = {
                        let ($($arg,)*) = __strategies;
                        ($($crate::strategy::Strategy::generate($arg, __rng),)*)
                    };
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Like `assert!` but aborts only the current case with a rich message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Case-aborting equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!(
                "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
            ));
        }
    }};
}

/// Case-aborting inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return Err(format!(
                "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
            ));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value
/// type (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -3i32..4, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((any::<bool>(), 0u8..4), 1..20),
            o in crate::option::of(1u16..9),
            e in arb_even(),
            pick in prop_oneof![Just(1u64), Just(2u64), 10u64..20],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            if let Some(x) = o {
                prop_assert!((1..9).contains(&x));
            }
            prop_assert_eq!(e % 2, 0);
            prop_assert_ne!(pick, 0);
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
        }
    }

    #[test]
    fn same_name_reproduces() {
        let mut a = crate::runner::TestRng::for_test("t", 3);
        let mut b = crate::runner::TestRng::for_test("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
