//! `any::<T>()` — full-domain generation for primitive types.

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range floats; NaN/inf excluded like proptest's default.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(613) as i32 - 306) as f64;
        m * 10f64.powf(e)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
