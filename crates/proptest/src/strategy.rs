//! The [`Strategy`] trait and its combinators.

use crate::runner::TestRng;

/// Produces values of one type from a random stream.
///
/// Unlike real proptest there is no `ValueTree`/shrinking layer — a
/// strategy simply draws a value.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a boxed strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one branch.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // no full-width inclusive ranges
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
