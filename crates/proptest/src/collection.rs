//! Collection strategies (`vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `Vec`s of `elem`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
