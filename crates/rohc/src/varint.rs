//! Zigzag + LEB128 variable-length integers for delta fields.
//!
//! Small signed deltas (the common case: an ACK advancing by one stride,
//! a timestamp ticking a few milliseconds) encode in one byte.

/// Zigzag-map a signed value to unsigned.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse zigzag.
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append the LEB128 encoding of `v` to `out`. Generic over the sink
/// so both `Vec<u8>` and the inline segment buffer work.
pub fn write_uvarint<B: Extend<u8>>(out: &mut B, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.extend([byte]);
            return;
        }
        out.extend([byte | 0x80]);
    }
}

/// Append a zigzag-varint-encoded signed value.
pub fn write_ivarint<B: Extend<u8>>(out: &mut B, v: i64) {
    write_uvarint(out, zigzag(v));
}

/// Decode a LEB128 value from `data`, returning `(value, bytes_read)`.
/// `None` on truncation or overlong (>10 byte) encodings.
#[inline]
pub fn read_uvarint(data: &[u8]) -> Option<(u64, usize)> {
    // Single-byte fast path: the common case for ACK/timestamp deltas.
    let &b0 = data.first()?;
    if b0 & 0x80 == 0 {
        return Some((u64::from(b0), 1));
    }
    let mut v = u64::from(b0 & 0x7F);
    for (i, &byte) in data.iter().enumerate().take(10).skip(1) {
        v |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Decode a zigzag varint, returning `(value, bytes_read)`.
pub fn read_ivarint(data: &[u8]) -> Option<(i64, usize)> {
    read_uvarint(data).map(|(v, n)| (unzigzag(v), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -63, 64, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "v={v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn small_deltas_are_one_byte() {
        for v in -63i64..=63 {
            let mut out = Vec::new();
            write_ivarint(&mut out, v);
            assert_eq!(out.len(), 1, "v={v}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            5840,
            1 << 20,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_uvarint(&mut out, v);
            let (got, n) = read_uvarint(&out).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, out.len());
        }
    }

    #[test]
    fn truncated_input_rejected() {
        let mut out = Vec::new();
        write_uvarint(&mut out, 1 << 40);
        assert!(read_uvarint(&out[..out.len() - 1]).is_none());
        assert!(read_uvarint(&[]).is_none());
    }

    #[test]
    fn overlong_rejected() {
        let bytes = [0x80u8; 11];
        assert!(read_uvarint(&bytes).is_none());
    }

    #[test]
    fn decode_consumes_exact_bytes() {
        let mut out = Vec::new();
        write_ivarint(&mut out, -5840);
        write_ivarint(&mut out, 7);
        let (a, n) = read_ivarint(&out).unwrap();
        assert_eq!(a, -5840);
        let (b, m) = read_ivarint(&out[n..]).unwrap();
        assert_eq!(b, 7);
        assert_eq!(n + m, out.len());
    }
}
