//! # hack-rohc — ROHC-style TCP ACK compression for HACK
//!
//! The paper compresses TCP ACKs with RObust Header Compression
//! (RFC 6846) before enclosing them in link-layer ACKs. This crate is a
//! from-scratch implementation of the HACK-specialized profile the paper
//! describes in §3.3.2:
//!
//! * **No IR packets** — contexts are created and refreshed from
//!   natively transmitted TCP ACKs ([`Compressor::observe_native`] /
//!   [`Decompressor::observe_native`]).
//! * **Independent CID computation** — CID = lowest byte of the MD5 hash
//!   of the flow 5-tuple ([`md5::cid_for_tuple`]); MD5 itself is
//!   implemented in-repo per RFC 1321.
//! * **Extended master sequence number** — every compressed ACK carries
//!   an 8-bit MSN so the AP can discard duplicates arriving via the
//!   client's blob-retention mechanism (§3.4, Figure 6).
//! * **ROHC CRC validation** — CRC-3 (RFC 3095 polynomials, [`crc`])
//!   over the reconstructed original header detects context
//!   desynchronization, which heals on the next native ACK.
//! * **Window-based LSB (W-LSB) field encoding** — every dynamic field
//!   carries just enough low-order bits to decode against *any*
//!   reference the decompressor might hold, from the oldest
//!   unconfirmed native ACK to the newest emission. This is what makes
//!   compressed ACKs robust to blobs overtaking queued native ACKs,
//!   retained-blob duplication, and arbitrary losses (§3.4).
//!
//! Typical steady-state output is ~8 bytes per 52-byte ACK (timestamps
//! included) — the same order as the paper's Table 2, which reports
//! ~4.4 bytes with the full ROHC-TCP profile's packed bit formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cidmap;
pub mod compress;
pub mod context;
pub mod crc;
pub mod decompress;
pub mod md5;
pub mod varint;

pub use cidmap::{CidMap, CtxTable};
pub use compress::{build_blob, build_blob_into, CompressStats, Compressor, RohcSegment};
pub use context::{CompContext, DecompContext, FieldRefs};
pub use decompress::{
    BlobDecoder, BlobItem, BlobResult, DecompressError, DecompressStats, Decompressor,
};
pub use md5::{cid_for_tuple, md5};
