//! Steady-state CID lookup structures for the ROHC fast path.
//!
//! Both endpoints resolve a flow 5-tuple to its context identifier on
//! every packet. The original implementation kept a `Vec<(FiveTuple,
//! u8)>` scanned linearly — fine for one flow, quadratic pain for a
//! dense-cell AP decompressing blobs from dozens of stations. This
//! module provides the two replacements:
//!
//! * [`CidMap`] — a small open-addressed hash map from [`FiveTuple`] to
//!   CID, keyed by a cheap multiply-xor hash over the tuple words (no
//!   MD5, no SipHash). O(1) expected lookup independent of flow count;
//!   the MD5 CID derivation still runs exactly once per flow, on first
//!   sight.
//! * [`CtxTable`] — direct-indexed context storage. CIDs are single
//!   bytes, so a 256-slot table replaces `HashMap<u8, Ctx>`: lookup is
//!   an array index, no hashing at all. Slots allocate lazily on first
//!   insert so an idle endpoint costs nothing.

use hack_tcp::FiveTuple;

/// A cheap, well-mixed hash of the flow 5-tuple. Addresses and ports
/// are folded into two words and mixed with multiply-xor (the
/// murmur-style finalizer); quality only needs to beat the table size,
/// not an adversary — CID allocation itself still uses MD5.
#[inline]
fn tuple_hash(t: &FiveTuple) -> u64 {
    let a = (u64::from(t.src_ip.0) << 32) | u64::from(t.dst_ip.0);
    let b = (u64::from(t.src_port) << 24) | (u64::from(t.dst_port) << 8) | u64::from(t.protocol);
    let mut h = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    h ^= h >> 29;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 32)
}

/// Open-addressed `FiveTuple -> CID` map with linear probing.
///
/// Capacity is always a power of two and grows at 3/4 load; entries are
/// never removed individually (a flow's CID is stable for its
/// lifetime), which keeps probing tombstone-free.
#[derive(Debug, Default, Clone)]
pub struct CidMap {
    slots: Vec<Option<(FiveTuple, u8)>>,
    len: usize,
}

impl CidMap {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        CidMap::default()
    }

    /// Number of cached flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flows are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cached CID for `tuple`, if present.
    #[inline]
    pub fn get(&self, tuple: &FiveTuple) -> Option<u8> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = tuple_hash(tuple) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((t, cid)) if t == tuple => return Some(*cid),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Cache `tuple -> cid`. The caller has already derived the CID
    /// (MD5 on first sight); re-inserting an existing tuple is a no-op.
    pub fn insert(&mut self, tuple: FiveTuple, cid: u8) {
        if self.slots.len() < 2 * (self.len + 1) {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = tuple_hash(&tuple) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((t, _)) if *t == tuple => return,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some((tuple, cid));
                    self.len += 1;
                    return;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        let mask = new_cap - 1;
        for entry in old.into_iter().flatten() {
            let mut i = tuple_hash(&entry.0) as usize & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(entry);
        }
    }
}

/// Direct-indexed context storage: CIDs are bytes, so contexts live in
/// a flat 256-slot table and lookup is a bounds-check-free array index.
///
/// The table allocates lazily on the first insert (one allocation for
/// the lifetime of the endpoint) so `Default` stays free.
#[derive(Debug, Clone)]
pub struct CtxTable<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> Default for CtxTable<T> {
    fn default() -> Self {
        CtxTable::new()
    }
}

impl<T> CtxTable<T> {
    /// An empty table (no allocation until the first insert).
    pub fn new() -> Self {
        CtxTable {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Number of live contexts.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no contexts are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The context at `cid`, if any.
    #[inline]
    pub fn get(&self, cid: u8) -> Option<&T> {
        self.slots.get(usize::from(cid))?.as_ref()
    }

    /// Mutable access to the context at `cid`, if any.
    #[inline]
    pub fn get_mut(&mut self, cid: u8) -> Option<&mut T> {
        self.slots.get_mut(usize::from(cid))?.as_mut()
    }

    /// Install (or replace) the context at `cid`.
    pub fn insert(&mut self, cid: u8, ctx: T) {
        if self.slots.is_empty() {
            self.slots.resize_with(256, || None);
        }
        if self.slots[usize::from(cid)].replace(ctx).is_none() {
            self.live += 1;
        }
    }

    /// Remove and return the context at `cid`.
    pub fn remove(&mut self, cid: u8) -> Option<T> {
        let old = self.slots.get_mut(usize::from(cid))?.take();
        if old.is_some() {
            self.live -= 1;
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::Ipv4Addr;

    fn tuple(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: Ipv4Addr(0xC0A8_0000 | i),
            dst_ip: Ipv4Addr(0x0A00_0001),
            src_port: 40_000 + (i as u16 % 1000),
            dst_port: 5001,
            protocol: 6,
        }
    }

    #[test]
    fn map_roundtrips_many_flows() {
        let mut m = CidMap::new();
        assert!(m.is_empty());
        for i in 0..200 {
            assert_eq!(m.get(&tuple(i)), None);
            m.insert(tuple(i), i as u8);
        }
        assert_eq!(m.len(), 200);
        for i in 0..200 {
            assert_eq!(m.get(&tuple(i)), Some(i as u8), "flow {i}");
        }
        assert_eq!(m.get(&tuple(999)), None);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut m = CidMap::new();
        m.insert(tuple(1), 42);
        m.insert(tuple(1), 99); // first binding wins; CIDs are stable
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&tuple(1)), Some(42));
    }

    #[test]
    fn probe_chains_survive_growth() {
        // Insert enough flows to force several doublings, interleaved
        // with lookups so chains formed pre-growth stay resolvable.
        let mut m = CidMap::new();
        for i in 0..500 {
            m.insert(tuple(i), (i % 256) as u8);
            for j in (0..=i).step_by(17) {
                assert_eq!(m.get(&tuple(j)), Some((j % 256) as u8));
            }
        }
    }

    #[test]
    fn ctx_table_insert_get_remove() {
        let mut t: CtxTable<String> = CtxTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(7), None);
        t.insert(7, "seven".into());
        t.insert(255, "max".into());
        t.insert(0, "zero".into());
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(7).map(String::as_str), Some("seven"));
        assert_eq!(t.get_mut(255).map(|s| s.as_str()), Some("max"));
        assert_eq!(t.remove(7), Some("seven".into()));
        assert_eq!(t.remove(7), None);
        assert_eq!(t.len(), 2);
        // Replacing keeps the count right.
        t.insert(0, "nil".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).map(String::as_str), Some("nil"));
    }
}
