//! The HACK-profile header compressor (client-side driver component).
//!
//! Produces one compact, **self-contained** byte segment per pure TCP
//! ACK: every dynamic field is W-LSB encoded against the flow context's
//! floor (see [`crate::context`]), so segments decode correctly no
//! matter how blobs, retained duplicates, and native ACKs interleave or
//! get lost — the property §3.4 of the paper demands.
//!
//! The compressor is deliberately conservative: any packet shape it
//! cannot encode byte-exactly (unexpected flags, a sequence-number
//! change, fields too far from the floor) makes
//! [`Compressor::compress`] return `None` and the driver falls back to
//! sending the ACK natively — which is also how contexts are created
//! and refreshed, since HACK never sends ROHC IR packets (§3.3.2).
//!
//! ## Wire format (one segment)
//!
//! ```text
//! CID:1  FLAGS:1  MSN:1  IDENT_LSB8:1  ACK_LSB:(1|2|3|4)
//! [WINDOW:2BE if W]  [TSVAL_LSB, TSECR_LSB:(1|2 each) if flow has TS]
//! [count:1 (start_rel:ivarint len:uvarint)* if S]
//!
//! FLAGS = [W][S][ack_k:2][ts_k:1][crc3:3]
//!          ack_k: 00=8 01=16 10=24 11=32 bits; ts_k: 0=8, 1=16 bits
//! ```
//!
//! `crc3` is the ROHC CRC-3 over the *original* IP+TCP header bytes; the
//! decompressor recomputes it over the reconstructed header. The 8-bit
//! MSN implements the paper's extended master sequence number for
//! duplicate discard after Block ACK retransmission (§3.4, Figure 6).

use hack_inline::InlineVec;
use hack_tcp::{FiveTuple, Ipv4Packet};
use hack_trace::{Event, TraceHandle};

use crate::cidmap::{CidMap, CtxTable};
use crate::context::{compressible_ack, wlsb_k, CompContext, FieldRefs};
use crate::crc::crc3;
use crate::varint::{write_ivarint, write_uvarint};

/// One compressed ACK segment. Inline capacity of 16 bytes covers every
/// SACK-free encoding (worst case 4 fixed + 4 ACK + 2 window + 4
/// timestamp LSBs = 14 bytes); only SACK-laden dup-ACKs spill to the
/// heap.
pub type RohcSegment = InlineVec<u8, 16>;

/// Flag bit layout of the FLAGS octet.
pub(crate) mod flagbits {
    /// Explicit window field present.
    pub const W: u8 = 0x80;
    /// SACK blocks present.
    pub const S: u8 = 0x40;
    /// Two-bit ACK LSB width selector (shift).
    pub const ACK_K_SHIFT: u8 = 4;
    /// Mask for the ACK width selector.
    pub const ACK_K_MASK: u8 = 0x30;
    /// Timestamp LSB width selector (0 = 8 bits, 1 = 16 bits).
    pub const TS_K: u8 = 0x08;
    /// Low three bits: CRC-3 of the original header.
    pub const CRC_MASK: u8 = 0x07;
}

/// Byte widths selectable for the ACK field.
const ACK_K_CHOICES: [u32; 4] = [8, 16, 24, 32];

/// Compressor statistics.
#[derive(Debug, Default, Clone)]
pub struct CompressStats {
    /// ACKs successfully compressed.
    pub compressed: u64,
    /// Total compressed output bytes.
    pub compressed_bytes: u64,
    /// Total original header bytes of the ACKs that were compressed.
    pub original_bytes: u64,
    /// Packets declined (context missing or shape not encodable).
    pub declined: u64,
}

impl CompressStats {
    /// Achieved compression ratio (original / compressed), or 0 when
    /// nothing has been compressed.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.original_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// The client-side compressor.
#[derive(Debug, Default)]
pub struct Compressor {
    contexts: CtxTable<CompContext>,
    /// Per-flow CID cache: MD5 over the 5-tuple runs once per flow
    /// (at first sight), not once per ACK; steady-state lookups go
    /// through the open-addressed [`CidMap`] — O(1) at any flow count.
    cid_cache: CidMap,
    /// Reused header-serialization buffer for the CRC-3 computation:
    /// one warm buffer per compressor instead of a fresh `Vec` per ACK.
    scratch: Vec<u8>,
    stats: CompressStats,
    trace: TraceHandle,
    trace_node: u32,
    trace_now: u64,
}

impl Compressor {
    /// A compressor with no contexts.
    pub fn new() -> Self {
        Compressor::default()
    }

    /// Install the structured-event trace handle; `node` is the station
    /// this compressor runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.trace = trace;
        self.trace_node = node;
    }

    /// Stamp the simulation time (nanoseconds) used for subsequent trace
    /// events. The compressor is sans-IO and has no clock of its own;
    /// the owning driver calls this on entry to each of its handlers.
    pub fn set_trace_clock(&mut self, now_nanos: u64) {
        self.trace_now = now_nanos;
    }

    /// Statistics.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// Number of live contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// The flow's CID, computing the MD5 only on first sight of the
    /// 5-tuple.
    fn cid_of(&mut self, tuple: &FiveTuple) -> u8 {
        if let Some(cid) = self.cid_cache.get(tuple) {
            return cid;
        }
        let cid = crate::md5::cid_for_tuple(&tuple.bytes());
        self.cid_cache.insert(*tuple, cid);
        cid
    }

    /// Drop the flow's context entirely (supervisor-driven refresh): the
    /// next ACK for this tuple declines compression, goes out natively,
    /// and re-seeds a fresh context — the only refresh mechanism HACK
    /// has, since it never sends IR packets (§3.3.2). Returns whether a
    /// context was dropped. Other flows (including a CID-colliding one)
    /// are untouched.
    pub fn drop_context(&mut self, tuple: &FiveTuple) -> bool {
        let cid = self.cid_of(tuple);
        match self.contexts.get(cid) {
            Some(ctx) if &ctx.tuple == tuple => {
                self.contexts.remove(cid);
                true
            }
            _ => false,
        }
    }

    /// A native ACK was *enqueued* for transmission: create the flow's
    /// context if needed, or register the packet as an outstanding
    /// (unconfirmed) reference.
    pub fn observe_native(&mut self, pkt: &Ipv4Packet) {
        let Some(seg) = compressible_ack(pkt) else {
            return;
        };
        let Some(fresh) = CompContext::from_native(pkt) else {
            return;
        };
        let cid = self.cid_of(&fresh.tuple);
        match self.contexts.get_mut(cid) {
            Some(ctx) if ctx.tuple == pkt.five_tuple() => ctx.native_enqueued(pkt, seg),
            Some(_) => {
                // CID collision with a different flow: the new flow stays
                // native-only.
            }
            None => {
                self.contexts.insert(cid, fresh);
                hack_trace::trace_ev!(
                    self.trace,
                    self.trace_now,
                    self.trace_node,
                    Event::RohcCidAlloc {
                        cid: u64::from(cid)
                    }
                );
                hack_trace::trace_ev!(
                    self.trace,
                    self.trace_now,
                    self.trace_node,
                    Event::RohcContextInit {
                        cid: u64::from(cid)
                    }
                );
            }
        }
    }

    /// The driver learned that `pkt` (native or previously compressed)
    /// reached the peer: advance the flow's floor.
    pub fn confirm(&mut self, pkt: &Ipv4Packet) {
        let Some(seg) = compressible_ack(pkt) else {
            return;
        };
        let tuple = pkt.five_tuple();
        let cid = self.cid_of(&tuple);
        if let Some(ctx) = self.contexts.get_mut(cid) {
            if ctx.tuple == tuple {
                ctx.confirmed(&FieldRefs::of(pkt, seg));
            }
        }
    }

    /// Try to compress `pkt`. Returns the encoded segment, or `None`
    /// when the packet must be sent natively.
    pub fn compress(&mut self, pkt: &Ipv4Packet) -> Option<RohcSegment> {
        let Some(seg) = compressible_ack(pkt) else {
            self.stats.declined += 1;
            return None;
        };
        let tuple = pkt.five_tuple();
        let cid = self.cid_of(&tuple);
        let Some(ctx) = self.contexts.get_mut(cid) else {
            self.stats.declined += 1;
            return None;
        };
        let floor = ctx.effective_floor();
        let ts = seg.timestamps();
        // Shape checks: static chain, monotone distances within range.
        let ident_dist = pkt.ident.wrapping_sub(floor.ident);
        let ack_dist = seg.ack - floor.ack;
        let encodable = ctx.tuple == tuple
            && pkt.ttl == ctx.ttl
            && seg.seq == floor.seq
            && ts.is_some() == ctx.has_ts
            && ident_dist < 256
            && ack_dist < 0x8000_0000;
        if !encodable {
            self.stats.declined += 1;
            return None;
        }
        let ack_k = wlsb_k(u64::from(ack_dist), 0, &ACK_K_CHOICES).expect("32 always fits");

        let (ts_k, tsval, tsecr) = match ts {
            Some((v, e)) => {
                let dv = v.wrapping_sub(floor.tsval);
                let de = e.wrapping_sub(floor.tsecr);
                if dv >= 0x8000_0000 || de >= 0x8000_0000 {
                    self.stats.declined += 1;
                    return None;
                }
                if dv < 256 && de < 256 {
                    (8u32, v, e)
                } else if dv < 65_536 && de < 65_536 {
                    (16, v, e)
                } else {
                    self.stats.declined += 1;
                    return None;
                }
            }
            None => (8, 0, 0),
        };

        let window_explicit = !ctx.window_omittable(seg.window);
        ctx.last_emitted_window = Some(seg.window);
        let sack = seg.sack_blocks();

        let mut flags = 0u8;
        if window_explicit {
            flags |= flagbits::W;
        }
        if sack.is_some() {
            flags |= flagbits::S;
        }
        let ack_k_bits = match ack_k {
            8 => 0u8,
            16 => 1,
            24 => 2,
            _ => 3,
        };
        flags |= ack_k_bits << flagbits::ACK_K_SHIFT;
        if ts_k == 16 {
            flags |= flagbits::TS_K;
        }
        pkt.header_bytes_into(&mut self.scratch);
        flags |= crc3(&self.scratch) & flagbits::CRC_MASK;

        let msn = ctx.msn.wrapping_add(1);
        ctx.msn = msn;
        hack_trace::trace_ev!(
            self.trace,
            self.trace_now,
            self.trace_node,
            Event::RohcContextUpdate {
                cid: u64::from(cid),
                msn: u32::from(msn),
            }
        );

        let mut out = RohcSegment::new();
        out.push(cid);
        out.push(flags);
        out.push(msn);
        out.push(pkt.ident as u8);
        // ACK LSBs, big-endian, ack_k/8 bytes.
        let ack_bytes = (ack_k / 8) as usize;
        out.extend_from_slice(&seg.ack.0.to_be_bytes()[4 - ack_bytes..]);
        if window_explicit {
            out.extend_from_slice(&seg.window.to_be_bytes());
        }
        if ctx.has_ts {
            let ts_bytes = (ts_k / 8) as usize;
            out.extend_from_slice(&tsval.to_be_bytes()[4 - ts_bytes..]);
            out.extend_from_slice(&tsecr.to_be_bytes()[4 - ts_bytes..]);
        }
        if let Some(blocks) = sack {
            out.push(u8::try_from(blocks.len().min(4)).expect("≤4"));
            for &(start, end) in blocks.iter().take(4) {
                write_ivarint(&mut out, i64::from(start.dist_from(seg.ack) as i32));
                write_uvarint(&mut out, u64::from(end - start));
            }
        }

        self.stats.compressed += 1;
        self.stats.compressed_bytes += out.len() as u64;
        self.stats.original_bytes += u64::from(pkt.wire_len());
        Some(out)
    }
}

/// Assemble compressed segments into a blob: `count` followed by the
/// concatenated segments (the frame the NIC appends to an LL ACK).
/// Generic over the segment representation so both `Vec<u8>` and
/// [`RohcSegment`] slices work.
pub fn build_blob<S: AsRef<[u8]>>(segments: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    build_blob_into(&mut out, segments);
    out
}

/// [`build_blob`] into a caller-provided (typically pooled) buffer.
pub fn build_blob_into<S: AsRef<[u8]>>(out: &mut Vec<u8>, segments: &[S]) {
    assert!(segments.len() <= 255, "blob segment count overflow");
    out.clear();
    out.reserve(1 + segments.iter().map(|s| s.as_ref().len()).sum::<usize>());
    out.push(segments.len() as u8);
    for s in segments {
        out.extend_from_slice(s.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{flags as tf, Ipv4Addr, TcpOption, TcpSegment, TcpSeq, Transport};

    fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 40000,
                dst_port: 5001,
                seq: TcpSeq(7777),
                ack: TcpSeq(ackno),
                flags: tf::ACK,
                window: 1024,
                options: vec![TcpOption::Timestamps {
                    tsval: ts,
                    tsecr: ts.wrapping_sub(3),
                }]
                .into(),
                payload_len: 0,
            }),
        }
    }

    #[test]
    fn no_context_declines() {
        let mut c = Compressor::new();
        assert!(c.compress(&ack(1000, 1, 10)).is_none());
        assert_eq!(c.stats().declined, 1);
    }

    #[test]
    fn near_floor_acks_are_compact() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        // 2920 ahead of the floor: 16-bit ACK LSBs, 8-bit timestamps.
        let s = c.compress(&ack(3920, 2, 11)).unwrap();
        // CID+FLAGS+MSN+IDENT + ACK(2) + TSV(1)+TSE(1) = 8 bytes.
        assert_eq!(s.len(), 8, "{s:?}");
        assert!(c.stats().ratio() > 6.0);
    }

    #[test]
    fn segments_do_not_chain() {
        // Each segment is floor-relative: compressing N packets without
        // confirmations keeps working (k grows as distance grows).
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        for i in 1..=100u32 {
            let s = c
                .compress(&ack(1000 + i * 2920, 1 + i as u16, 10 + i))
                .expect("in-profile");
            assert!(s.len() <= 12);
        }
        assert_eq!(c.stats().compressed, 100);
    }

    #[test]
    fn confirmation_shrinks_encoding() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        // Push the distance out: needs 24-bit ACK LSBs.
        let far = ack(1000 + 5_000_000, 2, 11);
        let s_far = c.compress(&far).unwrap();
        // Confirm it: the floor advances, and the next nearby ACK is
        // compact again.
        c.confirm(&far);
        let s_near = c.compress(&ack(1000 + 5_002_920, 3, 12)).unwrap();
        assert!(s_near.len() < s_far.len());
    }

    #[test]
    fn ident_jump_declines_until_refresh() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        // ident jumped by 300: outside the 8-bit ident window.
        assert!(c.compress(&ack(3920, 301, 11)).is_none());
        // A native refresh (new outstanding ref) resynchronizes.
        c.observe_native(&ack(3920, 301, 11));
        assert!(c.compress(&ack(6840, 302, 12)).is_some());
    }

    #[test]
    fn seq_change_declines() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        let mut p = ack(3920, 2, 11);
        if let Transport::Tcp(t) = &mut p.transport {
            t.seq = TcpSeq(8888); // client sent data meanwhile
        }
        assert!(c.compress(&p).is_none());
    }

    #[test]
    fn data_packet_declines() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        let mut p = ack(3920, 2, 11);
        if let Transport::Tcp(t) = &mut p.transport {
            t.payload_len = 100;
        }
        assert!(c.compress(&p).is_none());
    }

    #[test]
    fn msn_increments_per_segment() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        let s1 = c.compress(&ack(2000, 2, 11)).unwrap();
        let s2 = c.compress(&ack(3000, 3, 12)).unwrap();
        assert_eq!(s1[2], 1);
        assert_eq!(s2[2], 2);
    }

    #[test]
    fn window_change_sets_flag() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        let mut p = ack(2000, 2, 11);
        if let Transport::Tcp(t) = &mut p.transport {
            t.window = 2048;
        }
        let s = c.compress(&p).unwrap();
        assert!(s[1] & flagbits::W != 0);
        // The next ACK reverts to the floor's window, but the previous
        // *emission* carried 2048 — the peer might hold either, so the
        // window must stay explicit.
        let s2 = c.compress(&ack(3000, 3, 12)).unwrap();
        assert!(s2[1] & flagbits::W != 0);
        // Once emissions and floor agree, the field is omitted.
        let steady = ack(4000, 4, 13);
        c.confirm(&steady);
        let s3 = c.compress(&ack(5000, 5, 14)).unwrap();
        assert!(s3[1] & flagbits::W == 0);
    }

    #[test]
    fn dup_ack_with_sack_compresses() {
        let mut c = Compressor::new();
        c.observe_native(&ack(1000, 1, 10));
        let mut p = ack(1000, 2, 11); // delta 0: duplicate ACK
        if let Transport::Tcp(t) = &mut p.transport {
            t.options
                .push(TcpOption::Sack(vec![(TcpSeq(2460), TcpSeq(3920))]));
        }
        let s = c.compress(&p).expect("dup ACKs must be expressible");
        assert!(s[1] & flagbits::S != 0);
    }

    #[test]
    fn blob_assembly() {
        let blob = build_blob(&[vec![1, 2], vec![3]]);
        assert_eq!(blob, vec![2, 1, 2, 3]);
        assert_eq!(build_blob::<Vec<u8>>(&[]), vec![0]);
        let mut pooled = Vec::with_capacity(64);
        build_blob_into(&mut pooled, &[vec![9u8, 8], vec![7]]);
        assert_eq!(pooled, vec![2, 9, 8, 7]);
    }
}
