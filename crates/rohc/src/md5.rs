//! MD5 (RFC 1321), implemented from scratch.
//!
//! HACK uses MD5 only to derive context identifiers: *"The client's
//! driver on receiving a TCP ACK for a new flow computes the MD5 hash
//! over the ACK's 5-tuple and selects the lowest byte as the CID"*
//! (§3.3.2). Collision resistance is irrelevant here — only stable,
//! well-distributed byte values — but the implementation is spec-exact
//! and validated against the RFC 1321 test suite.

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

fn md5_block(state: &mut [u32; 4], chunk: &[u8]) {
    let mut m = [0u32; 16];
    for (i, w) in chunk.chunks_exact(4).enumerate() {
        m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    }
    let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => ((b & c) | (!b & d), i),
            1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
            2 => (b ^ c ^ d, (3 * i + 5) % 16),
            _ => (c ^ (b | !d), (7 * i) % 16),
        };
        let tmp = d;
        d = c;
        c = b;
        let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
        b = b.wrapping_add(sum.rotate_left(S[i]));
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
}

/// Compute the MD5 digest of `data`.
///
/// Heap-free: full 64-byte blocks are compressed straight out of the
/// input slice; only the tail plus padding goes through a 128-byte stack
/// buffer (the padded tail spans at most two blocks).
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut state: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

    let full = data.len() - data.len() % 64;
    for chunk in data[..full].chunks_exact(64) {
        md5_block(&mut state, chunk);
    }

    // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
    let tail = &data[full..];
    let mut pad = [0u8; 128];
    pad[..tail.len()].copy_from_slice(tail);
    pad[tail.len()] = 0x80;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let padded = if tail.len() < 56 { 64 } else { 128 };
    pad[padded - 8..padded].copy_from_slice(&bit_len.to_le_bytes());
    for chunk in pad[..padded].chunks_exact(64) {
        md5_block(&mut state, chunk);
    }

    let [a0, b0, c0, d0] = state;
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// HACK's context identifier: the lowest byte of the MD5 digest over the
/// flow 5-tuple (§3.3.2 item 2). "Lowest" = least-significant byte of
/// the digest interpreted per RFC 1321's output order, i.e. the first
/// output byte of the final word — we take `digest[15]`, the last byte,
/// matching the little-endian low byte of the trailing word `d0`.
pub fn cid_for_tuple(tuple_bytes: &[u8]) -> u8 {
    md5(tuple_bytes)[15]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 16]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&str, &str); 7] = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(md5(input.as_bytes())), want, "md5({input:?})");
        }
    }

    #[test]
    fn multi_block_input() {
        // 200 bytes spans multiple 64-byte blocks including padding edge.
        let data = vec![0x42u8; 200];
        let d = md5(&data);
        // Self-consistency: stable and length-sensitive.
        assert_eq!(d, md5(&[0x42u8; 200]));
        assert_ne!(d, md5(&vec![0x42u8; 201]));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary all hash distinctly.
        let mut seen = std::collections::HashSet::new();
        for len in 54..=66 {
            assert!(seen.insert(md5(&vec![7u8; len])));
        }
    }

    #[test]
    fn cid_is_deterministic_and_spread() {
        let mut counts = [0u32; 256];
        for i in 0..2000u32 {
            let mut t = [0u8; 13];
            t[..4].copy_from_slice(&i.to_be_bytes());
            counts[usize::from(cid_for_tuple(&t))] += 1;
        }
        // Determinism.
        assert_eq!(cid_for_tuple(&[1; 13]), cid_for_tuple(&[1; 13]));
        // Spread: no bucket grossly overloaded (expected ~7.8).
        assert!(counts.iter().all(|&c| c < 30));
        // Most buckets touched.
        assert!(counts.iter().filter(|&&c| c > 0).count() > 200);
    }
}
