//! ROHC CRCs (RFC 3095 §5.9.1–5.9.2): CRC-3, CRC-7 and CRC-8 over
//! arbitrary byte strings.
//!
//! ROHC validates decompressed headers with small CRCs computed over the
//! *original* uncompressed header: CRC-8 for IR packets, CRC-7/CRC-3 for
//! compressed (CO) packets. Our HACK profile uses CRC-3 per compressed
//! ACK (folded into the flags octet) exactly as ROHC CO packets do.
//!
//! Polynomials (RFC 3095):
//! * CRC-3: x³ + x + 1, initial value 0b111
//! * CRC-7: x⁷ + x⁶ + x³ + x² + x + 1, initial value 0x7F
//! * CRC-8: x⁸ + x² + x + 1, initial value 0xFF
//!
//! Bits are processed LSB-first, as specified.

fn crc_generic(data: &[u8], width: u8, poly: u8, init: u8) -> u8 {
    let mask = (1u16 << width) - 1;
    let mut crc = u16::from(init) & mask;
    for &byte in data {
        crc = crc_byte(crc, byte, poly);
    }
    (crc & mask) as u8
}

const fn crc_byte(state: u16, byte: u8, poly: u8) -> u16 {
    let mut crc = state;
    let mut b = byte;
    let mut i = 0;
    while i < 8 {
        let bit = (crc ^ b as u16) & 1;
        crc >>= 1;
        if bit != 0 {
            crc ^= poly as u16;
        }
        b >>= 1;
        i += 1;
    }
    crc
}

/// Full CRC-3 state-transition table: `CRC3_TABLE[state][byte]` is the
/// 3-bit state after folding one input byte. The state space is only 8
/// values, so the whole function fits in a 2 KiB table and the per-byte
/// cost drops from 8 shift/xor steps to a single load.
const CRC3_TABLE: [[u8; 256]; 8] = {
    let mut t = [[0u8; 256]; 8];
    let mut s = 0;
    while s < 8 {
        let mut b = 0;
        while b < 256 {
            t[s][b] = crc_byte(s as u16, b as u8, 0b110) as u8;
            b += 1;
        }
        s += 1;
    }
    t
};

/// ROHC CRC-3 (values 0–7).
pub fn crc3(data: &[u8]) -> u8 {
    // x³+x+1 => reversed representation 0b110 for a 3-bit LSB-first CRC.
    let mut crc = 0b111u8;
    for &byte in data {
        crc = CRC3_TABLE[usize::from(crc)][usize::from(byte)];
    }
    crc
}

/// ROHC CRC-7 (values 0–127).
pub fn crc7(data: &[u8]) -> u8 {
    // x⁷+x⁶+x³+x²+x+1 => reversed representation 0x79.
    crc_generic(data, 7, 0x79, 0x7F)
}

/// ROHC CRC-8 (values 0–255).
pub fn crc8(data: &[u8]) -> u8 {
    // x⁸+x²+x+1 => reversed representation 0xE0.
    crc_generic(data, 8, 0xE0, 0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc3_table_matches_bitwise_reference_exhaustively() {
        // Every (state, byte) transition agrees with the bit-serial
        // algorithm, so table-driven crc3 == the original definition.
        for s in 0..8u16 {
            for b in 0..=255u8 {
                assert_eq!(
                    u16::from(CRC3_TABLE[usize::from(s)][usize::from(b)]),
                    crc_byte(s, b, 0b110),
                    "state {s} byte {b}"
                );
            }
        }
        // And end-to-end on a multi-byte input.
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            assert_eq!(crc3(&data), crc_generic(&data, 3, 0b110, 0b111));
        }
    }

    #[test]
    fn empty_input_yields_init() {
        assert_eq!(crc3(&[]), 0b111);
        assert_eq!(crc7(&[]), 0x7F);
        assert_eq!(crc8(&[]), 0xFF);
    }

    #[test]
    fn deterministic_and_length_sensitive() {
        let a = b"hierarchical acks";
        assert_eq!(crc8(a), crc8(a));
        assert_ne!(crc8(a), crc8(&a[..a.len() - 1]));
        assert_eq!(crc7(a), crc7(a));
        assert_eq!(crc3(a), crc3(a));
    }

    #[test]
    fn values_fit_width() {
        for i in 0..=255u8 {
            let d = [i, i.wrapping_mul(31), 0x5A];
            assert!(crc3(&d) < 8);
            assert!(crc7(&d) < 128);
        }
    }

    #[test]
    fn single_bit_flips_detected_by_crc8() {
        let data = vec![0xA5u8; 52];
        let base = crc8(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc8(&d), base, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn crc3_catches_most_flips() {
        // CRC-3 detects any single-bit error (it has x+1 as a factor...
        // actually it detects all odd-weight errors); verify single-bit
        // coverage empirically on a 52-byte header-sized buffer.
        let data = vec![0x3Cu8; 52];
        let base = crc3(&data);
        let mut caught = 0;
        let mut total = 0;
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                total += 1;
                if crc3(&d) != base {
                    caught += 1;
                }
            }
        }
        assert_eq!(caught, total, "CRC-3 must catch all single-bit errors");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut counts3 = [0u32; 8];
        for i in 0..4096u32 {
            counts3[usize::from(crc3(&i.to_be_bytes()))] += 1;
        }
        for &c in &counts3 {
            assert!((312..712).contains(&c), "skewed CRC-3 bucket: {c}");
        }
    }
}
