//! Compression contexts: the per-flow state shared (by construction,
//! never by communication) between compressor and decompressor.
//!
//! ## Why W-LSB and not delta chains
//!
//! Compressed ACKs ride link-layer acknowledgments, which can *overtake*
//! native ACKs still queued at the MAC — and blobs or natives can be
//! lost independently. The decompressor's reference for each field is
//! therefore only known to lie somewhere between the compressor's
//! **floor** (the oldest value that could still be the peer's reference)
//! and its newest emission. ROHC's window-based LSB encoding handles
//! exactly this: transmit enough low-order bits of the *value* that any
//! reference in the window decodes it unambiguously. All the dynamic
//! fields HACK compresses (ACK number, timestamps, IP ident) are
//! monotone non-decreasing, so decoding is forward-only:
//! `v = ref + ((lsbs − ref) mod 2^k)`.
//!
//! The compressor maintains the floor from the driver's confirmation
//! signals: a native ACK is outstanding from enqueue until the MAC
//! reports it delivered; a compressed ACK is outstanding until a §3.4
//! confirmation. The floor is the oldest outstanding snapshot.

use std::collections::VecDeque;

use hack_tcp::{FiveTuple, Ipv4Packet, TcpSegment, TcpSeq, Transport};

use crate::md5::cid_for_tuple;

/// A snapshot of the dynamic header fields of one ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldRefs {
    /// TCP acknowledgment number.
    pub ack: TcpSeq,
    /// TCP sequence number (effectively static for a pure receiver).
    pub seq: TcpSeq,
    /// On-wire window field.
    pub window: u16,
    /// Timestamp value (0 when the flow has no timestamps).
    pub tsval: u32,
    /// Timestamp echo.
    pub tsecr: u32,
    /// IP identification.
    pub ident: u16,
}

impl FieldRefs {
    /// Extract from a pure-ACK packet.
    pub fn of(pkt: &Ipv4Packet, seg: &TcpSegment) -> FieldRefs {
        let (tsval, tsecr) = seg.timestamps().unwrap_or((0, 0));
        FieldRefs {
            ack: seg.ack,
            seq: seg.seq,
            window: seg.window,
            tsval,
            tsecr,
            ident: pkt.ident,
        }
    }

    /// Component-wise forward max (fields are monotone, so this is the
    /// newer snapshot per field).
    pub fn max_with(&mut self, other: &FieldRefs) {
        if other.ack.ge(self.ack) {
            self.ack = other.ack;
        }
        if other.seq.ge(self.seq) {
            self.seq = other.seq;
        }
        if other.tsval.wrapping_sub(self.tsval) < 0x8000_0000 {
            self.tsval = other.tsval;
        }
        if other.tsecr.wrapping_sub(self.tsecr) < 0x8000_0000 {
            self.tsecr = other.tsecr;
        }
        if other.ident.wrapping_sub(self.ident) < 0x8000 {
            self.ident = other.ident;
        }
        self.window = other.window;
    }
}

/// Shared static context plus the compressor-side window state.
#[derive(Debug, Clone)]
pub struct CompContext {
    /// The flow (ACK direction).
    pub tuple: FiveTuple,
    /// Cached TTL (static chain).
    pub ttl: u8,
    /// Whether the flow carries the timestamps option.
    pub has_ts: bool,
    /// Oldest reference the decompressor could still hold.
    pub floor: FieldRefs,
    /// Snapshots of natives enqueued but not yet confirmed delivered.
    pub outstanding: VecDeque<FieldRefs>,
    /// Window value of the most recent compressed emission (unlike the
    /// other fields, the window is not monotone, so omitting it is only
    /// safe when every reference the peer could hold equals the current
    /// value).
    pub last_emitted_window: Option<u16>,
    /// Master sequence number of the last compressed packet.
    pub msn: u8,
}

/// Cap on tracked outstanding natives; beyond this the oldest are folded
/// into the floor (conservatively assuming delivery — a wrong assumption
/// surfaces as a CRC failure and heals on the next native).
const OUTSTANDING_CAP: usize = 64;

impl CompContext {
    /// Seed a context from a natively transmitted pure ACK.
    pub fn from_native(pkt: &Ipv4Packet) -> Option<CompContext> {
        let Transport::Tcp(seg) = &pkt.transport else {
            return None;
        };
        if !seg.is_pure_ack() {
            return None;
        }
        Some(CompContext {
            tuple: pkt.five_tuple(),
            ttl: pkt.ttl,
            has_ts: seg.timestamps().is_some(),
            floor: FieldRefs::of(pkt, seg),
            outstanding: VecDeque::new(),
            last_emitted_window: None,
            msn: 0,
        })
    }

    /// Is it safe to omit the explicit window field for `window`? Only
    /// when every reference the decompressor could hold carries the same
    /// value.
    pub fn window_omittable(&self, window: u16) -> bool {
        self.floor.window == window
            && self.outstanding.iter().all(|o| o.window == window)
            && self.last_emitted_window.is_none_or(|w| w == window)
    }

    /// The flow's CID (lowest byte of MD5 over the 5-tuple, §3.3.2).
    pub fn cid(&self) -> u8 {
        cid_for_tuple(&self.tuple.bytes())
    }

    /// A native ACK was enqueued for transmission: it becomes an
    /// outstanding (unconfirmed) reference.
    pub fn native_enqueued(&mut self, pkt: &Ipv4Packet, seg: &TcpSegment) {
        if self.outstanding.len() == OUTSTANDING_CAP {
            if let Some(old) = self.outstanding.pop_front() {
                self.floor.max_with(&old);
            }
        }
        self.outstanding.push_back(FieldRefs::of(pkt, seg));
        if let Some((_, _)) = seg.timestamps() {
            self.has_ts = true;
        }
    }

    /// A previously enqueued native (or a compressed ACK, per §3.4
    /// confirmation) is now known to have reached the peer: advance the
    /// floor and drop confirmed outstanding entries.
    pub fn confirmed(&mut self, refs: &FieldRefs) {
        self.floor.max_with(refs);
        // Outstanding entries are FIFO in transmission order; everything
        // sent up to (and including) the confirmed packet is no longer a
        // possible stale reference. IP ident is the per-packet serial.
        while let Some(front) = self.outstanding.front() {
            let sent_no_later = refs.ident.wrapping_sub(front.ident) < 0x8000;
            if sent_no_later {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
    }

    /// The oldest reference the peer might still hold — the window base
    /// for k-selection.
    pub fn effective_floor(&self) -> FieldRefs {
        self.outstanding.front().copied().unwrap_or(self.floor)
    }
}

/// Decompressor-side context: the current reference values.
#[derive(Debug, Clone)]
pub struct DecompContext {
    /// The flow.
    pub tuple: FiveTuple,
    /// Cached TTL.
    pub ttl: u8,
    /// Whether the flow carries timestamps.
    pub has_ts: bool,
    /// Current reference values.
    pub refs: FieldRefs,
    /// Master sequence number of the last accepted packet.
    pub msn: u8,
    /// Whether `msn` anchors the duplicate-discard window. Cleared by
    /// every native refresh: a corrupted segment that slips past CRC-3
    /// can plant a bogus MSN, and without this reset the window would
    /// discard valid segments for up to 128 MSNs. A native ACK is ground
    /// truth, so it re-syncs MSN tracking along with the field refs.
    pub msn_valid: bool,
}

impl DecompContext {
    /// The flow's CID.
    pub fn cid(&self) -> u8 {
        cid_for_tuple(&self.tuple.bytes())
    }

    /// Seed from a natively received pure ACK.
    pub fn from_native(pkt: &Ipv4Packet) -> Option<DecompContext> {
        let Transport::Tcp(seg) = &pkt.transport else {
            return None;
        };
        if !seg.is_pure_ack() {
            return None;
        }
        Some(DecompContext {
            tuple: pkt.five_tuple(),
            ttl: pkt.ttl,
            has_ts: seg.timestamps().is_some(),
            refs: FieldRefs::of(pkt, seg),
            msn: 0,
            msn_valid: false,
        })
    }

    /// Refresh from a natively received ACK (arrival order is the
    /// decompressor's reality; regression is fine — W-LSB windows cover
    /// it).
    pub fn refresh_native(&mut self, pkt: &Ipv4Packet, seg: &TcpSegment) {
        self.refs = FieldRefs::of(pkt, seg);
        self.ttl = pkt.ttl;
        if seg.timestamps().is_some() {
            self.has_ts = true;
        }
        self.msn_valid = false;
    }
}

/// Extract the TCP segment from a packet, if it is a compressible pure
/// ACK.
pub fn compressible_ack(pkt: &Ipv4Packet) -> Option<&TcpSegment> {
    match &pkt.transport {
        Transport::Tcp(t) if t.is_pure_ack() => Some(t),
        _ => None,
    }
}

/// Forward-only W-LSB decode: the smallest `v ≥ ref` whose low `k` bits
/// equal `lsbs`.
pub fn wlsb_decode(reference: u64, lsbs: u64, k: u32) -> u64 {
    debug_assert!(k <= 64);
    if k == 64 {
        return lsbs;
    }
    let modulus = 1u64 << k;
    let delta = lsbs.wrapping_sub(reference) & (modulus - 1);
    reference.wrapping_add(delta)
}

/// The number of bits needed so any reference in `[floor, value]`
/// decodes `value`: `value − floor < 2^k`.
pub fn wlsb_k(value: u64, floor: u64, choices: &[u32]) -> Option<u32> {
    let dist = value.wrapping_sub(floor);
    choices
        .iter()
        .copied()
        .find(|&k| k == 64 || dist < (1u64 << k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tcp::{flags, Ipv4Addr, TcpOption};

    fn ack_packet(ack: u32, ident: u16, tsval: u32) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 40000,
                dst_port: 5001,
                seq: TcpSeq(7777),
                ack: TcpSeq(ack),
                flags: flags::ACK,
                window: 1024,
                options: vec![TcpOption::Timestamps {
                    tsval,
                    tsecr: tsval.wrapping_sub(3),
                }]
                .into(),
                payload_len: 0,
            }),
        }
    }

    #[test]
    fn wlsb_decode_exact_when_in_window() {
        for (reference, value, k) in [
            (100u64, 100u64, 8u32),
            (100, 355, 8),
            (100, 100 + 255, 8),
            (0, 65_535, 16),
            (1_000_000, 1_093_440, 24),
            (u64::from(u32::MAX) - 5, u64::from(u32::MAX) + 10, 8),
        ] {
            let lsbs = value & ((1u64 << k) - 1);
            assert_eq!(
                wlsb_decode(reference, lsbs, k),
                value,
                "ref={reference} v={value} k={k}"
            );
        }
    }

    #[test]
    fn wlsb_decode_any_ref_in_window() {
        // Every reference in [floor, value] must decode correctly when k
        // covers value − floor.
        let value = 1_234_567u64;
        let floor = value - 60_000;
        let k = wlsb_k(value, floor, &[8, 16, 24, 32]).unwrap();
        assert_eq!(k, 16);
        for reference in (floor..=value).step_by(777) {
            let lsbs = value & ((1u64 << k) - 1);
            assert_eq!(wlsb_decode(reference, lsbs, k), value);
        }
    }

    #[test]
    fn wlsb_k_picks_minimal() {
        assert_eq!(wlsb_k(100, 100, &[8, 16, 24, 32]), Some(8));
        assert_eq!(wlsb_k(400, 100, &[8, 16, 24, 32]), Some(16));
        assert_eq!(wlsb_k(100_000, 100, &[8, 16, 24, 32]), Some(24));
        assert_eq!(wlsb_k(u64::from(u32::MAX), 0, &[8, 16, 24, 32]), Some(32));
        assert_eq!(wlsb_k(1 << 40, 0, &[8, 16]), None);
    }

    #[test]
    fn context_floor_tracks_outstanding() {
        let p0 = ack_packet(1000, 1, 10);
        let mut ctx = CompContext::from_native(&p0).unwrap();
        assert_eq!(ctx.effective_floor().ack, TcpSeq(1000));

        // Two natives enqueued: the floor is the oldest outstanding.
        let p1 = ack_packet(2000, 2, 11);
        let p2 = ack_packet(3000, 3, 12);
        let (s1, s2) = (
            compressible_ack(&p1).unwrap().clone(),
            compressible_ack(&p2).unwrap().clone(),
        );
        ctx.native_enqueued(&p1, &s1);
        ctx.native_enqueued(&p2, &s2);
        assert_eq!(ctx.effective_floor().ack, TcpSeq(2000));

        // Confirming the first advances the floor to it and drops it.
        ctx.confirmed(&FieldRefs::of(&p1, &s1));
        assert_eq!(ctx.effective_floor().ack, TcpSeq(3000));
        ctx.confirmed(&FieldRefs::of(&p2, &s2));
        assert_eq!(ctx.effective_floor().ack, TcpSeq(3000));
        assert!(ctx.outstanding.is_empty());
    }

    #[test]
    fn overflow_folds_into_floor() {
        let p0 = ack_packet(0, 0, 0);
        let mut ctx = CompContext::from_native(&p0).unwrap();
        for i in 0..80u32 {
            let p = ack_packet(1000 + i * 10, 1 + i as u16, i);
            let s = compressible_ack(&p).unwrap().clone();
            ctx.native_enqueued(&p, &s);
        }
        assert_eq!(ctx.outstanding.len(), OUTSTANDING_CAP);
        assert!(ctx.floor.ack.gt(TcpSeq(0)), "floor advanced by folding");
    }

    #[test]
    fn field_refs_max_is_forward() {
        let p1 = ack_packet(1000, 5, 10);
        let p2 = ack_packet(3000, 7, 12);
        let s1 = compressible_ack(&p1).unwrap().clone();
        let s2 = compressible_ack(&p2).unwrap().clone();
        let mut a = FieldRefs::of(&p1, &s1);
        let b = FieldRefs::of(&p2, &s2);
        a.max_with(&b);
        assert_eq!(a.ack, TcpSeq(3000));
        assert_eq!(a.ident, 7);
        // Maxing with an older snapshot is a no-op for monotone fields.
        let c = FieldRefs::of(&p1, &s1);
        a.max_with(&c);
        assert_eq!(a.ack, TcpSeq(3000));
        assert_eq!(a.ident, 7);
    }

    #[test]
    fn cid_is_stable() {
        let p = ack_packet(1, 1, 1);
        let ctx = CompContext::from_native(&p).unwrap();
        assert_eq!(ctx.cid(), cid_for_tuple(&p.five_tuple().bytes()));
    }
}
