//! The HACK-profile decompressor (AP-side driver component).
//!
//! Parses the blob extracted from an augmented LL ACK, reconstitutes
//! full IP+TCP ACK packets byte-exactly via forward W-LSB decoding,
//! validates them with the ROHC CRC-3 carried in the flags octet, and
//! discards duplicates by master sequence number — the mechanism that
//! makes the client's blob retention (§3.4, Figure 6) safe.
//!
//! Because every segment is encoded against the compressor's floor (a
//! value guaranteed not to be newer than any reference this side could
//! hold), blobs that overtake queued native ACKs, arrive duplicated, or
//! skip lost predecessors all decode correctly. A genuine
//! desynchronization (e.g. a dropped native the compressor folded into
//! its floor) surfaces as a CRC failure and heals on the next native
//! ACK, satisfying the paper's "must not be persistent" requirement.

use hack_tcp::{flags as tcpflags, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};
use hack_trace::{Event, TraceHandle};

use crate::cidmap::{CidMap, CtxTable};
use crate::compress::flagbits;
use crate::context::{compressible_ack, wlsb_decode, DecompContext, FieldRefs};
use crate::crc::crc3;
use crate::varint::{read_ivarint, read_uvarint};

/// Why one segment failed to decompress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Byte-level parse failure (truncated field, bad count).
    Malformed,
    /// No context for the CID.
    NoContext,
    /// The reconstructed header failed CRC validation (context desync).
    BadCrc,
}

/// Result of decompressing one blob.
#[derive(Debug, Default)]
pub struct BlobResult {
    /// Successfully reconstituted ACK packets, in blob order.
    pub packets: Vec<Ipv4Packet>,
    /// Segments discarded as duplicates by master sequence number.
    pub duplicates: u32,
    /// Segments that failed (see [`DecompressError`]).
    pub errors: Vec<DecompressError>,
}

/// Decompressor statistics.
#[derive(Debug, Default, Clone)]
pub struct DecompressStats {
    /// Packets reconstituted.
    pub decompressed: u64,
    /// Duplicate segments discarded (retention + MSN working as designed).
    pub duplicates: u64,
    /// CRC failures observed.
    pub crc_failures: u64,
    /// Segments with no matching context.
    pub no_context: u64,
    /// Malformed segments.
    pub malformed: u64,
}

impl DecompressStats {
    /// Fold another decompressor's counters into this one — aggregation
    /// across the per-AP decompressors of a multi-BSS world.
    pub fn merge(&mut self, other: &DecompressStats) {
        self.decompressed += other.decompressed;
        self.duplicates += other.duplicates;
        self.crc_failures += other.crc_failures;
        self.no_context += other.no_context;
        self.malformed += other.malformed;
    }
}

/// The AP-side decompressor.
#[derive(Debug, Default)]
pub struct Decompressor {
    contexts: CtxTable<DecompContext>,
    /// Per-flow CID cache — MD5 once per flow, not per native ACK (the
    /// compressed path carries the CID on the wire already); lookups go
    /// through the open-addressed [`CidMap`].
    cid_cache: CidMap,
    /// Reused header-serialization buffer for CRC-3 validation: one
    /// warm buffer per decompressor instead of a fresh `Vec` per
    /// reconstructed segment.
    scratch: Vec<u8>,
    stats: DecompressStats,
    trace: TraceHandle,
    trace_node: u32,
    trace_now: u64,
}

/// Stable wire code for a failure class (the `reason` payload of
/// [`Event::RohcDecompressFail`]).
pub fn decompress_error_code(e: DecompressError) -> u32 {
    match e {
        DecompressError::Malformed => 0,
        DecompressError::NoContext => 1,
        DecompressError::BadCrc => 2,
    }
}

impl Decompressor {
    /// A decompressor with no contexts.
    pub fn new() -> Self {
        Decompressor::default()
    }

    /// Install the structured-event trace handle; `node` is the station
    /// this decompressor runs on.
    pub fn set_trace(&mut self, trace: TraceHandle, node: u32) {
        self.trace = trace;
        self.trace_node = node;
    }

    /// Stamp the simulation time (nanoseconds) used for subsequent trace
    /// events (the decompressor is sans-IO; the driver owns the clock).
    pub fn set_trace_clock(&mut self, now_nanos: u64) {
        self.trace_now = now_nanos;
    }

    /// Statistics.
    pub fn stats(&self) -> &DecompressStats {
        &self.stats
    }

    /// Number of live contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Drop the flow's context entirely (supervisor-driven refresh); the
    /// next native ACK from the flow re-seeds it. Returns whether a
    /// context was dropped. Other flows sharing this decompressor are
    /// untouched.
    pub fn drop_context(&mut self, tuple: &hack_tcp::FiveTuple) -> bool {
        let cid = self
            .cid_cache
            .get(tuple)
            .unwrap_or_else(|| crate::md5::cid_for_tuple(&tuple.bytes()));
        match self.contexts.get(cid) {
            Some(ctx) if &ctx.tuple == tuple => {
                self.contexts.remove(cid);
                true
            }
            _ => false,
        }
    }

    /// A native TCP ACK arrived from the client: create or refresh its
    /// context (the AP "stores the necessary state for the new context
    /// and assigns it the correct CID", §3.3.2).
    pub fn observe_native(&mut self, pkt: &Ipv4Packet) {
        let Some(seg) = compressible_ack(pkt) else {
            return;
        };
        let Some(fresh) = DecompContext::from_native(pkt) else {
            return;
        };
        let cid = match self.cid_cache.get(&fresh.tuple) {
            Some(cid) => cid,
            None => {
                let cid = fresh.cid();
                self.cid_cache.insert(fresh.tuple, cid);
                cid
            }
        };
        match self.contexts.get_mut(cid) {
            Some(ctx) if ctx.tuple == pkt.five_tuple() => ctx.refresh_native(pkt, seg),
            Some(_) => {}
            None => {
                self.contexts.insert(cid, fresh);
                hack_trace::trace_ev!(
                    self.trace,
                    self.trace_now,
                    self.trace_node,
                    Event::RohcContextInit {
                        cid: u64::from(cid)
                    }
                );
            }
        }
    }

    /// Decompress a full blob (`count` + segments) into an owned
    /// [`BlobResult`]. Convenience wrapper over [`Decompressor::decode`]
    /// — the hot path (the simulator's AP driver) iterates the cursor
    /// directly and never materializes the packet `Vec`.
    pub fn decompress_blob(&mut self, blob: &[u8]) -> BlobResult {
        let mut res = BlobResult::default();
        for item in self.decode(blob) {
            match item {
                BlobItem::Packet(p) => res.packets.push(p),
                BlobItem::Duplicate => res.duplicates += 1,
                BlobItem::Fail(e) => res.errors.push(e),
            }
        }
        res
    }

    /// Streaming zero-copy decode: a cursor that yields one
    /// [`BlobItem`] at a time, parsing W-LSB/varint fields straight out
    /// of `blob` (the delivered MPDU buffer). No intermediate segment
    /// buffers, no packet `Vec` — each reconstructed ACK is handed to
    /// the caller as it decodes. Stats and trace events are identical
    /// to [`Decompressor::decompress_blob`].
    pub fn decode<'a, 'd>(&'d mut self, blob: &'a [u8]) -> BlobDecoder<'a, 'd> {
        match blob.split_first() {
            Some((&count, rest)) => BlobDecoder {
                d: self,
                rest,
                remaining: u32::from(count),
                start_failed: false,
                errored: false,
                done: false,
            },
            None => BlobDecoder {
                d: self,
                rest: blob,
                remaining: 0,
                start_failed: true,
                errored: false,
                done: false,
            },
        }
    }

    fn trace_fail(&self, e: DecompressError) {
        hack_trace::trace_ev!(
            self.trace,
            self.trace_now,
            self.trace_node,
            Event::RohcDecompressFail {
                reason: decompress_error_code(e)
            }
        );
    }

    /// Decompress one segment. `Ok((None, n))` = duplicate (skipped).
    fn decompress_one(
        &mut self,
        data: &[u8],
    ) -> Result<(Option<Ipv4Packet>, usize), (DecompressError, usize)> {
        // Structural parse first — we need TS presence, which is context
        // state, so look the context up before the variable-length tail.
        if data.len() < 5 {
            self.stats.malformed += 1;
            return Err((DecompressError::Malformed, 0));
        }
        let cid = data[0];
        let Some(ctx) = self.contexts.get(cid) else {
            // Without the context we cannot even size the segment
            // (timestamp presence is per-flow), so the rest of the blob
            // is unparseable.
            self.stats.no_context += 1;
            return Err((DecompressError::NoContext, 0));
        };
        let has_ts = ctx.has_ts;
        let parsed = match parse_segment(data, has_ts) {
            Some(p) => p,
            None => {
                self.stats.malformed += 1;
                return Err((DecompressError::Malformed, 0));
            }
        };

        // Duplicate discard by master sequence number — but only while
        // the MSN anchor is trusted. A native refresh clears the anchor
        // (see `DecompContext::msn_valid`), so the first segment after a
        // native is always decoded rather than risk a corruption-planted
        // MSN discarding valid traffic; the CRC-3 check below still
        // gates what gets forwarded.
        let ctx = self.contexts.get_mut(cid).expect("looked up above");
        let msn_dist = parsed.msn.wrapping_sub(ctx.msn);
        if ctx.msn_valid && (msn_dist == 0 || msn_dist > 128) {
            self.stats.duplicates += 1;
            return Ok((None, parsed.consumed));
        }

        // Forward W-LSB reconstruction against our current references.
        let refs = ctx.refs;
        let ack = TcpSeq(wlsb_decode(
            u64::from(refs.ack.0),
            u64::from(parsed.ack_lsbs),
            parsed.ack_k,
        ) as u32);
        let ident = wlsb_decode(u64::from(refs.ident), u64::from(parsed.ident_lsb), 8) as u16;
        let window = parsed.window.unwrap_or(refs.window);
        let ts = if has_ts {
            let (v_lsb, e_lsb, k) = parsed.ts.expect("parsed with has_ts");
            Some((
                wlsb_decode(u64::from(refs.tsval), u64::from(v_lsb), k) as u32,
                wlsb_decode(u64::from(refs.tsecr), u64::from(e_lsb), k) as u32,
            ))
        } else {
            None
        };

        let mut options = hack_tcp::TcpOptions::new();
        if let Some((tsval, tsecr)) = ts {
            options.push(TcpOption::Timestamps { tsval, tsecr });
        }
        if let Some((blocks, n)) = &parsed.sack {
            options.push(TcpOption::Sack(
                blocks[..usize::from(*n)]
                    .iter()
                    .map(|&(start_rel, len)| {
                        let start = ack + (start_rel as u32);
                        (start, start + len)
                    })
                    .collect(),
            ));
        }

        let pkt = Ipv4Packet {
            src: ctx.tuple.src_ip,
            dst: ctx.tuple.dst_ip,
            ident,
            ttl: ctx.ttl,
            transport: Transport::Tcp(TcpSegment {
                src_port: ctx.tuple.src_port,
                dst_port: ctx.tuple.dst_port,
                seq: refs.seq,
                ack,
                flags: tcpflags::ACK,
                window,
                options,
                payload_len: 0,
            }),
        };

        // CRC validation over the reconstructed original header,
        // serialized into the reused scratch buffer (no per-segment Vec).
        pkt.header_bytes_into(&mut self.scratch);
        if crc3(&self.scratch) & flagbits::CRC_MASK != parsed.crc {
            self.stats.crc_failures += 1;
            return Err((DecompressError::BadCrc, parsed.consumed));
        }

        // Commit: our references move to the decoded packet.
        let seg = compressible_ack(&pkt).expect("constructed as pure ACK");
        ctx.refs = FieldRefs::of(&pkt, seg);
        ctx.msn = parsed.msn;
        ctx.msn_valid = true;
        self.stats.decompressed += 1;
        hack_trace::trace_ev!(
            self.trace,
            self.trace_now,
            self.trace_node,
            Event::RohcContextUpdate {
                cid: u64::from(cid),
                msn: u32::from(parsed.msn)
            }
        );
        Ok((Some(pkt), parsed.consumed))
    }
}

/// One decoded item yielded by a [`BlobDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobItem {
    /// A successfully reconstituted ACK packet.
    Packet(Ipv4Packet),
    /// A segment discarded as a duplicate by master sequence number.
    Duplicate,
    /// A segment that failed to decompress.
    Fail(DecompressError),
}

/// Streaming cursor over one blob: decodes straight out of the borrowed
/// byte slice, one segment per [`Iterator::next`] call. Created by
/// [`Decompressor::decode`]; item order, statistics, and trace events
/// match the batch [`Decompressor::decompress_blob`] exactly.
#[derive(Debug)]
pub struct BlobDecoder<'a, 'd> {
    d: &'d mut Decompressor,
    rest: &'a [u8],
    remaining: u32,
    /// The blob had no count byte at all (empty input).
    start_failed: bool,
    /// Whether any segment error was emitted (suppresses the trailing-
    /// bytes check, matching the batch decoder).
    errored: bool,
    done: bool,
}

impl Iterator for BlobDecoder<'_, '_> {
    type Item = BlobItem;

    fn next(&mut self) -> Option<BlobItem> {
        if self.done {
            return None;
        }
        if self.start_failed {
            self.done = true;
            self.d.stats.malformed += 1;
            self.d.trace_fail(DecompressError::Malformed);
            return Some(BlobItem::Fail(DecompressError::Malformed));
        }
        if self.remaining > 0 {
            self.remaining -= 1;
            if self.rest.is_empty() {
                self.done = true;
                self.d.stats.malformed += 1;
                self.d.trace_fail(DecompressError::Malformed);
                return Some(BlobItem::Fail(DecompressError::Malformed));
            }
            return Some(match self.d.decompress_one(self.rest) {
                Ok((pkt, used)) => {
                    self.rest = &self.rest[used..];
                    match pkt {
                        Some(p) => BlobItem::Packet(p),
                        None => BlobItem::Duplicate,
                    }
                }
                Err((e, used)) => {
                    self.errored = true;
                    self.d.trace_fail(e);
                    if used == 0 {
                        self.done = true; // cannot even skip: stop parsing
                    } else {
                        self.rest = &self.rest[used..];
                    }
                    BlobItem::Fail(e)
                }
            });
        }
        self.done = true;
        // Every segment parsed cleanly yet bytes remain: the count byte
        // undershot the payload (a corrupted count), and whatever those
        // trailing bytes encode was never applied. Surface it instead of
        // silently swallowing data.
        if !self.errored && !self.rest.is_empty() {
            self.d.stats.malformed += 1;
            self.d.trace_fail(DecompressError::Malformed);
            return Some(BlobItem::Fail(DecompressError::Malformed));
        }
        None
    }
}

struct ParsedSegment {
    msn: u8,
    crc: u8,
    ident_lsb: u8,
    ack_lsbs: u32,
    ack_k: u32,
    window: Option<u16>,
    /// (tsval LSBs, tsecr LSBs, k)
    ts: Option<(u32, u32, u32)>,
    /// Up to four (start_rel, len) SACK blocks, inline — no heap.
    sack: Option<([(i64, u32); 4], u8)>,
    consumed: usize,
}

/// Structurally parse one segment given the flow's timestamp presence.
fn parse_segment(data: &[u8], has_ts: bool) -> Option<ParsedSegment> {
    if data.len() < 5 {
        return None;
    }
    let flags = data[1];
    let msn = data[2];
    let ident_lsb = data[3];
    let mut off = 4;
    let ack_k = match (flags & flagbits::ACK_K_MASK) >> flagbits::ACK_K_SHIFT {
        0 => 8u32,
        1 => 16,
        2 => 24,
        _ => 32,
    };
    let ack_bytes = (ack_k / 8) as usize;
    if data.len() < off + ack_bytes {
        return None;
    }
    let mut ack_lsbs = 0u32;
    for &b in &data[off..off + ack_bytes] {
        ack_lsbs = (ack_lsbs << 8) | u32::from(b);
    }
    off += ack_bytes;

    let window = if flags & flagbits::W != 0 {
        if data.len() < off + 2 {
            return None;
        }
        let w = u16::from_be_bytes([data[off], data[off + 1]]);
        off += 2;
        Some(w)
    } else {
        None
    };

    let ts = if has_ts {
        let k = if flags & flagbits::TS_K != 0 {
            16u32
        } else {
            8
        };
        let n = (k / 8) as usize;
        if data.len() < off + 2 * n {
            return None;
        }
        let mut v = 0u32;
        for &b in &data[off..off + n] {
            v = (v << 8) | u32::from(b);
        }
        off += n;
        let mut e = 0u32;
        for &b in &data[off..off + n] {
            e = (e << 8) | u32::from(b);
        }
        off += n;
        Some((v, e, k))
    } else {
        None
    };

    let sack = if flags & flagbits::S != 0 {
        let &count = data.get(off)?;
        off += 1;
        if count > 4 {
            return None;
        }
        let mut blocks = [(0i64, 0u32); 4];
        for b in blocks.iter_mut().take(usize::from(count)) {
            let (start_rel, n1) = read_ivarint(&data[off..])?;
            off += n1;
            let (len, n2) = read_uvarint(&data[off..])?;
            off += n2;
            *b = (start_rel, u32::try_from(len).ok()?);
        }
        Some((blocks, count))
    } else {
        None
    };

    Some(ParsedSegment {
        msn,
        crc: flags & flagbits::CRC_MASK,
        ident_lsb,
        ack_lsbs,
        ack_k,
        window,
        ts,
        sack,
        consumed: off,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{build_blob, Compressor};
    use hack_tcp::{flags as tf, Ipv4Addr, TcpOption};

    fn ack(ackno: u32, ident: u16, ts: u32) -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 168, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            ident,
            ttl: 64,
            transport: Transport::Tcp(TcpSegment {
                src_port: 40000,
                dst_port: 5001,
                seq: TcpSeq(7777),
                ack: TcpSeq(ackno),
                flags: tf::ACK,
                window: 1024,
                options: vec![TcpOption::Timestamps {
                    tsval: ts,
                    tsecr: ts.wrapping_sub(3),
                }]
                .into(),
                payload_len: 0,
            }),
        }
    }

    fn pair() -> (Compressor, Decompressor) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack(1000, 1, 10);
        c.observe_native(&seed);
        d.observe_native(&seed);
        (c, d)
    }

    #[test]
    fn roundtrip_chain_is_byte_exact() {
        let (mut c, mut d) = pair();
        for i in 1..=50u32 {
            let p = ack(1000 + i * 2920, 1 + i as u16, 10 + i);
            let seg = c.compress(&p).expect("compressible");
            let blob = build_blob(&[seg]);
            let res = d.decompress_blob(&blob);
            assert!(res.errors.is_empty(), "i={i}: {:?}", res.errors);
            assert_eq!(res.packets.len(), 1);
            assert_eq!(&res.packets[0], &p, "byte-exact reconstruction");
            assert_eq!(res.packets[0].header_bytes(), p.header_bytes());
        }
        assert_eq!(d.stats().decompressed, 50);
        assert_eq!(d.stats().crc_failures, 0);
    }

    #[test]
    fn trailing_bytes_after_count_are_malformed() {
        // A corrupted count byte that undershoots the payload must not
        // silently swallow the unparsed segments.
        let (mut c, mut d) = pair();
        let p = ack(3920, 2, 11);
        let seg = c.compress(&p).unwrap();
        let mut blob = build_blob(&[seg]);
        blob[0] = 0; // claims zero segments while one follows
        let before = d.stats().malformed;
        let res = d.decompress_blob(&blob);
        assert!(res.packets.is_empty());
        assert_eq!(res.errors, vec![DecompressError::Malformed]);
        assert_eq!(d.stats().malformed, before + 1);
    }

    #[test]
    fn multi_ack_blob() {
        let (mut c, mut d) = pair();
        let p1 = ack(3920, 2, 11);
        let p2 = ack(6840, 3, 12);
        let s1 = c.compress(&p1).unwrap();
        let s2 = c.compress(&p2).unwrap();
        let blob = build_blob(&[s1, s2]);
        let res = d.decompress_blob(&blob);
        assert_eq!(res.packets, vec![p1, p2]);
    }

    #[test]
    fn retained_blob_duplicates_are_discarded() {
        // The client re-attaches the same compressed ACKs to several LL
        // ACKs (retention, Figure 6). The AP must apply them once.
        let (mut c, mut d) = pair();
        let p1 = ack(3920, 2, 11);
        let s1 = c.compress(&p1).unwrap();
        let blob = build_blob(std::slice::from_ref(&s1));
        let res = d.decompress_blob(&blob);
        assert_eq!(res.packets.len(), 1);
        // Same blob again, now extended with a new ACK.
        let p2 = ack(6840, 3, 12);
        let s2 = c.compress(&p2).unwrap();
        let blob2 = build_blob(&[s1, s2]);
        let res2 = d.decompress_blob(&blob2);
        assert_eq!(res2.duplicates, 1, "first segment already applied");
        assert_eq!(res2.packets, vec![p2]);
        assert!(res2.errors.is_empty());
    }

    #[test]
    fn blob_overtaking_queued_natives_still_decodes() {
        // The core robustness property that forced W-LSB: native ACKs
        // N2, N3 are *enqueued* (compressor outstanding) but have not
        // reached the AP when a compressed ACK rides a Block ACK past
        // them.
        let (mut c, mut d) = pair();
        let n2 = ack(3920, 2, 11);
        let n3 = ack(6840, 3, 12);
        c.observe_native(&n2);
        c.observe_native(&n3);
        // AP has seen neither native. The compressed ACK must still
        // decode against the AP's older reference (the seed).
        let p4 = ack(9760, 4, 13);
        let seg = c.compress(&p4).expect("floor covers the seed");
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(res.packets, vec![p4.clone()]);
        // The stale natives now arrive late: refs regress harmlessly…
        d.observe_native(&n2);
        d.observe_native(&n3);
        // …and the next compressed ACK still decodes (floor still the
        // seed until confirmations).
        let p5 = ack(12680, 5, 14);
        let seg = c.compress(&p5).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(res.packets, vec![p5]);
    }

    #[test]
    fn lost_segments_do_not_poison_the_chain() {
        // Segments are floor-relative, not chained: dropping any prefix
        // leaves the rest decodable.
        let (mut c, mut d) = pair();
        let p1 = ack(3920, 2, 11);
        let p2 = ack(6840, 3, 12);
        let p3 = ack(9760, 4, 13);
        let _lost1 = c.compress(&p1).unwrap();
        let _lost2 = c.compress(&p2).unwrap();
        let s3 = c.compress(&p3).unwrap();
        let res = d.decompress_blob(&build_blob(&[s3]));
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(res.packets, vec![p3]);
    }

    #[test]
    fn unknown_cid_reports_no_context() {
        let mut d = Decompressor::new();
        let (mut c, _) = pair();
        let seg = c.compress(&ack(3920, 2, 11)).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert_eq!(res.errors, vec![DecompressError::NoContext]);
        assert_eq!(d.stats().no_context, 1);
    }

    #[test]
    fn malformed_blob_reports_error() {
        let mut d = Decompressor::new();
        let res = d.decompress_blob(&[]);
        assert_eq!(res.errors, vec![DecompressError::Malformed]);
        let res = d.decompress_blob(&[3, 0x01]);
        assert!(
            res.errors.contains(&DecompressError::Malformed)
                || res.errors.contains(&DecompressError::NoContext)
        );
    }

    #[test]
    fn drop_context_forces_native_reseed() {
        let (mut c, mut d) = pair();
        let p1 = ack(3920, 2, 11);
        let seg = c.compress(&p1).unwrap();
        assert_eq!(d.decompress_blob(&build_blob(&[seg])).packets.len(), 1);
        // Supervisor refresh on both sides.
        let tuple = p1.five_tuple();
        assert!(c.drop_context(&tuple));
        assert!(d.drop_context(&tuple));
        assert!(!c.drop_context(&tuple), "already dropped");
        assert_eq!(c.context_count(), 0);
        assert_eq!(d.context_count(), 0);
        // Compression now declines (no context) — the driver would send
        // natively, which re-seeds both ends.
        let p2 = ack(6840, 3, 12);
        assert!(c.compress(&p2).is_none());
        c.observe_native(&p2);
        d.observe_native(&p2);
        let p3 = ack(9760, 4, 13);
        let seg = c.compress(&p3).expect("re-seeded");
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(res.packets, vec![p3]);
    }

    #[test]
    fn drop_context_leaves_other_flows_alone() {
        let (mut c, mut d) = pair();
        // A second flow on different ports.
        let mut other = ack(1000, 1, 10);
        if let Transport::Tcp(t) = &mut other.transport {
            t.src_port = 40001;
        }
        c.observe_native(&other);
        d.observe_native(&other);
        assert_eq!(d.context_count(), 2);
        assert!(d.drop_context(&ack(1000, 1, 10).five_tuple()));
        assert_eq!(d.context_count(), 1);
        // The surviving flow still decodes.
        let mut o2 = ack(3920, 2, 11);
        if let Transport::Tcp(t) = &mut o2.transport {
            t.src_port = 40001;
        }
        let seg = c.compress(&o2).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert_eq!(res.packets, vec![o2]);
    }

    #[test]
    fn window_change_roundtrips() {
        let (mut c, mut d) = pair();
        let mut p = ack(3920, 2, 11);
        if let Transport::Tcp(t) = &mut p.transport {
            t.window = 4096;
        }
        let seg = c.compress(&p).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert_eq!(res.packets, vec![p]);
    }

    #[test]
    fn sack_blocks_roundtrip() {
        let (mut c, mut d) = pair();
        let mut p = ack(1000, 2, 11); // dup ACK
        if let Transport::Tcp(t) = &mut p.transport {
            t.options.push(TcpOption::Sack(vec![
                (TcpSeq(2460), TcpSeq(3920)),
                (TcpSeq(6840), TcpSeq(8300)),
            ]));
        }
        let seg = c.compress(&p).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(res.packets, vec![p]);
    }

    #[test]
    fn large_timestamp_gap_uses_wide_field_and_roundtrips() {
        let (mut c, mut d) = pair();
        // 40 s of timestamp progress (e.g. an idle period): 16-bit TS.
        let p = ack(3920, 2, 40_000);
        let seg = c.compress(&p).unwrap();
        let res = d.decompress_blob(&build_blob(&[seg]));
        assert_eq!(res.packets, vec![p]);
    }
}
