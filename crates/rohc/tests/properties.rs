//! Property-based tests: compression roundtrips over arbitrary ACK
//! streams, duplicate discard, and CRC coverage.

use hack_rohc::{build_blob, BlobItem, Compressor, Decompressor};
use hack_tcp::{flags as tf, Ipv4Addr, Ipv4Packet, TcpOption, TcpSegment, TcpSeq, Transport};
use proptest::prelude::*;

fn ack_pkt(ackno: u32, ident: u16, tsval: u32, window: u16) -> Ipv4Packet {
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 2),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq: TcpSeq(7777),
            ack: TcpSeq(ackno),
            flags: tf::ACK,
            window,
            options: vec![TcpOption::Timestamps {
                tsval,
                tsecr: tsval.wrapping_sub(3),
            }]
            .into(),
            payload_len: 0,
        }),
    }
}

proptest! {
    /// Any monotone ACK stream (arbitrary deltas, windows, timestamps)
    /// compresses and reconstitutes byte-exactly when no losses occur.
    #[test]
    fn lossless_chain_roundtrips(
        start in any::<u32>(),
        deltas in proptest::collection::vec((0u32..100_000, 0u32..50, any::<u16>()), 1..60),
    ) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack_pkt(start, 1, 100, 1024);
        c.observe_native(&seed);
        d.observe_native(&seed);

        let mut ackno = start;
        let mut ts = 100u32;
        let mut ident = 1u16;
        for (i, &(da, dt, w)) in deltas.iter().enumerate() {
            ackno = ackno.wrapping_add(da);
            ts = ts.wrapping_add(dt);
            ident = ident.wrapping_add(1);
            let p = ack_pkt(ackno, ident, ts, w);
            let seg = c.compress(&p).expect("in-profile packet");
            let res = d.decompress_blob(&build_blob(&[seg]));
            prop_assert!(res.errors.is_empty(), "i={i}: {:?}", res.errors);
            prop_assert_eq!(res.packets.len(), 1);
            prop_assert_eq!(&res.packets[0], &p, "i={}", i);
        }
    }

    /// Re-delivering any prefix of already-applied segments (blob
    /// retention) never duplicates packets upstream.
    #[test]
    fn retention_replay_is_idempotent(
        n in 2usize..20,
        replay_at in 0usize..18,
    ) {
        let replay_at = replay_at.min(n - 1);
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        c.observe_native(&seed);
        d.observe_native(&seed);
        let mut segs = Vec::new();
        for i in 0..n {
            let p = ack_pkt(1000 + (i as u32 + 1) * 2920, 2 + i as u16, 100 + i as u32, 1024);
            segs.push(c.compress(&p).unwrap());
        }
        // Deliver everything once.
        let res = d.decompress_blob(&build_blob(&segs));
        prop_assert_eq!(res.packets.len(), n);
        // Replay a suffix (what retention does): all duplicates.
        let replay = &segs[replay_at..];
        let res2 = d.decompress_blob(&build_blob(replay));
        prop_assert_eq!(res2.packets.len(), 0);
        prop_assert_eq!(res2.duplicates as usize, replay.len());
        prop_assert!(res2.errors.is_empty());
    }

    /// Single-bit corruption of a compressed segment is overwhelmingly
    /// either rejected (parse error, duplicate-MSN discard, CRC-3) or
    /// decodes to the identical packet (an MSN-only flip). Undetected
    /// *wrong* packets are bounded by CRC-3's residual (≈1/8 of the
    /// corrupted field space).
    #[test]
    fn corruption_rarely_yields_wrong_packets(ackno in 2000u32..1_000_000) {
        let mut base_c = Compressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        base_c.observe_native(&seed);
        let p = ack_pkt(ackno, 2, 101, 1024);
        let seg = base_c.compress(&p).unwrap();

        let mut wrong = 0u32;
        let mut total = 0u32;
        for idx in 0..seg.len() {
            for bit in 0..8 {
                let mut d = Decompressor::new();
                d.observe_native(&seed);
                let mut bad = seg.clone();
                bad[idx] ^= 1 << bit;
                total += 1;
                let res = d.decompress_blob(&build_blob(&[bad]));
                if res.packets.iter().any(|got| got != &p) {
                    wrong += 1;
                }
            }
        }
        // CRC-3 residual bound with margin: well under a quarter of all
        // single-bit flips may slip through as wrong packets.
        prop_assert!(
            f64::from(wrong) / f64::from(total) < 0.25,
            "{wrong}/{total} undetected wrong decodes"
        );
    }

    /// Arbitrary garbage fed to the decompressor never panics and never
    /// hangs — every byte string terminates with bounded work, and a
    /// subsequent native ACK always re-syncs the context so the next
    /// compressed ACK decodes byte-exactly.
    #[test]
    fn arbitrary_bytes_never_panic_and_native_resyncs(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        c.observe_native(&seed);
        d.observe_native(&seed);
        let _ = d.decompress_blob(&garbage); // must not panic or loop
        // Whatever state the garbage left behind, a native ACK repairs
        // the context (§3.3.2's last line of defense)…
        let native = ack_pkt(500_000, 7, 200, 2048);
        c.observe_native(&native);
        d.observe_native(&native);
        // …and the chain continues byte-exactly from there.
        let next = ack_pkt(502_920, 8, 201, 2048);
        let seg = c.compress(&next).expect("in-profile packet");
        let res = d.decompress_blob(&build_blob(&[seg]));
        prop_assert!(res.errors.is_empty(), "{:?}", res.errors);
        prop_assert_eq!(res.packets, vec![next]);
    }

    /// A valid blob with any single bit flipped never panics, and the
    /// native-ACK repair path restores byte-exact decoding afterwards.
    #[test]
    fn bit_flipped_blob_never_panics_and_recovers(
        ackno in 2000u32..1_000_000,
        flip in any::<u16>(),
    ) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        c.observe_native(&seed);
        d.observe_native(&seed);
        let p = ack_pkt(ackno, 2, 101, 1024);
        let seg = c.compress(&p).unwrap();
        let mut blob = build_blob(&[seg]);
        let bit = usize::from(flip) % (blob.len() * 8);
        blob[bit / 8] ^= 1 << (bit % 8);
        let _ = d.decompress_blob(&blob); // must not panic
        // Native repair, then the chain resumes byte-exactly.
        let native = ack_pkt(ackno.wrapping_add(2920), 3, 102, 1024);
        c.observe_native(&native);
        d.observe_native(&native);
        let next = ack_pkt(ackno.wrapping_add(5840), 4, 103, 1024);
        let seg = c.compress(&next).expect("in-profile packet");
        let res = d.decompress_blob(&build_blob(&[seg]));
        prop_assert!(res.errors.is_empty(), "{:?}", res.errors);
        prop_assert_eq!(res.packets, vec![next]);
    }

    /// Compression always shrinks a pure ACK substantially.
    #[test]
    fn always_smaller_than_original(deltas in proptest::collection::vec(0u32..10_000, 1..30)) {
        let mut c = Compressor::new();
        let seed = ack_pkt(5, 1, 100, 1024);
        c.observe_native(&seed);
        let mut ackno = 5u32;
        for (i, &da) in deltas.iter().enumerate() {
            ackno = ackno.wrapping_add(da);
            let p = ack_pkt(ackno, 2 + i as u16, 100 + i as u32, 1024);
            let seg = c.compress(&p).unwrap();
            prop_assert!(seg.len() as u32 <= p.wire_len() / 4,
                "segment {} bytes vs original {}", seg.len(), p.wire_len());
        }
        prop_assert!(c.stats().ratio() >= 4.0);
    }

    /// The zero-copy streaming cursor and the owned batch decoder are
    /// observationally identical: two independently primed
    /// decompressors fed the same blob — valid or bit-flipped — yield
    /// the same packets, duplicate count, error sequence, and final
    /// statistics.
    #[test]
    fn streaming_decode_matches_owned_decode(
        deltas in proptest::collection::vec((0u32..100_000, 0u32..50, any::<u16>()), 1..40),
        flips in proptest::collection::vec((any::<u16>(), 0u32..8), 0..4),
    ) {
        let mut c = Compressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        c.observe_native(&seed);
        let mut segs = Vec::new();
        let mut ackno = 1000u32;
        let mut ts = 100u32;
        for (i, &(da, dt, w)) in deltas.iter().enumerate() {
            ackno = ackno.wrapping_add(da);
            ts = ts.wrapping_add(dt);
            let p = ack_pkt(ackno, 2 + i as u16, ts, w);
            segs.push(c.compress(&p).expect("in-profile packet"));
        }
        let mut blob = build_blob(&segs);
        for &(pos, bit) in &flips {
            let i = usize::from(pos) % blob.len();
            blob[i] ^= 1 << bit;
        }

        let mut owned = Decompressor::new();
        let mut streaming = Decompressor::new();
        owned.observe_native(&seed);
        streaming.observe_native(&seed);

        let batch = owned.decompress_blob(&blob);
        let mut packets = Vec::new();
        let mut duplicates = 0u32;
        let mut errors = Vec::new();
        for item in streaming.decode(&blob) {
            match item {
                BlobItem::Packet(p) => packets.push(p),
                BlobItem::Duplicate => duplicates += 1,
                BlobItem::Fail(e) => errors.push(e),
            }
        }
        prop_assert_eq!(packets, batch.packets);
        prop_assert_eq!(duplicates, batch.duplicates);
        prop_assert_eq!(errors, batch.errors);
        let (a, b) = (owned.stats(), streaming.stats());
        prop_assert_eq!(a.decompressed, b.decompressed);
        prop_assert_eq!(a.duplicates, b.duplicates);
        prop_assert_eq!(a.crc_failures, b.crc_failures);
        prop_assert_eq!(a.no_context, b.no_context);
        prop_assert_eq!(a.malformed, b.malformed);
    }

    /// Abandoning the streaming cursor mid-blob (the MAC dropping the
    /// rest of a frame) leaves the decompressor in a state a native
    /// refresh fully repairs: the next compressed segment decodes
    /// byte-exactly.
    #[test]
    fn partial_cursor_drop_then_native_resync(
        n in 2usize..20,
        take in 0usize..20,
    ) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        let seed = ack_pkt(1000, 1, 100, 1024);
        c.observe_native(&seed);
        d.observe_native(&seed);
        let segs: Vec<_> = (0..n)
            .map(|i| {
                let p = ack_pkt(
                    1000 + (i as u32 + 1) * 2920,
                    2 + i as u16,
                    100 + i as u32,
                    1024,
                );
                c.compress(&p).unwrap()
            })
            .collect();
        let blob = build_blob(&segs);
        // Consume only a prefix of the cursor, then drop it.
        for item in d.decode(&blob).take(take.min(n)) {
            prop_assert!(matches!(item, BlobItem::Packet(_)), "{item:?}");
        }
        // Native repair, then the chain resumes byte-exactly.
        let native = ack_pkt(90_000, 100, 500, 2048);
        c.observe_native(&native);
        d.observe_native(&native);
        let next = ack_pkt(92_920, 101, 501, 2048);
        let seg = c.compress(&next).expect("in-profile packet");
        let res = d.decompress_blob(&build_blob(&[seg]));
        prop_assert!(res.errors.is_empty(), "{:?}", res.errors);
        prop_assert_eq!(res.packets, vec![next]);
    }
}
