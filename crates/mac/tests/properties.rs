//! Property-based tests for MAC transmit-queue and scoreboard
//! invariants under arbitrary loss patterns.

use hack_mac::{AckBitmap, DestQueue, MacConfig, Msdu, RxReorder, SeqNum};
use hack_phy::{PhyRate, StationId};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pkt(u32, u32); // (id, len)
impl Msdu for Pkt {
    fn wire_len(&self) -> u32 {
        self.1
    }
}

const AP: StationId = StationId(0);
const C1: StationId = StationId(1);

proptest! {
    /// Under any per-batch loss pattern, every enqueued MSDU is
    /// eventually either acknowledged or dropped after exceeding the
    /// retry limit — never lost silently, never delivered twice.
    #[test]
    fn queue_conserves_msdus(
        n in 1usize..80,
        loss_seed in any::<u64>(),
        loss_p in 0.0f64..0.9,
    ) {
        let cfg = MacConfig::dot11n(PhyRate::ht(150));
        let mut q = DestQueue::new(C1);
        for i in 0..n {
            q.enqueue(Pkt(i as u32, 1500));
        }
        let mut rng = hack_sim::SimRng::new(loss_seed);
        let mut acked: Vec<u32> = Vec::new();
        let mut dropped: Vec<u32> = Vec::new();
        let mut rounds = 0;
        while q.has_work() && rounds < 10_000 {
            rounds += 1;
            let batch = q.build_batch(AP, &cfg);
            prop_assert!(!batch.is_empty(), "has_work implies a batch");
            let mut bm = AckBitmap::new(batch[0].seq);
            for m in &batch {
                if !rng.chance(loss_p) {
                    bm.set(m.seq);
                }
            }
            let res = q.on_block_ack(&bm, cfg.timings.retry_limit);
            acked.extend(res.acked_msdus.iter().map(|m| m.0));
            dropped.extend(res.dropped.iter().map(|m| m.0));
        }
        prop_assert!(rounds < 10_000, "queue must drain");
        let mut all: Vec<u32> = acked.iter().chain(dropped.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>(),
            "every MSDU exactly once (acked: {}, dropped: {})", acked.len(), dropped.len());
        prop_assert_eq!(q.queued_bytes(), 0);
    }

    /// The receive reorderer delivers each MSDU at most once and, in
    /// ordered mode with eventual delivery of everything, exactly once
    /// and in order.
    #[test]
    fn reorder_exactly_once_in_order(
        n in 1usize..100,
        shuffle_seed in any::<u64>(),
        dup_every in 2usize..10,
    ) {
        // Generate arrivals the way a real transmitter does: batches of
        // up to 24 in sequence order, each frame lost (deferred to the
        // next batch, retransmission-first) with probability 30 %.
        // Arbitrary permutations are unreachable in a real exchange —
        // the Block ACK window forbids sending seq s+64 while seq s is
        // unresolved — and this construction respects that invariant.
        let mut rng = hack_sim::SimRng::new(shuffle_seed);
        let mut pending: Vec<u16> = (0..n as u16).collect();
        let mut order: Vec<u16> = Vec::with_capacity(n);
        while !pending.is_empty() {
            // The transmitter's window constraint: nothing ≥ 64 beyond
            // the oldest unresolved sequence number may be sent.
            let oldest = pending[0];
            let take = pending
                .iter()
                .take(24)
                .take_while(|&&s| s < oldest + 64)
                .count()
                .max(1);
            let batch: Vec<u16> = pending.drain(..take).collect();
            let mut deferred = Vec::new();
            for s in batch {
                if rng.chance(0.3) {
                    deferred.push(s);
                } else {
                    order.push(s);
                }
            }
            // Retransmissions lead the next batch, in sequence order.
            deferred.append(&mut pending);
            pending = deferred;
        }
        let mut r: RxReorder<u16> = RxReorder::new(AP, true);
        let mut delivered = Vec::new();
        for (k, &s) in order.iter().enumerate() {
            let acc = r.on_mpdu(SeqNum::new(s), s);
            delivered.extend(acc.deliver.into_iter().map(|(_, v)| v));
            // Occasionally duplicate a frame (retention/retransmission).
            if k % dup_every == 0 {
                let acc = r.on_mpdu(SeqNum::new(s), s);
                prop_assert!(!acc.is_new);
                prop_assert!(acc.deliver.is_empty());
            }
        }
        // With n ≤ 100 and a 64-window, some tail may still be held; a
        // BAR at the end flushes it.
        delivered.extend(r.on_bar(SeqNum::new(n as u16)).into_iter().map(|(_, v)| v));
        // Ordered mode may release with gaps only on window overflow; we
        // always delivered everything, so the output is the identity.
        prop_assert_eq!(delivered, (0..n as u16).collect::<Vec<_>>());
    }

    /// Block ACK bitmaps round-trip: the transmitter's resolution agrees
    /// exactly with the receiver's scoreboard.
    #[test]
    fn bitmap_agreement(received in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut r: RxReorder<u16> = RxReorder::new(AP, true);
        for (i, &ok) in received.iter().enumerate() {
            if ok {
                r.on_mpdu(SeqNum::new(i as u16), i as u16);
            }
        }
        let bm = r.ba_bitmap();
        for (i, &ok) in received.iter().enumerate() {
            let seq = SeqNum::new(i as u16);
            let acked = bm.contains(seq) || bm.start.is_newer_than(seq);
            prop_assert_eq!(acked, ok, "seq {}", i);
        }
    }
}
