//! End-to-end flows through the sans-IO station state machine, driven by
//! hand without a medium: two stations' actions are shuttled between them
//! by the test harness. These tests pin the protocol behaviours the HACK
//! design depends on (§3 of the paper).

use hack_mac::{Action, Frame, HackBlob, MacConfig, Msdu, RespKind, SeqNum, Station, TimerKind};
use hack_phy::{PhyRate, StationId};
use hack_sim::{SimDuration, SimRng, SimTime};

const AP: StationId = StationId(0);
const C1: StationId = StationId(1);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pkt {
    len: u32,
    is_ack: bool,
    id: u32,
}

impl Pkt {
    fn data(id: u32) -> Self {
        Pkt {
            len: 1500,
            is_ack: false,
            id,
        }
    }
}

impl Msdu for Pkt {
    fn wire_len(&self) -> u32 {
        self.len
    }
    fn is_transport_ack(&self) -> bool {
        self.is_ack
    }
}

type Act = Action<Pkt>;

fn sta(id: StationId, cfg: MacConfig) -> Station<Pkt> {
    Station::new(id, cfg, SimRng::new(7).fork(u64::from(id.0)))
}

/// Extract the single armed timer of `kind` from actions.
fn timer_at(actions: &[Act], kind: TimerKind) -> Option<SimTime> {
    actions.iter().find_map(|a| match a {
        Action::SetTimer { kind: k, at } if *k == kind => Some(*at),
        _ => None,
    })
}

fn start_tx(actions: &[Act]) -> Option<&hack_mac::TxDescriptor<Pkt>> {
    actions.iter().find_map(|a| match a {
        Action::StartTx(d) => Some(d),
        _ => None,
    })
}

/// Walk a station from "enqueue" through its TxStart timer, returning the
/// transmitted descriptor and the transmission start time.
fn drive_to_tx(
    station: &mut Station<Pkt>,
    pkts: Vec<Pkt>,
    dst: StationId,
    now: SimTime,
) -> (hack_mac::TxDescriptor<Pkt>, SimTime) {
    let mut acts = Vec::new();
    for p in pkts {
        acts.extend(station.enqueue(dst, p, now));
    }
    let tx_at = timer_at(&acts, TimerKind::TxStart).expect("contention armed");
    let acts = station.on_timer(TimerKind::TxStart, tx_at);
    let desc = start_tx(&acts).expect("transmission started").clone();
    (desc, tx_at)
}

#[test]
fn contention_waits_at_least_difs() {
    let mut a = sta(AP, MacConfig::dot11a(PhyRate::dot11a(54)));
    let t0 = SimTime::from_millis(1);
    let acts = a.enqueue(C1, Pkt::data(0), t0);
    let tx_at = timer_at(&acts, TimerKind::TxStart).unwrap();
    assert!(tx_at >= t0 + SimDuration::from_micros(34), "DIFS = 34 µs");
    assert!(
        tx_at <= t0 + SimDuration::from_micros(34 + 15 * 9),
        "within CWmin backoff"
    );
}

#[test]
fn dot11a_single_frame_exchange_with_ack() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut ap = sta(AP, cfg.clone());
    let mut c1 = sta(C1, cfg.clone());
    let t0 = SimTime::from_millis(1);

    let (desc, tx_at) = drive_to_tx(&mut ap, vec![Pkt::data(0)], C1, t0);
    assert_eq!(desc.frames.len(), 1);
    assert!(!desc.is_response);

    // Airtime elapses; client receives, AP's tx ends.
    let rx_t = tx_at + desc.duration;
    let acts_ap = ap.on_tx_end(rx_t);
    let ack_to = timer_at(&acts_ap, TimerKind::AckTimeout).unwrap();
    assert_eq!(ack_to, rx_t + cfg.ack_timeout());

    let acts_c1 = c1.on_rx_ppdu(desc.frames.clone(), false, rx_t);
    // Client delivers the MSDU upward and schedules a SIFS ACK.
    assert!(acts_c1.iter().any(|a| matches!(
        a,
        Action::Deliver { src, msdu } if *src == AP && msdu.id == 0
    )));
    let resp_at = timer_at(&acts_c1, TimerKind::SendResponse).unwrap();
    assert_eq!(resp_at, rx_t + SimDuration::from_micros(16), "SIFS");
    // DataReceived fires for the driver with correct metadata.
    assert!(acts_c1.iter().any(|a| matches!(
        a,
        Action::DataReceived(info)
            if info.from == AP && info.mpdus_ok == 1 && !info.is_aggregate && info.advances_seq
    )));

    // Client sends the ACK.
    let acts_resp = c1.on_timer(TimerKind::SendResponse, resp_at);
    let resp = start_tx(&acts_resp).unwrap().clone();
    assert!(resp.is_response);
    assert!(matches!(resp.frames[0], Frame::Ack { hack: None, .. }));
    assert_eq!(resp.rate.mbps(), 24, "ACK at the basic rate below 54");

    // AP receives the ACK before its timeout.
    let ack_rx = resp_at + resp.duration;
    assert!(ack_rx < ack_to, "ACK arrives before the timeout");
    let acts_done = ap.on_rx_ppdu(resp.frames.clone(), false, ack_rx);
    assert!(acts_done.iter().any(|a| matches!(
        a,
        Action::CancelTimer {
            kind: TimerKind::AckTimeout
        }
    )));
    assert!(acts_done.iter().any(|a| matches!(
        a,
        Action::ResponseReceived { from, acked: 1, blob: None, .. } if *from == C1
    )));
    assert_eq!(ap.stats().mpdus_first_try.get(), 1);
    assert_eq!(ap.stats().mpdus_retried.get(), 0);
}

#[test]
fn ack_timeout_triggers_retransmission_with_retry_bit() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut ap = sta(AP, cfg.clone());
    let t0 = SimTime::from_millis(1);
    let (desc, tx_at) = drive_to_tx(&mut ap, vec![Pkt::data(0)], C1, t0);
    let end = tx_at + desc.duration;
    let acts = ap.on_tx_end(end);
    let to_at = timer_at(&acts, TimerKind::AckTimeout).unwrap();

    // No ACK: timeout fires, contention re-arms.
    let acts = ap.on_timer(TimerKind::AckTimeout, to_at);
    assert_eq!(ap.stats().ack_timeouts.get(), 1);
    let tx2_at = timer_at(&acts, TimerKind::TxStart).unwrap();
    let acts = ap.on_timer(TimerKind::TxStart, tx2_at);
    let desc2 = start_tx(&acts).unwrap();
    match &desc2.frames[0] {
        Frame::Data(d) => {
            assert!(d.retry, "retransmission carries the retry bit");
            assert_eq!(d.seq, SeqNum::new(0), "same sequence number");
        }
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn dot11n_ampdu_block_ack_roundtrip() {
    let cfg = MacConfig::dot11n(PhyRate::ht(150));
    let mut ap = sta(AP, cfg.clone());
    let mut c1 = sta(C1, cfg.clone());
    let t0 = SimTime::from_millis(1);

    let pkts: Vec<Pkt> = (0..50).map(Pkt::data).collect();
    let (desc, tx_at) = drive_to_tx(&mut ap, pkts, C1, t0);
    assert_eq!(desc.frames.len(), 42, "64 KB A-MPDU of 1538 B MPDUs");

    let rx_t = tx_at + desc.duration;
    ap.on_tx_end(rx_t);

    // Client decodes all but seqs 5 and 9.
    let partial: Vec<Frame<Pkt>> = desc
        .frames
        .iter()
        .filter(|f| match f {
            Frame::Data(d) => d.seq != SeqNum::new(5) && d.seq != SeqNum::new(9),
            _ => true,
        })
        .cloned()
        .collect();
    let acts = c1.on_rx_ppdu(partial, true, rx_t);
    // In-order delivery stops at the first gap (seq 5).
    let delivered: Vec<u32> = acts
        .iter()
        .filter_map(|a| match a {
            Action::Deliver { msdu, .. } => Some(msdu.id),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, (0..5).collect::<Vec<u32>>());

    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    let resp = start_tx(&acts).unwrap().clone();
    let Frame::BlockAck { bitmap, .. } = &resp.frames[0] else {
        panic!("expected Block ACK");
    };
    assert_eq!(bitmap.start, SeqNum::new(5), "window stuck at first gap");
    assert!(!bitmap.contains(SeqNum::new(5)));
    assert!(!bitmap.contains(SeqNum::new(9)));
    assert!(bitmap.contains(SeqNum::new(6)));

    // AP resolves: 40 acked, 2 requeued; retransmission batch leads with
    // seqs 5 and 9 and the client then delivers the rest in order.
    let ba_rx = resp_at + resp.duration;
    let acts = ap.on_rx_ppdu(resp.frames.clone(), false, ba_rx);
    assert!(acts
        .iter()
        .any(|a| matches!(a, Action::ResponseReceived { acked: 40, .. })));
    let tx2_at = timer_at(&acts, TimerKind::TxStart).unwrap();
    let acts = ap.on_timer(TimerKind::TxStart, tx2_at);
    let desc2 = start_tx(&acts).unwrap().clone();
    let seqs: Vec<u16> = desc2
        .frames
        .iter()
        .filter_map(|f| match f {
            Frame::Data(d) => Some(d.seq.value()),
            _ => None,
        })
        .collect();
    assert_eq!(&seqs[..2], &[5, 9], "retransmissions first");
    assert_eq!(desc2.frames.len(), 10, "2 retx + remaining 8 new");

    ap.on_tx_end(tx2_at + desc2.duration);
    let acts = c1.on_rx_ppdu(desc2.frames.clone(), true, tx2_at + desc2.duration);
    let delivered: Vec<u32> = acts
        .iter()
        .filter_map(|a| match a {
            Action::Deliver { msdu, .. } => Some(msdu.id),
            _ => None,
        })
        .collect();
    assert_eq!(
        delivered,
        (5..50).collect::<Vec<u32>>(),
        "gap filled, all flushed"
    );
}

#[test]
fn missing_block_ack_solicits_bar() {
    let cfg = MacConfig::dot11n(PhyRate::ht(150));
    let mut ap = sta(AP, cfg.clone());
    let t0 = SimTime::from_millis(1);
    let (desc, tx_at) = drive_to_tx(&mut ap, (0..3).map(Pkt::data).collect(), C1, t0);
    let end = tx_at + desc.duration;
    let acts = ap.on_tx_end(end);
    let to_at = timer_at(&acts, TimerKind::AckTimeout).unwrap();

    // Block ACK never arrives.
    let acts = ap.on_timer(TimerKind::AckTimeout, to_at);
    let tx2_at = timer_at(&acts, TimerKind::TxStart).unwrap();
    let acts = ap.on_timer(TimerKind::TxStart, tx2_at);
    let desc2 = start_tx(&acts).unwrap();
    assert!(
        matches!(desc2.frames[0], Frame::BlockAckReq { start, .. } if start == SeqNum::new(0)),
        "a BAR is sent instead of re-sending the whole batch"
    );
    assert_eq!(ap.stats().bars_sent.get(), 1);
}

#[test]
fn bar_exhaustion_emits_sync_batch() {
    let mut cfg = MacConfig::dot11n(PhyRate::ht(150)).with_hack_bits();
    cfg.timings.retry_limit = 2; // keep the test short
    let mut ap = sta(AP, cfg.clone());
    let t0 = SimTime::from_millis(1);
    let (desc, tx_at) = drive_to_tx(&mut ap, (0..3).map(Pkt::data).collect(), C1, t0);
    let mut now = tx_at + desc.duration;
    let mut acts = ap.on_tx_end(now);

    let mut exhausted_acts = None;
    for _round in 0..5 {
        let to_at = timer_at(&acts, TimerKind::AckTimeout).unwrap();
        acts = ap.on_timer(TimerKind::AckTimeout, to_at);
        if acts
            .iter()
            .any(|a| matches!(a, Action::BarExhausted { dst } if *dst == C1))
        {
            exhausted_acts = Some(acts.clone());
            break;
        }
        let tx_at = timer_at(&acts, TimerKind::TxStart).unwrap();
        acts = ap.on_timer(TimerKind::TxStart, tx_at);
        let d = start_tx(&acts).unwrap();
        assert!(matches!(d.frames[0], Frame::BlockAckReq { .. }));
        now = tx_at + d.duration;
        acts = ap.on_tx_end(now);
    }
    let exhausted_acts = exhausted_acts.expect("BAR retries must exhaust");
    assert_eq!(ap.stats().bars_exhausted.get(), 1);

    // The exhaustion path re-arms contention; the next data batch carries
    // SYNC and retransmits everything.
    let tx_at =
        timer_at(&exhausted_acts, TimerKind::TxStart).expect("contention armed after exhaustion");
    let acts = ap.on_timer(TimerKind::TxStart, tx_at);
    let d = start_tx(&acts).unwrap();
    match &d.frames[0] {
        Frame::Data(dd) => {
            assert!(dd.sync, "SYNC bit set on the post-exhaustion batch");
            assert!(dd.retry);
        }
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn hack_blob_rides_block_ack_and_is_retained() {
    let cfg = MacConfig::dot11n(PhyRate::ht(150));
    let mut c1 = sta(C1, cfg.clone());
    let t0 = SimTime::from_millis(1);

    // Driver installs a compressed-ACK blob for the AP.
    c1.set_hack_blob(
        AP,
        HackBlob {
            bytes: vec![1, 2, 3, 4],
        },
    );

    // Data arrives from the AP; the Block ACK must carry the blob.
    let data = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: C1,
        seq: SeqNum::new(0),
        retry: false,
        more_data: true,
        sync: false,
        payload: Pkt::data(0),
    });
    let acts = c1.on_rx_ppdu(vec![data.clone()], true, t0);
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::ResponseSent { to, kind: RespKind::BlockAck, attached_blob: true } if *to == AP
    )));
    let resp = start_tx(&acts).unwrap();
    let Frame::BlockAck {
        hack: Some(blob), ..
    } = &resp.frames[0]
    else {
        panic!("Block ACK must carry the HACK blob");
    };
    assert_eq!(blob.bytes, vec![1, 2, 3, 4]);
    c1.on_tx_end(resp_at + resp.duration);

    // Retention: the blob is still installed and rides the next response
    // too (until the driver clears it on a §3.4 confirmation signal).
    assert!(c1.hack_blob(AP).is_some());
    let t1 = t0 + SimDuration::from_millis(1);
    let data2 = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: C1,
        seq: SeqNum::new(1),
        retry: false,
        more_data: true,
        sync: false,
        payload: Pkt::data(1),
    });
    let acts = c1.on_rx_ppdu(vec![data2], true, t1);
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    let resp = start_tx(&acts).unwrap();
    assert!(
        matches!(&resp.frames[0], Frame::BlockAck { hack: Some(_), .. }),
        "blob retained across responses"
    );

    // Driver clears after confirmation: next response is plain.
    c1.clear_hack_blob(AP);
    c1.on_tx_end(resp_at + resp.duration);
    let t2 = t1 + SimDuration::from_millis(1);
    let data3 = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: C1,
        seq: SeqNum::new(2),
        retry: false,
        more_data: false,
        sync: false,
        payload: Pkt::data(2),
    });
    let acts = c1.on_rx_ppdu(vec![data3], true, t2);
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::ResponseSent {
            attached_blob: false,
            ..
        }
    )));
}

#[test]
fn blob_only_attaches_to_the_hack_peer() {
    let cfg = MacConfig::dot11n(PhyRate::ht(150));
    let mut c1 = sta(C1, cfg.clone());
    let other = StationId(9);
    c1.set_hack_blob(AP, HackBlob { bytes: vec![7] });
    let data = Frame::Data(hack_mac::DataMpdu {
        src: other,
        dst: C1,
        seq: SeqNum::new(0),
        retry: false,
        more_data: false,
        sync: false,
        payload: Pkt::data(0),
    });
    let acts = c1.on_rx_ppdu(vec![data], true, SimTime::from_millis(1));
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::ResponseSent {
            attached_blob: false,
            ..
        }
    )));
}

#[test]
fn negotiation_gates_blob_attachment() {
    // The AP lacks the HACK capability bit: after association the client
    // must never attach a blob toward it, even with one installed.
    let mut ap_cfg = MacConfig::dot11n(PhyRate::ht(150));
    ap_cfg.hack_capable = false;
    let mut ap = sta(AP, ap_cfg);
    let mut c1 = sta(C1, MacConfig::dot11n(PhyRate::ht(150)));

    let resp = ap.on_assoc_request(&c1.assoc_request());
    assert!(!resp.hack_negotiated, "AP lacks the bit");
    c1.on_assoc_response(&resp);
    assert_eq!(c1.hack_negotiated(AP), Some(false));
    assert_eq!(ap.hack_negotiated(C1), Some(false));

    c1.set_hack_blob(AP, HackBlob { bytes: vec![7] });
    let data = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: C1,
        seq: SeqNum::new(0),
        retry: false,
        more_data: false,
        sync: false,
        payload: Pkt::data(0),
    });
    let acts = c1.on_rx_ppdu(vec![data], true, SimTime::from_millis(1));
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::ResponseSent {
            attached_blob: false,
            ..
        }
    )));
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::StartTx(d) if matches!(&d.frames[0], Frame::BlockAck { hack: None, .. })
    )));
}

#[test]
fn negotiation_between_capable_stations_attaches_blob() {
    let mut ap = sta(AP, MacConfig::dot11n(PhyRate::ht(150)));
    let mut c1 = sta(C1, MacConfig::dot11n(PhyRate::ht(150)));
    let resp = ap.on_assoc_request(&c1.assoc_request());
    assert!(resp.hack_negotiated);
    c1.on_assoc_response(&resp);
    assert_eq!(c1.hack_negotiated(AP), Some(true));

    c1.set_hack_blob(AP, HackBlob { bytes: vec![7] });
    let data = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: C1,
        seq: SeqNum::new(0),
        retry: false,
        more_data: false,
        sync: false,
        payload: Pkt::data(0),
    });
    let acts = c1.on_rx_ppdu(vec![data], true, SimTime::from_millis(1));
    let resp_at = timer_at(&acts, TimerKind::SendResponse).unwrap();
    let acts = c1.on_timer(TimerKind::SendResponse, resp_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::ResponseSent {
            attached_blob: true,
            ..
        }
    )));
}

#[test]
fn busy_channel_pauses_and_resumes_backoff() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut ap = sta(AP, cfg);
    let t0 = SimTime::from_millis(1);
    let acts = ap.enqueue(C1, Pkt::data(0), t0);
    let tx_at = timer_at(&acts, TimerKind::TxStart).unwrap();

    // Medium goes busy before our slot: timer cancelled.
    let busy_at = t0 + SimDuration::from_micros(20);
    assert!(busy_at < tx_at);
    let acts = ap.on_channel_busy(busy_at);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::CancelTimer {
            kind: TimerKind::TxStart
        }
    )));

    // Idle again: contention resumes and eventually transmits.
    let idle_at = busy_at + SimDuration::from_micros(300);
    let acts = ap.on_channel_idle(idle_at);
    let tx2_at = timer_at(&acts, TimerKind::TxStart).unwrap();
    assert!(tx2_at >= idle_at + SimDuration::from_micros(34));
    let acts = ap.on_timer(TimerKind::TxStart, tx2_at);
    assert!(start_tx(&acts).is_some());
}

#[test]
fn overheard_data_sets_nav_and_blocks_contention() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut c1 = sta(C1, cfg);
    let t0 = SimTime::from_millis(1);
    // C1 wants to send to the AP.
    let acts = c1.enqueue(AP, Pkt::data(0), t0);
    assert!(timer_at(&acts, TimerKind::TxStart).is_some());

    // Busy: another station transmits to someone else.
    c1.on_channel_busy(t0 + SimDuration::from_micros(5));
    let rx_t = t0 + SimDuration::from_micros(250);
    let overheard = Frame::Data(hack_mac::DataMpdu {
        src: AP,
        dst: StationId(5),
        seq: SeqNum::new(0),
        retry: false,
        more_data: false,
        sync: false,
        payload: Pkt::data(0),
    });
    let acts = c1.on_rx_ppdu(vec![overheard], false, rx_t);
    let nav_at = timer_at(&acts, TimerKind::NavExpire).expect("NAV armed");
    assert!(
        nav_at > rx_t + SimDuration::from_micros(16),
        "covers SIFS+ACK"
    );

    // Channel idle at frame end, but NAV blocks contention.
    let acts = c1.on_channel_idle(rx_t);
    assert!(
        timer_at(&acts, TimerKind::TxStart).is_none(),
        "NAV must block contention"
    );
    // NAV expiry resumes it.
    let acts = c1.on_timer(TimerKind::NavExpire, nav_at);
    assert!(timer_at(&acts, TimerKind::TxStart).is_some());
}

#[test]
fn garbage_reception_forces_eifs() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut ap = sta(AP, cfg.clone());
    let t0 = SimTime::from_millis(1);
    let acts = ap.enqueue(C1, Pkt::data(0), t0);
    let normal_tx = timer_at(&acts, TimerKind::TxStart).unwrap();

    // Busy then garbage: next contention uses EIFS.
    ap.on_channel_busy(t0 + SimDuration::from_micros(1));
    let g_t = t0 + SimDuration::from_micros(100);
    ap.on_rx_garbage(g_t);
    assert_eq!(ap.stats().rx_garbage.get(), 1);
    let acts = ap.on_channel_idle(g_t);
    let eifs_tx = timer_at(&acts, TimerKind::TxStart).unwrap();
    // Relative wait after idle must exceed the normal DIFS-based wait
    // after enqueue (same frozen backoff, longer IFS).
    let normal_wait = normal_tx.duration_since(t0);
    let eifs_wait = eifs_tx.duration_since(g_t);
    assert!(
        eifs_wait > normal_wait,
        "EIFS ({eifs_wait}) must exceed DIFS wait ({normal_wait})"
    );
}

#[test]
fn more_data_bit_reaches_rx_info() {
    let cfg = MacConfig::dot11n(PhyRate::ht(150)).with_hack_bits();
    let mut ap = sta(AP, cfg.clone());
    let mut c1 = sta(C1, MacConfig::dot11n(PhyRate::ht(150)));
    let t0 = SimTime::from_millis(1);
    // 50 packets: one full batch of 42 + backlog => MORE DATA set.
    let (desc, tx_at) = drive_to_tx(&mut ap, (0..50).map(Pkt::data).collect(), C1, t0);
    let acts = c1.on_rx_ppdu(desc.frames.clone(), true, tx_at + desc.duration);
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::DataReceived(info) if info.more_data
    )));
}

#[test]
fn transport_ack_class_accounted_separately() {
    let cfg = MacConfig::dot11a(PhyRate::dot11a(54));
    let mut c1 = sta(C1, cfg);
    let t0 = SimTime::from_millis(1);
    let ack_pkt = Pkt {
        len: 40,
        is_ack: true,
        id: 0,
    };
    let (_desc, _tx_at) = drive_to_tx(&mut c1, vec![ack_pkt], AP, t0);
    assert_eq!(c1.stats().airtime_ack.events(), 1);
    assert_eq!(c1.stats().airtime_data.events(), 0);
    assert!(c1.stats().acquire_wait_ack.total() > SimDuration::ZERO);
}
