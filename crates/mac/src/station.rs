//! The sans-IO 802.11 station state machine.
//!
//! One [`Station`] is a complete EDCA/DCF MAC: it contends for the
//! medium, transmits single MPDUs or A-MPDUs, answers with ACKs / Block
//! ACKs after SIFS, solicits lost Block ACKs with BARs, retransmits,
//! reorders and deduplicates receptions, and maintains the HACK blob
//! slot that lets the driver above ride compressed TCP ACKs on outgoing
//! link-layer acknowledgments.
//!
//! Every handler takes `now` and returns [`Action`]s; the event loop in
//! `hack-core` owns the clock, timers and medium. Invariants:
//!
//! * at most one of {armed `TxStart`, in-flight PPDU, awaited response}
//!   exists at a time — the MAC runs one exchange at a time;
//! * SIFS responses bypass contention and may even be emitted while the
//!   medium is busy (as real responders do — the resulting collision is
//!   the medium's to adjudicate);
//! * receptions are processed *before* channel-idle edges at the same
//!   instant (the event loop guarantees this), so NAV is always set
//!   before contention resumes.

use std::collections::HashMap;

use hack_phy::StationId;
use hack_sim::{SimDuration, SimRng, SimTime};
use hack_trace::{trace_ev, Event, TraceHandle};

use crate::actions::{Action, RespKind, RxDataInfo, TimerKind, TxDescriptor};
use crate::backoff::Contention;
use crate::config::MacConfig;
use crate::frame::{ampdu_wire_len, Frame, HackBlob, Msdu, SeqNum};
use crate::queue::DestQueue;
use crate::scoreboard::RxReorder;
use crate::stats::{MacStats, TrafficClass};

/// What our in-flight (or awaited) transmission was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxKind {
    /// A data batch of `n` MPDUs (aggregated iff `n > 1` or config says).
    Data {
        /// MPDUs in the batch.
        n: usize,
        /// Whether it went out as an A-MPDU expecting a Block ACK.
        aggregated: bool,
    },
    /// A Block ACK Request.
    Bar,
}

#[derive(Debug, Clone, Copy)]
struct Exchange {
    dst: StationId,
    kind: TxKind,
    /// When the PPDU ended (for LL-ACK-overhead accounting).
    ended_at: Option<SimTime>,
}

#[derive(Debug, Clone, Copy)]
struct RespPlan {
    to: StationId,
    kind: RespKind,
}

/// A complete 802.11 station MAC.
#[derive(Debug)]
pub struct Station<M: Msdu> {
    id: StationId,
    cfg: MacConfig,
    rng: SimRng,

    // ---- transmit pipeline ----
    queues: Vec<DestQueue<M>>,
    by_dst: HashMap<StationId, usize>,
    rr_cursor: usize,
    contention: Contention,
    /// When the current head-of-line work became pending.
    work_since: Option<SimTime>,
    /// Armed TxStart target, if contending.
    tx_at: Option<SimTime>,
    /// Our non-response PPDU currently on the air.
    in_flight: Option<Exchange>,
    /// Exchange awaiting its ACK / Block ACK.
    wait_response: Option<Exchange>,

    // ---- receive / respond ----
    reorder: HashMap<StationId, RxReorder<M>>,
    pending_response: Option<RespPlan>,
    response_in_flight: bool,

    // ---- carrier state ----
    phys_busy: bool,
    idle_since: SimTime,
    nav_until: SimTime,

    // ---- HACK NIC slots ----
    /// The compressed-TCP-ACK frames the driver has made "ready", one
    /// descriptor chain per destination address (§3.3.1, Figure 3).
    hack_blobs: HashMap<StationId, HackBlob>,
    /// Association-time negotiation outcome per peer: whether HACK
    /// engaged on that link. Absent = never associated (pre-negotiation
    /// links behave as HACK-capable for back-compat with direct driver
    /// wiring).
    peer_caps: HashMap<StationId, bool>,

    stats: MacStats,
    trace: TraceHandle,
}

impl<M: Msdu> Station<M> {
    /// A new station with the given identity and configuration. `rng`
    /// drives backoff draws and must be forked per station for
    /// determinism.
    pub fn new(id: StationId, cfg: MacConfig, rng: SimRng) -> Self {
        Station {
            id,
            contention: Contention::new(cfg.timings),
            cfg,
            rng,
            queues: Vec::new(),
            by_dst: HashMap::new(),
            rr_cursor: 0,
            work_since: None,
            tx_at: None,
            in_flight: None,
            wait_response: None,
            reorder: HashMap::new(),
            pending_response: None,
            response_in_flight: false,
            phys_busy: false,
            idle_since: SimTime::ZERO,
            nav_until: SimTime::ZERO,
            hack_blobs: HashMap::new(),
            peer_caps: HashMap::new(),
            stats: MacStats::default(),
            trace: TraceHandle::off(),
        }
    }

    /// Build this station's association request (client side of the
    /// handshake), advertising the configured capability bits.
    pub fn assoc_request(&self) -> crate::capability::AssocRequest {
        crate::capability::AssocRequest {
            from: self.id,
            caps: crate::capability::CapabilityInfo::hack(self.cfg.hack_capable),
        }
    }

    /// AP side: admit an associating client and answer with the
    /// negotiated outcome (HACK engages only if both ends advertise the
    /// bit).
    pub fn on_assoc_request(
        &mut self,
        req: &crate::capability::AssocRequest,
    ) -> crate::capability::AssocResponse {
        let negotiated = self.cfg.hack_capable && req.caps.hack_capable();
        self.peer_caps.insert(req.from, negotiated);
        crate::capability::AssocResponse {
            from: self.id,
            caps: crate::capability::CapabilityInfo::hack(self.cfg.hack_capable),
            hack_negotiated: negotiated,
        }
    }

    /// Client side: record the AP's association response.
    pub fn on_assoc_response(&mut self, resp: &crate::capability::AssocResponse) {
        self.peer_caps.insert(resp.from, resp.hack_negotiated);
    }

    /// The negotiated HACK outcome toward `peer`: `Some(true)` =
    /// negotiated, `Some(false)` = peer (or we) lacked the bit, `None` =
    /// no association has happened.
    pub fn hack_negotiated(&self, peer: StationId) -> Option<bool> {
        self.peer_caps.get(&peer).copied()
    }

    /// The peer whose ACK / Block ACK this station is currently waiting
    /// on, if any (the supervisor's LL-ACK-timeout attribution).
    pub fn awaiting_response_from(&self) -> Option<StationId> {
        self.wait_response.as_ref().map(|ex| ex.dst)
    }

    /// Install the structured-event trace handle (off by default).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// This station's address.
    pub fn id(&self) -> StationId {
        self.id
    }

    /// The station's configuration.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MacStats {
        &self.stats
    }

    /// MSDUs queued toward `dst` (new + retransmit backlog).
    pub fn backlog(&self, dst: StationId) -> usize {
        self.by_dst
            .get(&dst)
            .map_or(0, |&i| self.queues[i].backlog())
    }

    /// Total backlog across destinations.
    pub fn total_backlog(&self) -> usize {
        self.queues.iter().map(DestQueue::backlog).sum()
    }

    /// Install (replace) the HACK blob for `peer`: the driver's
    /// "TCP/HACK ready" flag plus descriptor contents (§3.3.1, Figure 3).
    /// The blob will be attached to every LL ACK sent to `peer` until
    /// replaced or cleared. Returns the displaced blob, if any, so the
    /// driver can recycle its byte buffer.
    pub fn set_hack_blob(&mut self, peer: StationId, blob: HackBlob) -> Option<HackBlob> {
        self.hack_blobs.insert(peer, blob)
    }

    /// Clear `peer`'s HACK slot (driver confirmed delivery or gave up).
    /// Returns the removed blob, if any, for buffer recycling.
    pub fn clear_hack_blob(&mut self, peer: StationId) -> Option<HackBlob> {
        self.hack_blobs.remove(&peer)
    }

    /// The blob currently installed for `peer`, if any.
    pub fn hack_blob(&self, peer: StationId) -> Option<&HackBlob> {
        self.hack_blobs.get(&peer)
    }

    fn queue_mut(&mut self, dst: StationId) -> &mut DestQueue<M> {
        let idx = *self.by_dst.entry(dst).or_insert_with(|| {
            self.queues.push(DestQueue::new(dst));
            self.queues.len() - 1
        });
        &mut self.queues[idx]
    }

    fn has_work(&self) -> bool {
        self.queues.iter().any(DestQueue::has_work)
    }

    /// Remove and return not-yet-transmitted MSDUs toward `dst` matching
    /// `pred` (Opportunistic HACK's queue grab, §3.2).
    pub fn withdraw_unsent<F: FnMut(&M) -> bool>(&mut self, dst: StationId, pred: F) -> Vec<M> {
        match self.by_dst.get(&dst) {
            Some(&i) => self.queues[i].withdraw_unsent(pred),
            None => Vec::new(),
        }
    }

    /// Tear down the per-association state toward `peer` for an AP
    /// handoff: the negotiated capability record and any installed HACK
    /// blob are dropped, and every not-yet-transmitted MSDU toward
    /// `peer` is withdrawn and returned so the caller can re-route it
    /// through the new association. Frames already in flight (or in the
    /// retransmit window) are left to finish over the air — packets
    /// committed to the old path drain through it, they are not
    /// silently dropped.
    pub fn disassociate(&mut self, peer: StationId) -> Vec<M> {
        self.peer_caps.remove(&peer);
        self.hack_blobs.remove(&peer);
        self.withdraw_unsent(peer, |_| true)
    }

    /// Enqueue an MSDU for transmission to `dst`.
    pub fn enqueue(&mut self, dst: StationId, msdu: M, now: SimTime) -> Vec<Action<M>> {
        self.queue_mut(dst).enqueue(msdu);
        if self.work_since.is_none() {
            self.work_since = Some(now);
        }
        self.maybe_contend(now)
    }

    // ------------------------------------------------------------------
    // Carrier events
    // ------------------------------------------------------------------

    /// The medium went busy at `now` (some station began transmitting;
    /// includes our own transmissions).
    pub fn on_channel_busy(&mut self, now: SimTime) -> Vec<Action<M>> {
        self.phys_busy = true;
        let mut actions = Vec::new();
        if let Some(tx_at) = self.tx_at {
            if tx_at > now {
                // Freeze the countdown; we lost this round.
                self.contention.pause(now);
                self.tx_at = None;
                actions.push(Action::CancelTimer {
                    kind: TimerKind::TxStart,
                });
            }
            // tx_at == now: our slot boundary coincides with the other
            // station's start — both transmit (that *is* a collision).
        }
        if self.wait_response.is_some() {
            // PHY-RXSTART while awaiting a response: a real MAC holds its
            // ACK timeout once it detects the response's preamble (the
            // timeout only bounds the *start* of the response, not its
            // full airtime — a Block ACK at a low basic rate, possibly
            // HACK-extended, can far outlast SIFS+slot+preamble). Extend
            // the deadline past any plausible response airtime; if the
            // frame turns out not to be our response, the pushed-out
            // timeout still fires and recovery proceeds.
            actions.push(Action::SetTimer {
                kind: TimerKind::AckTimeout,
                at: now + SimDuration::from_millis(1),
            });
        }
        actions
    }

    /// The medium went idle at `now`.
    pub fn on_channel_idle(&mut self, now: SimTime) -> Vec<Action<M>> {
        self.phys_busy = false;
        self.idle_since = now;
        self.maybe_contend(now)
    }

    // ------------------------------------------------------------------
    // Reception
    // ------------------------------------------------------------------

    /// A PPDU ended at `now` and this station decoded `frames` from it
    /// (non-empty). `aggregated` says whether the PPDU was an A-MPDU
    /// (expects a Block ACK) or a single MPDU (expects an ACK).
    pub fn on_rx_ppdu(
        &mut self,
        frames: Vec<Frame<M>>,
        aggregated: bool,
        now: SimTime,
    ) -> Vec<Action<M>> {
        debug_assert!(!frames.is_empty());
        self.contention.clear_eifs();
        let mut actions = Vec::new();

        let src = frames[0].src();
        let for_me = frames[0].dst() == self.id;
        debug_assert!(
            frames
                .iter()
                .all(|f| f.src() == src && (f.dst() == self.id) == for_me),
            "one PPDU, one transmitter, one receiver"
        );

        if !for_me {
            self.overheard(&frames, aggregated, now, &mut actions);
            return actions;
        }

        let mut data_frames = Vec::new();
        for frame in frames {
            match frame {
                Frame::Data(d) => data_frames.push(d),
                Frame::Ack { hack, .. } => {
                    self.on_response(src, None, hack, now, &mut actions);
                }
                Frame::BlockAck { bitmap, hack, .. } => {
                    self.on_response(src, Some(bitmap), hack, now, &mut actions);
                }
                Frame::BlockAckReq { start, .. } => {
                    self.on_bar(src, start, now, &mut actions);
                }
            }
        }
        if !data_frames.is_empty() {
            self.on_data(src, data_frames, aggregated, now, &mut actions);
        }
        actions
    }

    /// Energy was detected but nothing decoded (collision or deep fade):
    /// the station must use EIFS before its next contention round.
    pub fn on_rx_garbage(&mut self, _now: SimTime) -> Vec<Action<M>> {
        self.stats.rx_garbage.incr();
        self.contention.set_eifs();
        Vec::new()
    }

    /// One or more MPDUs arrived with flipped bits and failed the FCS
    /// check. The frame bodies are discarded; like any undecodable
    /// reception, the station defers EIFS before its next contention
    /// round (802.11-2016 §10.3.2.3.7).
    pub fn on_rx_corrupt(&mut self, from: StationId, mpdus: u32, now: SimTime) -> Vec<Action<M>> {
        self.stats.rx_fcs_bad.add(u64::from(mpdus));
        trace_ev!(
            self.trace,
            now.as_nanos(),
            self.id.0,
            Event::MacFrameCorrupted {
                from: from.0,
                mpdus
            }
        );
        self.contention.set_eifs();
        Vec::new()
    }

    fn on_data(
        &mut self,
        src: StationId,
        frames: Vec<crate::frame::DataMpdu<M>>,
        aggregated: bool,
        now: SimTime,
        actions: &mut Vec<Action<M>>,
    ) {
        let ordered = self.cfg.aggregation;
        let reorder = self
            .reorder
            .entry(src)
            .or_insert_with(|| RxReorder::new(src, ordered));
        let prev_highest = reorder.highest();

        let more_data = frames.iter().any(|f| f.more_data);
        let sync = frames.iter().any(|f| f.sync);
        let mpdus_ok = frames.len();
        let mut advances_seq = false;

        for f in frames {
            let newer = match prev_highest {
                None => true,
                Some(h) => f.seq.is_newer_than(h),
            };
            advances_seq |= newer;
            let accept = reorder.on_mpdu(f.seq, f.payload);
            for (s, msdu) in accept.deliver {
                actions.push(Action::Deliver { src: s, msdu });
            }
        }

        actions.push(Action::DataReceived(RxDataInfo {
            from: src,
            mpdus_ok,
            more_data,
            sync,
            advances_seq,
            is_aggregate: aggregated,
        }));

        // Queue the SIFS response. A newer data PPDU supersedes any
        // response still pending (its sender will time out and recover).
        self.pending_response = Some(RespPlan {
            to: src,
            kind: if aggregated {
                RespKind::BlockAck
            } else {
                RespKind::Ack
            },
        });
        actions.push(Action::SetTimer {
            kind: TimerKind::SendResponse,
            at: now + self.cfg.timings.sifs + self.cfg.response_extra_delay,
        });
    }

    fn on_bar(
        &mut self,
        src: StationId,
        start: SeqNum,
        now: SimTime,
        actions: &mut Vec<Action<M>>,
    ) {
        let ordered = self.cfg.aggregation;
        let reorder = self
            .reorder
            .entry(src)
            .or_insert_with(|| RxReorder::new(src, ordered));
        for (s, msdu) in reorder.on_bar(start) {
            actions.push(Action::Deliver { src: s, msdu });
        }
        actions.push(Action::BarReceived { from: src, start });
        self.pending_response = Some(RespPlan {
            to: src,
            kind: RespKind::BlockAck,
        });
        actions.push(Action::SetTimer {
            kind: TimerKind::SendResponse,
            at: now + self.cfg.timings.sifs + self.cfg.response_extra_delay,
        });
    }

    fn on_response(
        &mut self,
        src: StationId,
        bitmap: Option<crate::frame::AckBitmap>,
        blob: Option<HackBlob>,
        now: SimTime,
        actions: &mut Vec<Action<M>>,
    ) {
        let expected = self.wait_response.is_some_and(|ex| ex.dst == src);
        let retry_limit = self.cfg.timings.retry_limit;
        let aggregation = self.cfg.aggregation;

        // Account LL ACK latency beyond SIFS for responses we awaited.
        if expected {
            let ex = self.wait_response.take().expect("checked");
            if let Some(ended) = ex.ended_at {
                // Response ended at `now`; its nominal end would have been
                // ended + SIFS + airtime. Overhead = actual − nominal,
                // clamped at zero.
                let nominal = ended + self.cfg.timings.sifs;
                let actual_start_offset = now.saturating_duration_since(nominal);
                // Subtract the response airtime we cannot observe
                // directly here; response_extra_delay is the true knob,
                // use it when configured on the peer — we instead record
                // the measured slack which includes it.
                let resp_air = self
                    .cfg
                    .data_rate
                    .basic_response_rate()
                    .ppdu_duration(u64::from(crate::frame::sizes::BLOCK_ACK));
                self.stats
                    .ll_ack_overhead
                    .add(actual_start_offset.saturating_sub(resp_air));
            }
            actions.push(Action::CancelTimer {
                kind: TimerKind::AckTimeout,
            });
            self.contention.on_success();
        }

        // Resolve the queue regardless of whether we were still waiting —
        // a late Block ACK is still valid feedback.
        let block = bitmap.is_some();
        let res = {
            let q = self.queue_mut(src);
            match bitmap {
                Some(bm) => q.on_block_ack(&bm, retry_limit),
                None => q.on_ack(),
            }
        };
        trace_ev!(
            self.trace,
            now.as_nanos(),
            self.id.0,
            Event::MacLlAck {
                peer: src.0,
                block,
                acked: res.acked,
            }
        );
        self.stats
            .mpdus_first_try
            .add(u64::from(res.acked_first_try));
        self.stats
            .mpdus_retried
            .add(u64::from(res.acked - res.acked_first_try));
        for msdu in res.dropped {
            self.stats.mpdus_dropped.incr();
            actions.push(Action::MsduDropped { dst: src, msdu });
        }
        let _ = aggregation;

        actions.push(Action::ResponseReceived {
            from: src,
            blob,
            acked: res.acked,
            acked_msdus: res.acked_msdus,
        });

        if expected {
            self.work_since = self.has_work().then_some(now);
            actions.extend(self.maybe_contend(now));
        }
    }

    fn overheard(
        &mut self,
        frames: &[Frame<M>],
        aggregated: bool,
        now: SimTime,
        actions: &mut Vec<Action<M>>,
    ) {
        // Virtual carrier sense: data and BAR frames reserve the medium
        // for their SIFS + response tail.
        let resp_bytes = if aggregated || matches!(frames[0], Frame::BlockAckReq { .. }) {
            crate::frame::sizes::BLOCK_ACK
        } else {
            crate::frame::sizes::ACK
        };
        let needs_nav = frames
            .iter()
            .any(|f| matches!(f, Frame::Data(_) | Frame::BlockAckReq { .. }));
        if !needs_nav {
            return;
        }
        let resp_air = self
            .cfg
            .data_rate
            .basic_response_rate()
            .ppdu_duration(u64::from(resp_bytes));
        let until = now + self.cfg.timings.sifs + resp_air + SimDuration::from_micros(8);
        if until > self.nav_until {
            self.nav_until = until;
            actions.push(Action::SetTimer {
                kind: TimerKind::NavExpire,
                at: until,
            });
            if let Some(tx_at) = self.tx_at {
                if tx_at > now {
                    self.contention.pause(now);
                    self.tx_at = None;
                    actions.push(Action::CancelTimer {
                        kind: TimerKind::TxStart,
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Our transmissions
    // ------------------------------------------------------------------

    /// Our PPDU (data, BAR, or response) finished its airtime at `now`.
    pub fn on_tx_end(&mut self, now: SimTime) -> Vec<Action<M>> {
        if self.response_in_flight {
            self.response_in_flight = false;
            return self.maybe_contend(now);
        }
        let mut ex = self
            .in_flight
            .take()
            .expect("on_tx_end with nothing in flight");
        ex.ended_at = Some(now);
        self.wait_response = Some(ex);
        vec![Action::SetTimer {
            kind: TimerKind::AckTimeout,
            at: now + self.cfg.ack_timeout(),
        }]
    }

    /// Timer dispatch.
    pub fn on_timer(&mut self, kind: TimerKind, now: SimTime) -> Vec<Action<M>> {
        match kind {
            TimerKind::TxStart => self.on_tx_start(now),
            TimerKind::AckTimeout => self.on_ack_timeout(now),
            TimerKind::SendResponse => self.on_send_response(now),
            TimerKind::NavExpire => self.maybe_contend(now),
        }
    }

    fn on_tx_start(&mut self, now: SimTime) -> Vec<Action<M>> {
        debug_assert_eq!(self.tx_at, Some(now), "stale TxStart must be filtered");
        self.tx_at = None;
        self.contention.consume();

        // Round-robin over destinations with work.
        let n = self.queues.len();
        let mut picked = None;
        for step in 0..n {
            let idx = (self.rr_cursor + step) % n;
            if self.queues[idx].has_work() {
                picked = Some(idx);
                self.rr_cursor = (idx + 1) % n;
                break;
            }
        }
        let Some(idx) = picked else {
            self.work_since = None;
            return Vec::new();
        };

        let wait = self
            .work_since
            .map(|w| now.saturating_duration_since(w))
            .unwrap_or(SimDuration::ZERO);

        let dst = self.queues[idx].dst();
        if self.queues[idx].bar_pending() {
            // Solicit the missing Block ACK.
            let start = self.queues[idx].window_start();
            let frame = Frame::BlockAckReq {
                src: self.id,
                dst,
                start,
            };
            let rate = self.cfg.data_rate.basic_response_rate();
            let duration = rate.ppdu_duration(u64::from(frame.wire_len()));
            self.in_flight = Some(Exchange {
                dst,
                kind: TxKind::Bar,
                ended_at: None,
            });
            self.stats.tx_attempts.incr();
            self.stats.bars_sent.incr();
            self.stats.acquire_wait_data.add(wait);
            self.stats.airtime_data.add(duration);
            trace_ev!(
                self.trace,
                now.as_nanos(),
                self.id.0,
                Event::MacBar { peer: dst.0 }
            );
            return vec![Action::StartTx(TxDescriptor {
                frames: vec![frame],
                rate,
                duration,
                is_response: false,
                aggregated: false,
            })];
        }

        let cfg = self.cfg.clone();
        let batch = self.queues[idx].build_batch(self.id, &cfg);
        if batch.is_empty() {
            self.work_since = self.has_work().then_some(now);
            return self.maybe_contend(now);
        }

        let aggregated = cfg.aggregation;
        let class = if batch.iter().all(|m| m.payload.is_transport_ack()) {
            TrafficClass::TransportAck
        } else {
            TrafficClass::Data
        };
        let lens: Vec<u32> = batch.iter().map(|m| m.wire_len()).collect();
        let psdu_len = if aggregated {
            u64::from(ampdu_wire_len(&lens))
        } else {
            u64::from(lens[0])
        };
        let duration = cfg.data_rate.ppdu_duration(psdu_len);
        let n_mpdus = batch.len();
        let frames: Vec<Frame<M>> = batch.into_iter().map(Frame::Data).collect();

        self.in_flight = Some(Exchange {
            dst,
            kind: TxKind::Data {
                n: n_mpdus,
                aggregated,
            },
            ended_at: None,
        });
        trace_ev!(
            self.trace,
            now.as_nanos(),
            self.id.0,
            Event::MacAmpdu {
                dst: dst.0,
                mpdus: n_mpdus as u32,
                bytes: psdu_len,
            }
        );
        self.stats.tx_attempts.incr();
        match class {
            TrafficClass::Data => {
                self.stats.acquire_wait_data.add(wait);
                self.stats.airtime_data.add(duration);
            }
            TrafficClass::TransportAck => {
                self.stats.acquire_wait_ack.add(wait);
                self.stats.airtime_ack.add(duration);
            }
        }
        vec![Action::StartTx(TxDescriptor {
            frames,
            rate: cfg.data_rate,
            duration,
            is_response: false,
            aggregated,
        })]
    }

    fn on_ack_timeout(&mut self, now: SimTime) -> Vec<Action<M>> {
        let Some(ex) = self.wait_response.take() else {
            return Vec::new();
        };
        self.stats.ack_timeouts.incr();
        let mut actions = Vec::new();
        let within_budget = self.contention.on_failure();
        let aggregation = self.cfg.aggregation;
        let retry_limit = self.cfg.timings.retry_limit;

        match ex.kind {
            TxKind::Data { n, .. } => {
                let dropped = {
                    let q = self.queue_mut(ex.dst);
                    q.on_no_response(aggregation, retry_limit)
                };
                trace_ev!(
                    self.trace,
                    now.as_nanos(),
                    self.id.0,
                    Event::MacRetry {
                        dst: ex.dst.0,
                        mpdus: n as u32,
                    }
                );
                if !dropped.is_empty() {
                    trace_ev!(
                        self.trace,
                        now.as_nanos(),
                        self.id.0,
                        Event::MacDrop {
                            dst: ex.dst.0,
                            mpdus: dropped.len() as u32,
                        }
                    );
                }
                for msdu in dropped {
                    self.stats.mpdus_dropped.incr();
                    actions.push(Action::MsduDropped { dst: ex.dst, msdu });
                }
            }
            TxKind::Bar => {
                if !within_budget {
                    self.stats.bars_exhausted.incr();
                    self.queue_mut(ex.dst).on_bar_exhausted();
                    self.contention.on_abandon();
                    actions.push(Action::BarExhausted { dst: ex.dst });
                }
                // Within budget: bar_pending remains set; we re-contend
                // and send another BAR.
            }
        }

        self.work_since = self.has_work().then_some(now);
        actions.extend(self.maybe_contend(now));
        actions
    }

    fn on_send_response(&mut self, now: SimTime) -> Vec<Action<M>> {
        let Some(plan) = self.pending_response.take() else {
            return Vec::new();
        };
        // Attach the HACK blob installed for this peer, if any. The blob
        // is *retained* (cloned): the driver clears it only on the §3.4
        // confirmation signals. A peer that associated *without*
        // negotiating HACK never gets a blob — its NIC cannot parse an
        // augmented LL ACK (a peer with no association record is treated
        // as capable, for direct driver wiring).
        let blob = if self.peer_caps.get(&plan.to) == Some(&false) {
            None
        } else {
            self.hack_blobs.get(&plan.to).cloned()
        };
        let attached = blob.is_some();
        let blob_wire = blob.as_ref().map_or(0, HackBlob::wire_len);

        let frame = match plan.kind {
            RespKind::Ack => Frame::Ack {
                src: self.id,
                dst: plan.to,
                hack: blob,
            },
            RespKind::BlockAck => {
                let bitmap = self
                    .reorder
                    .get(&plan.to)
                    .map(|r| r.ba_bitmap())
                    .unwrap_or_else(|| crate::frame::AckBitmap::new(SeqNum::new(0)));
                Frame::BlockAck {
                    src: self.id,
                    dst: plan.to,
                    bitmap,
                    hack: blob,
                }
            }
        };
        let rate = self.cfg.data_rate.basic_response_rate();
        let duration = rate.ppdu_duration(u64::from(frame.wire_len()));
        self.response_in_flight = true;
        self.stats.responses_sent.incr();
        if attached {
            trace_ev!(
                self.trace,
                now.as_nanos(),
                self.id.0,
                Event::MacBlobAttach {
                    peer: plan.to.0,
                    bytes: blob_wire,
                }
            );
            self.stats.responses_with_blob.incr();
            // Extra airtime caused by the blob (Table 3's "ROHC" column):
            // the difference against the same response without the blob.
            let plain = rate.ppdu_duration(u64::from(frame.wire_len() - blob_wire));
            self.stats.airtime_blob.add(duration - plain);
            if duration - plain <= self.cfg.timings.aifs() {
                self.stats.blob_within_aifs.incr();
            } else {
                self.stats.blob_beyond_aifs.incr();
            }
        }
        self.stats.airtime_response.add(duration);
        vec![
            Action::ResponseSent {
                to: plan.to,
                kind: plan.kind,
                attached_blob: attached,
            },
            Action::StartTx(TxDescriptor {
                frames: vec![frame],
                rate,
                duration,
                is_response: true,
                aggregated: false,
            }),
        ]
    }

    // ------------------------------------------------------------------
    // Contention driver
    // ------------------------------------------------------------------

    fn maybe_contend(&mut self, now: SimTime) -> Vec<Action<M>> {
        if self.tx_at.is_some()
            || self.in_flight.is_some()
            || self.wait_response.is_some()
            || self.pending_response.is_some()
            || self.response_in_flight
            || self.phys_busy
            || now < self.nav_until
        {
            return Vec::new();
        }
        if !self.has_work() {
            self.work_since = None;
            return Vec::new();
        }
        let work_since = *self.work_since.get_or_insert(now);
        let idle_since = self.idle_since.max(self.nav_until);
        let tx_at = self
            .contention
            .start_countdown(idle_since, work_since, &mut self.rng);
        trace_ev!(
            self.trace,
            now.as_nanos(),
            self.id.0,
            Event::MacBackoff {
                slots: self.contention.remaining().unwrap_or(0),
                cw: self.contention.cw(),
            }
        );
        // The countdown can resolve into the past when the medium has
        // long been idle; clamp to now.
        let tx_at = tx_at.max(now);
        self.tx_at = Some(tx_at);
        vec![Action::SetTimer {
            kind: TimerKind::TxStart,
            at: tx_at,
        }]
    }
}
