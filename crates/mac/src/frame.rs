//! 802.11 MAC frame types as carried by the simulated medium.
//!
//! Frames are represented structurally; wire sizes are accounted exactly
//! so airtime (and therefore every throughput number) is faithful:
//!
//! * QoS Data MPDU: 26-byte header + 8-byte LLC/SNAP + MSDU + 4-byte FCS
//!   ⇒ a 1500-byte IP datagram becomes a 1538-byte MPDU, and 42 of them
//!   fill a 64 KB A-MPDU — the batch size the paper's §4.3 buffer sizing
//!   is built around.
//! * ACK: 14 bytes. Block ACK (compressed bitmap): 32 bytes. BAR: 24.
//! * A HACK-augmented (Block) ACK additionally carries an opaque
//!   compressed-TCP-ACK blob, prefixed by a 2-byte length field. The MAC
//!   treats the blob as opaque bits, exactly as the paper requires of the
//!   NIC ("all TCP-aware processing must occur in the host software").
//!
//! The MORE DATA bit is the stock 802.11 power-save bit, reused by HACK;
//! the SYNC bit occupies a reserved Frame Control bit (§3.4, Figure 8).

use hack_phy::StationId;

/// A 12-bit, wrapping 802.11 sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(u16);

/// Sequence-number space size (12 bits).
pub const SEQ_SPACE: u16 = 4096;

impl SeqNum {
    /// Construct from a raw value (wrapped into 12 bits).
    pub fn new(v: u16) -> Self {
        SeqNum(v % SEQ_SPACE)
    }

    /// Raw 12-bit value.
    pub fn value(self) -> u16 {
        self.0
    }

    /// The next sequence number, wrapping at 4096.
    pub fn next(self) -> SeqNum {
        SeqNum((self.0 + 1) % SEQ_SPACE)
    }

    /// Advance by `n`, wrapping.
    ///
    /// Deliberately an inherent method, not `ops::Add`: MAC sequence
    /// arithmetic is modulo 4096 and should look like a method call.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u16) -> SeqNum {
        SeqNum((self.0 + n % SEQ_SPACE) % SEQ_SPACE)
    }

    /// Forward distance from `other` to `self` modulo 4096.
    pub fn dist_from(self, other: SeqNum) -> u16 {
        (self.0 + SEQ_SPACE - other.0) % SEQ_SPACE
    }

    /// Wrapping-window comparison: is `self` ahead of `other`? True when
    /// the forward distance from `other` is in (0, 2048).
    pub fn is_newer_than(self, other: SeqNum) -> bool {
        let d = self.dist_from(other);
        d > 0 && d < SEQ_SPACE / 2
    }
}

/// Opaque compressed-TCP-ACK bytes appended to a link-layer ACK. The MAC
/// and NIC never look inside; only the HACK drivers in `hack-core` do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HackBlob {
    /// The ROHC-compressed TCP ACK frame (concatenated compressed ACKs).
    pub bytes: Vec<u8>,
}

impl HackBlob {
    /// Wire cost of carrying this blob on an LL ACK: a 2-byte length
    /// field plus the blob itself.
    pub fn wire_len(&self) -> u32 {
        2 + self.bytes.len() as u32
    }
}

/// The payload a data MPDU carries. The MAC is payload-agnostic; upper
/// layers implement this for their packet type.
pub trait Msdu: Clone + std::fmt::Debug {
    /// Length in bytes of the MSDU as handed to the MAC (e.g. an IP
    /// datagram's total length).
    fn wire_len(&self) -> u32;

    /// Whether this MSDU is a transport-layer acknowledgment packet
    /// (e.g. a native TCP ACK). Used only for the per-class time
    /// accounting behind the paper's Table 3 — never for protocol
    /// decisions, which would violate the "NIC treats payloads as opaque"
    /// design goal.
    fn is_transport_ack(&self) -> bool {
        false
    }
}

/// Byte-size constants for frame overheads.
pub mod sizes {
    /// QoS Data MAC header (FC 2 + Dur 2 + 3 addresses 18 + Seq 2 + QoS 2).
    pub const QOS_DATA_HEADER: u32 = 26;
    /// Frame check sequence.
    pub const FCS: u32 = 4;
    /// LLC/SNAP encapsulation of an IP datagram.
    pub const LLC_SNAP: u32 = 8;
    /// Total MAC-layer overhead added to an MSDU.
    pub const DATA_OVERHEAD: u32 = QOS_DATA_HEADER + LLC_SNAP + FCS;
    /// ACK control frame.
    pub const ACK: u32 = 14;
    /// Compressed-bitmap Block ACK control frame.
    pub const BLOCK_ACK: u32 = 32;
    /// Block ACK Request control frame.
    pub const BAR: u32 = 24;
    /// A-MPDU subframe delimiter.
    pub const AMPDU_DELIMITER: u32 = 4;
}

/// One data MPDU.
#[derive(Debug, Clone)]
pub struct DataMpdu<M> {
    /// Transmitter.
    pub src: StationId,
    /// Receiver.
    pub dst: StationId,
    /// 12-bit sequence number.
    pub seq: SeqNum,
    /// Retry bit: set on retransmissions.
    pub retry: bool,
    /// MORE DATA bit: the transmitter has further frames queued for this
    /// receiver beyond this batch (HACK's safe-to-hold signal, §3.2).
    pub more_data: bool,
    /// SYNC bit: the transmitter exhausted BAR retries and moved on; the
    /// receiver must retain and re-send its compressed ACK state (§3.4).
    pub sync: bool,
    /// The MSDU.
    pub payload: M,
}

impl<M: Msdu> DataMpdu<M> {
    /// MPDU length on the wire.
    pub fn wire_len(&self) -> u32 {
        sizes::DATA_OVERHEAD + self.payload.wire_len()
    }
}

/// Bitmap of received MPDUs relative to a starting sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckBitmap {
    /// First sequence number the bitmap describes.
    pub start: SeqNum,
    /// Bit `i` set ⇔ `start + i` was received. 64 MPDUs per window.
    pub bits: u64,
}

impl AckBitmap {
    /// An empty bitmap starting at `start`.
    pub fn new(start: SeqNum) -> Self {
        AckBitmap { start, bits: 0 }
    }

    /// Mark `seq` received if it falls within the 64-wide window.
    pub fn set(&mut self, seq: SeqNum) {
        let d = seq.dist_from(self.start);
        if d < 64 {
            self.bits |= 1 << d;
        }
    }

    /// Whether `seq` is marked received.
    pub fn contains(&self, seq: SeqNum) -> bool {
        let d = seq.dist_from(self.start);
        d < 64 && (self.bits >> d) & 1 == 1
    }

    /// Iterate over the received sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = SeqNum> + '_ {
        (0u16..64)
            .filter(|&i| (self.bits >> i) & 1 == 1)
            .map(move |i| self.start.add(i))
    }

    /// Number of received MPDUs recorded.
    pub fn count(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// A link-layer control or data frame on the air.
#[derive(Debug, Clone)]
pub enum Frame<M> {
    /// A (possibly aggregated) data MPDU. An A-MPDU appears on the medium
    /// as several `Data` frames inside one PPDU.
    Data(DataMpdu<M>),
    /// Simple ACK for a single MPDU, optionally HACK-augmented.
    Ack {
        /// Transmitter of the ACK.
        src: StationId,
        /// The station being acknowledged.
        dst: StationId,
        /// Compressed TCP ACKs riding on this LL ACK (TCP/HACK).
        hack: Option<HackBlob>,
    },
    /// Block ACK for an A-MPDU, optionally HACK-augmented.
    BlockAck {
        /// Transmitter of the Block ACK.
        src: StationId,
        /// The station being acknowledged.
        dst: StationId,
        /// Which MPDUs were received.
        bitmap: AckBitmap,
        /// Compressed TCP ACKs riding on this Block ACK (TCP/HACK).
        hack: Option<HackBlob>,
    },
    /// Block ACK Request: solicits a fresh Block ACK when the original
    /// was not received.
    BlockAckReq {
        /// Transmitter of the request.
        src: StationId,
        /// Receiver expected to answer with a Block ACK.
        dst: StationId,
        /// Window start the requester cares about.
        start: SeqNum,
    },
}

impl<M: Msdu> Frame<M> {
    /// The transmitting station.
    pub fn src(&self) -> StationId {
        match self {
            Frame::Data(d) => d.src,
            Frame::Ack { src, .. } => *src,
            Frame::BlockAck { src, .. } => *src,
            Frame::BlockAckReq { src, .. } => *src,
        }
    }

    /// The intended receiver.
    pub fn dst(&self) -> StationId {
        match self {
            Frame::Data(d) => d.dst,
            Frame::Ack { dst, .. } => *dst,
            Frame::BlockAck { dst, .. } => *dst,
            Frame::BlockAckReq { dst, .. } => *dst,
        }
    }

    /// Frame length on the wire in bytes.
    pub fn wire_len(&self) -> u32 {
        match self {
            Frame::Data(d) => d.wire_len(),
            Frame::Ack { hack, .. } => sizes::ACK + hack.as_ref().map_or(0, HackBlob::wire_len),
            Frame::BlockAck { hack, .. } => {
                sizes::BLOCK_ACK + hack.as_ref().map_or(0, HackBlob::wire_len)
            }
            Frame::BlockAckReq { .. } => sizes::BAR,
        }
    }
}

/// Length on the wire of an A-MPDU aggregating MPDUs of the given sizes:
/// each subframe is a 4-byte delimiter plus the MPDU padded to a 4-byte
/// boundary.
pub fn ampdu_wire_len(mpdu_lens: &[u32]) -> u32 {
    mpdu_lens
        .iter()
        .map(|&l| sizes::AMPDU_DELIMITER + l.div_ceil(4) * 4)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Blob(u32);
    impl Msdu for Blob {
        fn wire_len(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn seq_wraps_at_4096() {
        assert_eq!(SeqNum::new(4095).next(), SeqNum::new(0));
        assert_eq!(SeqNum::new(4096), SeqNum::new(0));
        assert_eq!(SeqNum::new(10).add(4090), SeqNum::new(4));
    }

    #[test]
    fn seq_ordering_across_wrap() {
        assert!(SeqNum::new(1).is_newer_than(SeqNum::new(4095)));
        assert!(!SeqNum::new(4095).is_newer_than(SeqNum::new(1)));
        assert!(SeqNum::new(100).is_newer_than(SeqNum::new(99)));
        assert!(!SeqNum::new(99).is_newer_than(SeqNum::new(99)));
        assert_eq!(SeqNum::new(3).dist_from(SeqNum::new(4094)), 5);
    }

    #[test]
    fn mpdu_wire_len_matches_paper_arithmetic() {
        let mpdu = DataMpdu {
            src: StationId(0),
            dst: StationId(1),
            seq: SeqNum::new(0),
            retry: false,
            more_data: false,
            sync: false,
            payload: Blob(1500),
        };
        // 1500-byte IP datagram => 1538-byte MPDU.
        assert_eq!(mpdu.wire_len(), 1538);
        // 42 such MPDUs fit in a 64 KB A-MPDU, 43 do not.
        let lens42 = vec![1538u32; 42];
        let lens43 = vec![1538u32; 43];
        assert!(ampdu_wire_len(&lens42) <= 65_535);
        assert!(ampdu_wire_len(&lens43) > 65_535);
    }

    #[test]
    fn ampdu_padding_rounds_to_4() {
        // 13-byte MPDU pads to 16, plus 4-byte delimiter = 20.
        assert_eq!(ampdu_wire_len(&[13]), 20);
        assert_eq!(ampdu_wire_len(&[16]), 20);
        assert_eq!(ampdu_wire_len(&[]), 0);
    }

    #[test]
    fn control_frame_sizes() {
        let ack: Frame<Blob> = Frame::Ack {
            src: StationId(0),
            dst: StationId(1),
            hack: None,
        };
        assert_eq!(ack.wire_len(), 14);
        let ba: Frame<Blob> = Frame::BlockAck {
            src: StationId(0),
            dst: StationId(1),
            bitmap: AckBitmap::new(SeqNum::new(0)),
            hack: None,
        };
        assert_eq!(ba.wire_len(), 32);
        let bar: Frame<Blob> = Frame::BlockAckReq {
            src: StationId(0),
            dst: StationId(1),
            start: SeqNum::new(0),
        };
        assert_eq!(bar.wire_len(), 24);
    }

    #[test]
    fn hack_blob_adds_len_field_plus_bytes() {
        let ba: Frame<Blob> = Frame::BlockAck {
            src: StationId(0),
            dst: StationId(1),
            bitmap: AckBitmap::new(SeqNum::new(0)),
            hack: Some(HackBlob {
                bytes: vec![0u8; 10],
            }),
        };
        assert_eq!(ba.wire_len(), 32 + 2 + 10);
    }

    #[test]
    fn bitmap_set_contains_iter() {
        let mut bm = AckBitmap::new(SeqNum::new(4090));
        bm.set(SeqNum::new(4090));
        bm.set(SeqNum::new(4095));
        bm.set(SeqNum::new(3)); // wraps: distance 9
        bm.set(SeqNum::new(600)); // outside window: ignored
        assert!(bm.contains(SeqNum::new(4090)));
        assert!(bm.contains(SeqNum::new(4095)));
        assert!(bm.contains(SeqNum::new(3)));
        assert!(!bm.contains(SeqNum::new(4091)));
        assert!(!bm.contains(SeqNum::new(600)));
        let got: Vec<u16> = bm.iter().map(SeqNum::value).collect();
        assert_eq!(got, vec![4090, 4095, 3]);
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn frame_src_dst_accessors() {
        let f: Frame<Blob> = Frame::BlockAckReq {
            src: StationId(7),
            dst: StationId(9),
            start: SeqNum::new(4),
        };
        assert_eq!(f.src(), StationId(7));
        assert_eq!(f.dst(), StationId(9));
    }
}
