//! Outputs of the sans-IO MAC state machine.
//!
//! [`crate::station::Station`] never performs IO: every handler returns a
//! `Vec<Action<M>>` that the event loop in `hack-core` materializes —
//! starting transmissions on the medium, arming timers, delivering MSDUs
//! upward, and feeding the HACK drivers their indications.

use hack_phy::{PhyRate, StationId};
use hack_sim::{SimDuration, SimTime};

use crate::frame::{Frame, HackBlob, SeqNum};

/// The station's one-shot timers. At most one of each kind is armed at a
/// time; re-arming cancels the previous instance (the event loop enforces
/// this through `hack_sim::TimerTable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Backoff completed — begin transmitting the pending batch.
    TxStart,
    /// The expected ACK / Block ACK never arrived.
    AckTimeout,
    /// SIFS (plus any configured extra delay) elapsed — send the response.
    SendResponse,
    /// The NAV set from an overheard frame expired.
    NavExpire,
}

/// What kind of response a station transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespKind {
    /// A single-MPDU ACK.
    Ack,
    /// A Block ACK covering an A-MPDU.
    BlockAck,
}

/// A PPDU the station wants on the air **now**.
#[derive(Debug, Clone)]
pub struct TxDescriptor<M> {
    /// The frames inside the PPDU (one for control/single data; many for
    /// an A-MPDU).
    pub frames: Vec<Frame<M>>,
    /// PSDU rate.
    pub rate: PhyRate,
    /// Total airtime including preamble (precomputed by the MAC so the
    /// event loop can schedule the end-of-transmission event).
    pub duration: SimDuration,
    /// True for SIFS responses (ACK/Block ACK), which bypass contention.
    pub is_response: bool,
    /// True when this PPDU is an A-MPDU whose receiver must answer with
    /// a Block ACK (drives the receiver's response choice).
    pub aggregated: bool,
}

/// Summary of one received data PPDU addressed to this station — the
/// client-side HACK driver's primary input (§3.3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxDataInfo {
    /// Transmitter of the data.
    pub from: StationId,
    /// How many MPDUs decoded successfully in this PPDU.
    pub mpdus_ok: usize,
    /// MORE DATA bit observed on the batch.
    pub more_data: bool,
    /// SYNC bit observed on the batch (§3.4).
    pub sync: bool,
    /// Whether any decoded MPDU carried a sequence number newer than
    /// everything previously received from `from` — the implicit
    /// ACK-of-ACK signal for single-MPDU mode (Figure 5(b)).
    pub advances_seq: bool,
    /// Whether this PPDU was an aggregate (Block-ACK exchange) or a
    /// single MPDU (plain-ACK exchange).
    pub is_aggregate: bool,
}

/// Everything a station can ask of the outside world.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Begin a transmission immediately.
    StartTx(TxDescriptor<M>),
    /// Arm (or re-arm) a timer to fire at `at`.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Absolute firing time.
        at: SimTime,
    },
    /// Cancel a timer if armed.
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
    /// Deliver a received MSDU to the upper layer (in order, deduplicated).
    Deliver {
        /// Originating station.
        src: StationId,
        /// The MSDU.
        msdu: M,
    },
    /// A data PPDU addressed to us was received (HACK driver hook; fires
    /// even when every MSDU in it was a duplicate).
    DataReceived(RxDataInfo),
    /// We just transmitted a response. `attached_blob` reports whether a
    /// HACK blob rode on it — the "NIC interrupt indicates whether the
    /// NIC succeeded in sending the compressed ACKs" signal (§3.3.1).
    ResponseSent {
        /// Receiver of the response.
        to: StationId,
        /// ACK or Block ACK.
        kind: RespKind,
        /// Whether the HACK blob slot was attached.
        attached_blob: bool,
    },
    /// We received the response to our transmission. Carries any HACK
    /// blob for the AP-side driver to decompress (§3.3.1).
    ResponseReceived {
        /// The responding station.
        from: StationId,
        /// Compressed TCP ACKs extracted from the LL ACK, if any.
        blob: Option<HackBlob>,
        /// Data MPDUs newly acknowledged by this response.
        acked: u32,
        /// The acknowledged MSDUs themselves (for driver bookkeeping —
        /// e.g. Opportunistic HACK matching delivered native TCP ACKs
        /// against held compressed copies).
        acked_msdus: Vec<M>,
    },
    /// We received a Block ACK Request — our previous Block ACK (and any
    /// blob on it) did not reach the sender (Figure 5(a)/6).
    BarReceived {
        /// The requesting station.
        from: StationId,
        /// Window start named by the request.
        start: SeqNum,
    },
    /// An MSDU was dropped after exhausting its retry budget.
    MsduDropped {
        /// Intended receiver.
        dst: StationId,
        /// The abandoned MSDU.
        msdu: M,
    },
    /// BAR retries toward `dst` were exhausted; the MAC moved on (and
    /// will set SYNC on the next batch if configured).
    BarExhausted {
        /// The unresponsive receiver.
        dst: StationId,
    },
}

impl<M> Action<M> {
    /// Convenience for tests: is this a `StartTx`?
    pub fn is_start_tx(&self) -> bool {
        matches!(self, Action::StartTx(_))
    }
}
