//! Receive-side state per transmitter: the Block ACK scoreboard (what to
//! put in the bitmap), duplicate suppression, and the 802.11n reorder
//! buffer that delivers MSDUs to the upper layer in sequence order.
//!
//! In aggregation mode the buffer holds out-of-order MPDUs until the gap
//! fills, a BAR advances the window, or the 64-deep window overflows —
//! at which point held MSDUs are released (with gaps; TCP above deals
//! with the loss). In single-MPDU (802.11a) mode frames are delivered
//! immediately and only duplicates are suppressed, since the transmitter
//! never reorders.

use std::collections::BTreeMap;

use hack_phy::StationId;

use crate::frame::{AckBitmap, SeqNum};

/// Outcome of offering one received MPDU to the reorder machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxAccept<M> {
    /// MSDUs released to the upper layer by this MPDU (possibly several,
    /// when it fills a gap; possibly none, when it is buffered).
    pub deliver: Vec<(StationId, M)>,
    /// Whether the MPDU was new (false = duplicate of something already
    /// received).
    pub is_new: bool,
}

/// Per-transmitter receive state.
#[derive(Debug)]
pub struct RxReorder<M> {
    src: StationId,
    /// Deliver strictly in order (802.11n aggregation) or immediately
    /// (802.11a single MPDUs).
    ordered: bool,
    /// Next sequence number owed to the upper layer.
    win_start: SeqNum,
    /// Out-of-order MPDUs held for delivery, keyed by distance from
    /// `win_start` at insertion time is wrong under wrap, so key by raw
    /// seq and consult distances on use.
    held: BTreeMap<u16, M>,
    /// Scoreboard of received-but-possibly-undelivered seqs for BA
    /// bitmaps and duplicate detection, as distances are recomputed per
    /// query: we keep the most recent 128 received seqs.
    seen: Vec<SeqNum>,
    /// Highest (newest) sequence number ever received.
    highest: Option<SeqNum>,
}

const SEEN_CAP: usize = 128;

impl<M> RxReorder<M> {
    /// New receive state for frames from `src`. The window starts at
    /// sequence 0 — the implicit Block ACK agreement starting point
    /// (transmitters assign sequence numbers from 0 per destination).
    /// Aligning to the first *received* frame instead would silently
    /// mark a lost first MPDU as delivered.
    pub fn new(src: StationId, ordered: bool) -> Self {
        RxReorder {
            src,
            ordered,
            win_start: SeqNum::new(0),
            held: BTreeMap::new(),
            seen: Vec::new(),
            highest: None,
        }
    }

    /// The transmitter this state tracks.
    pub fn src(&self) -> StationId {
        self.src
    }

    /// Next in-order sequence number owed upward.
    pub fn window_start(&self) -> SeqNum {
        self.win_start
    }

    /// Highest sequence number received so far.
    pub fn highest(&self) -> Option<SeqNum> {
        self.highest
    }

    /// Has `seq` been received before?
    pub fn is_duplicate(&self, seq: SeqNum) -> bool {
        self.seen.contains(&seq)
    }

    fn note_seen(&mut self, seq: SeqNum) {
        if self.seen.len() == SEEN_CAP {
            self.seen.remove(0);
        }
        self.seen.push(seq);
        let newer = match self.highest {
            None => true,
            Some(h) => seq.is_newer_than(h),
        };
        if newer {
            self.highest = Some(seq);
        }
    }

    /// Offer one decoded MPDU. Returns what to deliver upward and whether
    /// the MPDU was new. On the first ever reception the window aligns
    /// itself to the received sequence number (implicit BA session setup).
    pub fn on_mpdu(&mut self, seq: SeqNum, msdu: M) -> RxAccept<M> {
        if self.is_duplicate(seq) {
            return RxAccept {
                deliver: Vec::new(),
                is_new: false,
            };
        }
        self.note_seen(seq);

        if !self.ordered {
            // Immediate delivery, duplicates already filtered.
            if seq == self.win_start || seq.is_newer_than(self.win_start) {
                self.win_start = seq.next();
            }
            return RxAccept {
                deliver: vec![(self.src, msdu)],
                is_new: true,
            };
        }

        // Ordered (Block ACK) path.
        let dist = seq.dist_from(self.win_start);
        if dist >= 2048 {
            // Behind the window: old duplicate that fell out of `seen`.
            return RxAccept {
                deliver: Vec::new(),
                is_new: false,
            };
        }
        if dist >= 64 {
            // Window overflow: slide forward to seq-63, releasing
            // everything that falls out (with gaps).
            let new_start = seq.add(4096 - 63);
            let mut out = self.release_before(new_start);
            self.win_start = new_start;
            self.held.insert(seq.value(), msdu);
            out.extend(self.drain_in_order());
            return RxAccept {
                deliver: out,
                is_new: true,
            };
        }
        self.held.insert(seq.value(), msdu);
        let deliver = self.drain_in_order();
        RxAccept {
            deliver,
            is_new: true,
        }
    }

    /// A Block ACK Request names `start`: release everything held below
    /// it and advance the window.
    pub fn on_bar(&mut self, start: SeqNum) -> Vec<(StationId, M)> {
        if !start.is_newer_than(self.win_start) {
            return Vec::new();
        }
        let mut out = self.release_before(start);
        self.win_start = start;
        out.extend(self.drain_in_order());
        out
    }

    /// Release held MSDUs with seq strictly before `bound` (in order).
    fn release_before(&mut self, bound: SeqNum) -> Vec<(StationId, M)> {
        let mut keys: Vec<u16> = self
            .held
            .keys()
            .copied()
            .filter(|&k| bound.is_newer_than(SeqNum::new(k)))
            .collect();
        keys.sort_by_key(|&k| SeqNum::new(k).dist_from(self.win_start));
        keys.into_iter()
            .map(|k| (self.src, self.held.remove(&k).expect("key present")))
            .collect()
    }

    /// Deliver consecutively from `win_start` while held.
    fn drain_in_order(&mut self) -> Vec<(StationId, M)> {
        let mut out = Vec::new();
        while let Some(msdu) = self.held.remove(&self.win_start.value()) {
            out.push((self.src, msdu));
            self.win_start = self.win_start.next();
        }
        out
    }

    /// Build the Block ACK bitmap describing the current window: starts
    /// at the oldest unresolved point and marks everything received
    /// within 64 seqs. Window start alone tells the transmitter that all
    /// older seqs were delivered.
    pub fn ba_bitmap(&self) -> AckBitmap {
        let mut bm = AckBitmap::new(self.win_start);
        for &s in &self.seen {
            bm.set(s); // set() ignores seqs outside the 64 window
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AP: StationId = StationId(0);

    fn sb(ordered: bool) -> RxReorder<u32> {
        RxReorder::new(AP, ordered)
    }

    #[test]
    fn in_order_delivery() {
        let mut r = sb(true);
        for i in 0..5u16 {
            let acc = r.on_mpdu(SeqNum::new(i), u32::from(i));
            assert!(acc.is_new);
            assert_eq!(acc.deliver, vec![(AP, u32::from(i))]);
        }
        assert_eq!(r.window_start(), SeqNum::new(5));
    }

    #[test]
    fn gap_holds_until_filled() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(0), 0);
        // 2 arrives before 1: held.
        let acc = r.on_mpdu(SeqNum::new(2), 2);
        assert!(acc.is_new);
        assert!(acc.deliver.is_empty());
        // 1 fills the gap: both released in order.
        let acc = r.on_mpdu(SeqNum::new(1), 1);
        assert_eq!(acc.deliver, vec![(AP, 1), (AP, 2)]);
        assert_eq!(r.window_start(), SeqNum::new(3));
    }

    #[test]
    fn duplicates_not_redelivered_but_reacked() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(0), 0);
        let acc = r.on_mpdu(SeqNum::new(0), 0);
        assert!(!acc.is_new);
        assert!(acc.deliver.is_empty());
        // The bitmap still covers it via the advanced window start.
        let bm = r.ba_bitmap();
        assert_eq!(bm.start, SeqNum::new(1));
    }

    #[test]
    fn bar_flushes_gap() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(0), 0);
        r.on_mpdu(SeqNum::new(2), 2);
        r.on_mpdu(SeqNum::new(3), 3);
        // Transmitter gave up on seq 1 and BARs at 2: held frames flush.
        let out = r.on_bar(SeqNum::new(2));
        assert_eq!(out, vec![(AP, 2), (AP, 3)]);
        assert_eq!(r.window_start(), SeqNum::new(4));
    }

    #[test]
    fn bar_behind_window_is_noop() {
        let mut r = sb(true);
        for i in 0..4u16 {
            r.on_mpdu(SeqNum::new(i), u32::from(i));
        }
        let out = r.on_bar(SeqNum::new(1));
        assert!(out.is_empty());
        assert_eq!(r.window_start(), SeqNum::new(4));
    }

    #[test]
    fn window_overflow_releases_stale_head() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(0), 0);
        // Lose seq 1; receive 2..=64 (window start stuck at 1, 63 held).
        for i in 2..=64u16 {
            let acc = r.on_mpdu(SeqNum::new(i), u32::from(i));
            assert!(acc.deliver.is_empty(), "seq {i} must be held");
        }
        // Seq 65 is 64 beyond win_start=1: slide to 65-63=2, release 2..,
        // then 65 itself joins in-order drain only after 64.
        let acc = r.on_mpdu(SeqNum::new(65), 65);
        assert!(acc.is_new);
        let vals: Vec<u32> = acc.deliver.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, (2..=65).collect::<Vec<u32>>());
        assert_eq!(r.window_start(), SeqNum::new(66));
    }

    #[test]
    fn window_starts_at_zero_so_lost_first_mpdu_stays_unacked() {
        // If MPDU 0 of the very first batch is lost and MPDU 1 arrives,
        // the Block ACK must NOT cover seq 0 — the transmitter needs to
        // retransmit it.
        let mut r = sb(true);
        let acc = r.on_mpdu(SeqNum::new(1), 1);
        assert!(acc.deliver.is_empty(), "held until seq 0 arrives");
        let bm = r.ba_bitmap();
        assert_eq!(bm.start, SeqNum::new(0));
        assert!(!bm.contains(SeqNum::new(0)));
        assert!(bm.contains(SeqNum::new(1)));
        // The retransmission completes the pair in order.
        let acc = r.on_mpdu(SeqNum::new(0), 0);
        assert_eq!(acc.deliver, vec![(AP, 0), (AP, 1)]);
    }

    #[test]
    fn unordered_mode_delivers_immediately_with_dedup() {
        let mut r = sb(false);
        assert_eq!(r.on_mpdu(SeqNum::new(0), 0).deliver.len(), 1);
        // Gap: seq 2 delivered immediately despite missing 1.
        assert_eq!(r.on_mpdu(SeqNum::new(2), 2).deliver.len(), 1);
        // Retransmitted dup suppressed.
        let acc = r.on_mpdu(SeqNum::new(2), 2);
        assert!(!acc.is_new);
        assert!(acc.deliver.is_empty());
        // Late arrival of 1 still delivered (upper layer reorders).
        assert_eq!(r.on_mpdu(SeqNum::new(1), 1).deliver.len(), 1);
    }

    #[test]
    fn ba_bitmap_reflects_window() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(0), 0);
        r.on_mpdu(SeqNum::new(2), 2);
        r.on_mpdu(SeqNum::new(5), 5);
        let bm = r.ba_bitmap();
        assert_eq!(bm.start, SeqNum::new(1));
        assert!(!bm.contains(SeqNum::new(1)));
        assert!(bm.contains(SeqNum::new(2)));
        assert!(bm.contains(SeqNum::new(5)));
        // seq 0 is covered by start > 0, not by a bit.
        assert!(SeqNum::new(1).is_newer_than(SeqNum::new(0)));
    }

    #[test]
    fn seq_wrap_handled() {
        // Walk the window all the way around the 12-bit space and cross
        // the wrap boundary in-order.
        let mut r = sb(true);
        for i in 0..4096u32 {
            let acc = r.on_mpdu(SeqNum::new(i as u16), i);
            assert_eq!(acc.deliver.len(), 1, "i={i}");
        }
        assert_eq!(r.window_start(), SeqNum::new(0));
        for i in 0..6u32 {
            let acc = r.on_mpdu(SeqNum::new(i as u16), 5000 + i);
            // Seqs 0..6 were seen 4096 frames ago but have fallen out of
            // the dedup history: they deliver again as the new epoch.
            assert_eq!(acc.deliver.len(), 1, "wrap i={i}");
        }
        assert_eq!(r.window_start(), SeqNum::new(6));
        assert_eq!(r.highest(), Some(SeqNum::new(5)));
    }

    #[test]
    fn highest_tracks_newest() {
        let mut r = sb(true);
        r.on_mpdu(SeqNum::new(10), 10);
        r.on_mpdu(SeqNum::new(12), 12);
        r.on_mpdu(SeqNum::new(11), 11);
        assert_eq!(r.highest(), Some(SeqNum::new(12)));
    }
}
