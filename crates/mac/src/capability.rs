//! Association-time capability negotiation.
//!
//! HACK deploys incrementally: a BSS can mix HACK-capable and stock
//! stations (§3.2 "To HACK or not to HACK?"). At association, client and
//! AP exchange a capability bitmap; HACK engages toward a peer only if
//! **both** ends advertise [`CapabilityInfo::HACK_CAPABLE`]. A peer
//! without the bit gets plain LL ACKs — the supervisor treats it as a
//! permanent, clean fallback to native TCP ACKs.
//!
//! The exchange mirrors the 802.11 association request/response
//! handshake. Like everything else in this crate it is sans-IO: the
//! event loop moves [`AssocRequest`]/[`AssocResponse`] values between
//! stations (in the simulator this happens out-of-band at world
//! construction, modeling an association that completed before the
//! measured run).

use hack_phy::StationId;

/// Capability bitmap advertised at association time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CapabilityInfo {
    /// Raw capability bits.
    pub bits: u16,
}

impl CapabilityInfo {
    /// The station can compress/decompress TCP ACKs onto LL ACKs.
    pub const HACK_CAPABLE: u16 = 1 << 0;

    /// A bitmap with the given bits set.
    pub fn new(bits: u16) -> Self {
        CapabilityInfo { bits }
    }

    /// A bitmap advertising (or not) the HACK capability.
    pub fn hack(capable: bool) -> Self {
        CapabilityInfo {
            bits: if capable { Self::HACK_CAPABLE } else { 0 },
        }
    }

    /// Whether the HACK bit is set.
    pub fn hack_capable(self) -> bool {
        self.bits & Self::HACK_CAPABLE != 0
    }
}

/// A client's association request toward the AP.
#[derive(Debug, Clone, Copy)]
pub struct AssocRequest {
    /// The associating station.
    pub from: StationId,
    /// Its advertised capabilities.
    pub caps: CapabilityInfo,
}

/// The AP's association response.
#[derive(Debug, Clone, Copy)]
pub struct AssocResponse {
    /// The responding AP.
    pub from: StationId,
    /// The AP's advertised capabilities.
    pub caps: CapabilityInfo,
    /// The negotiated outcome: HACK engages on this link only if both
    /// ends advertised the bit.
    pub hack_negotiated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hack_bit_roundtrip() {
        assert!(CapabilityInfo::hack(true).hack_capable());
        assert!(!CapabilityInfo::hack(false).hack_capable());
        assert!(!CapabilityInfo::default().hack_capable());
        assert!(CapabilityInfo::new(0xFFFF).hack_capable());
    }
}
