//! Per-station MAC configuration.

use hack_phy::{MacTimings, PhyRate};
use hack_sim::SimDuration;

/// Configuration of one station's MAC.
#[derive(Debug, Clone)]
pub struct MacConfig {
    /// Interframe spaces, contention window bounds, retry limit, TXOP.
    pub timings: MacTimings,
    /// Rate used for data PPDUs.
    pub data_rate: PhyRate,
    /// Whether to aggregate MPDUs into A-MPDUs with Block ACKs (802.11n)
    /// or send single MPDUs with plain ACKs (802.11a).
    pub aggregation: bool,
    /// A-MPDU byte ceiling (64 KB per 802.11n).
    pub max_ampdu_bytes: u32,
    /// A-MPDU frame ceiling (Block ACK window of 64).
    pub max_ampdu_frames: usize,
    /// Set the MORE DATA bit on data batches when further frames remain
    /// queued for the same receiver (the HACK AP behaviour, §3.2). Stock
    /// APs leave this off outside power-save, so it is configurable.
    pub set_more_data: bool,
    /// Set the SYNC bit on the next batch to a receiver after exhausting
    /// Block-ACK-Request retries toward it (§3.4, Figure 8).
    pub use_sync: bool,
    /// Extra delay added before transmitting a response (ACK/Block ACK)
    /// beyond SIFS. Models SoRa's late LL ACKs (~37 µs) and, with small
    /// values, commercial NICs' 10.4–13.4 µs (§4.2, Table 3).
    pub response_extra_delay: SimDuration,
    /// Extra allowance added to the ACK timeout. The paper raises the
    /// timeout on SoRa so its late LL ACKs do not cause spurious
    /// retransmissions.
    pub ack_timeout_extra: SimDuration,
    /// Advertise the HACK capability bit at association time. Defaults
    /// to true (HACK hardware); flip off to model a stock station
    /// coexisting in the BSS — blobs are never attached toward a peer
    /// that did not negotiate the bit.
    pub hack_capable: bool,
}

impl MacConfig {
    /// A stock 802.11a station at the given rate.
    pub fn dot11a(data_rate: PhyRate) -> Self {
        MacConfig {
            timings: MacTimings::dot11a(),
            data_rate,
            aggregation: false,
            max_ampdu_bytes: 65_535,
            max_ampdu_frames: 64,
            set_more_data: false,
            use_sync: false,
            response_extra_delay: SimDuration::ZERO,
            ack_timeout_extra: SimDuration::ZERO,
            hack_capable: true,
        }
    }

    /// A stock 802.11n station at the given HT rate, with aggregation.
    pub fn dot11n(data_rate: PhyRate) -> Self {
        MacConfig {
            timings: MacTimings::dot11n(),
            data_rate,
            aggregation: true,
            max_ampdu_bytes: 65_535,
            max_ampdu_frames: 64,
            set_more_data: false,
            use_sync: false,
            response_extra_delay: SimDuration::ZERO,
            ack_timeout_extra: SimDuration::ZERO,
            hack_capable: true,
        }
    }

    /// Enable the HACK MAC extensions (MORE DATA marking + SYNC).
    pub fn with_hack_bits(mut self) -> Self {
        self.set_more_data = true;
        self.use_sync = true;
        self
    }

    /// Apply the SoRa testbed quirks: late LL ACKs and a stretched ACK
    /// timeout to absorb them (§4.1).
    pub fn with_sora_quirks(mut self) -> Self {
        self.response_extra_delay = SimDuration::from_micros(37);
        self.ack_timeout_extra = SimDuration::from_micros(60);
        self
    }

    /// The ACK timeout this station applies after its transmissions.
    pub fn ack_timeout(&self) -> SimDuration {
        self.timings.ack_timeout() + self.ack_timeout_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11a_profile() {
        let c = MacConfig::dot11a(PhyRate::dot11a(54));
        assert!(!c.aggregation);
        assert!(!c.set_more_data);
        assert_eq!(c.timings.aifsn, 2);
    }

    #[test]
    fn dot11n_profile() {
        let c = MacConfig::dot11n(PhyRate::ht(150));
        assert!(c.aggregation);
        assert_eq!(c.timings.aifsn, 3);
        assert_eq!(c.max_ampdu_bytes, 65_535);
    }

    #[test]
    fn sora_quirks_stretch_timeout() {
        let stock = MacConfig::dot11a(PhyRate::dot11a(54));
        let sora = MacConfig::dot11a(PhyRate::dot11a(54)).with_sora_quirks();
        assert!(sora.ack_timeout() > stock.ack_timeout());
        // The stretched timeout must cover the late response: SIFS + extra
        // delay + ACK airtime start.
        assert!(sora.ack_timeout() > sora.timings.sifs + sora.response_extra_delay);
    }

    #[test]
    fn hack_bits_toggle() {
        let c = MacConfig::dot11n(PhyRate::ht(150)).with_hack_bits();
        assert!(c.set_more_data && c.use_sync);
    }
}
