//! Per-station MAC statistics feeding Tables 1 and 3 of the paper.

use hack_sim::{Counter, TimeAccumulator};

/// Traffic classes the MAC accounts separately. The paper's Table 3
/// breaks down time spent on *TCP ACK* transmissions vs everything else;
/// the upper layer tags MSDUs via [`crate::frame::Msdu::is_transport_ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Bulk data (TCP data segments, UDP datagrams, …).
    Data,
    /// Transport-layer acknowledgment packets sent natively.
    TransportAck,
}

/// Counters and accumulators maintained by one station's MAC.
#[derive(Debug, Default, Clone)]
pub struct MacStats {
    /// Data MPDUs acknowledged on their first transmission attempt.
    pub mpdus_first_try: Counter,
    /// Data MPDUs acknowledged after one or more retransmissions.
    pub mpdus_retried: Counter,
    /// Data MPDUs abandoned after the retry budget.
    pub mpdus_dropped: Counter,
    /// PPDU transmissions started (data or BAR, not responses).
    pub tx_attempts: Counter,
    /// Response PPDUs (ACK / Block ACK) transmitted.
    pub responses_sent: Counter,
    /// Responses that carried a HACK blob.
    pub responses_with_blob: Counter,
    /// ACK-timeout events (missing responses).
    pub ack_timeouts: Counter,
    /// BAR solicitations transmitted.
    pub bars_sent: Counter,
    /// BAR retry budgets exhausted.
    pub bars_exhausted: Counter,
    /// Garbage receptions (energy without a decodable frame).
    pub rx_garbage: Counter,
    /// MPDUs delivered with flipped bits and discarded by the FCS check
    /// (fault injection's corrupted-delivery path).
    pub rx_fcs_bad: Counter,
    /// Time spent waiting to acquire the channel for bulk-data batches.
    pub acquire_wait_data: TimeAccumulator,
    /// Time spent waiting to acquire the channel for native
    /// transport-ACK batches (Table 3's "Channel" column).
    pub acquire_wait_ack: TimeAccumulator,
    /// Airtime of bulk-data PPDUs.
    pub airtime_data: TimeAccumulator,
    /// Airtime of native transport-ACK PPDUs (Table 3's "TCP ACK").
    pub airtime_ack: TimeAccumulator,
    /// Airtime of our response frames (ACK/Block ACK), including any
    /// HACK payload riding on them.
    pub airtime_response: TimeAccumulator,
    /// Extra response airtime attributable to attached HACK blobs
    /// (Table 3's "ROHC" column).
    pub airtime_blob: TimeAccumulator,
    /// Blob-carrying responses whose blob extension fits within AIFS
    /// (protected from collision, §3.3.2 footnote 7).
    pub blob_within_aifs: Counter,
    /// Blob-carrying responses whose extension exceeds AIFS.
    pub blob_beyond_aifs: Counter,
    /// Extra response latency beyond SIFS (Table 3's "LL ACK overhead"):
    /// accumulated for responses *we waited for*.
    pub ll_ack_overhead: TimeAccumulator,
}

impl MacStats {
    /// Fraction of acknowledged data MPDUs that needed no retry
    /// (Table 1's "no retries" row). `None` when nothing was acked.
    pub fn first_try_fraction(&self) -> Option<f64> {
        let total = self.mpdus_first_try.get() + self.mpdus_retried.get();
        (total > 0).then(|| self.mpdus_first_try.get() as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_fraction() {
        let mut s = MacStats::default();
        assert_eq!(s.first_try_fraction(), None);
        s.mpdus_first_try.add(87);
        s.mpdus_retried.add(13);
        assert!((s.first_try_fraction().unwrap() - 0.87).abs() < 1e-12);
    }
}
