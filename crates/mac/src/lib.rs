//! # hack-mac — sans-IO 802.11 DCF/EDCA MAC
//!
//! A complete 802.11 MAC sufficient for the TCP/HACK paper's
//! experiments: EDCA contention with binary exponential backoff and NAV
//! ([`backoff`], [`station`]), A-MPDU aggregation under the 64-frame /
//! 64 KB / TXOP limits ([`queue`]), Block ACK scoreboarding with
//! receive-side reordering ([`scoreboard`]), BAR-based Block ACK
//! recovery, and the two one-bit HACK extensions — MORE DATA marking on
//! data batches and the SYNC bit after BAR exhaustion (§3.2, §3.4 of the
//! paper).
//!
//! The MAC is **payload-agnostic**: MSDUs are any type implementing
//! [`Msdu`], and compressed TCP ACKs ride on link-layer acknowledgments
//! as opaque [`HackBlob`] bytes, mirroring the paper's requirement that
//! the NIC need no TCP intelligence. Everything is sans-IO: handlers
//! return [`Action`]s for the `hack-core` event loop to materialize.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod assoc;
pub mod backoff;
pub mod capability;
pub mod config;
pub mod frame;
pub mod queue;
pub mod scoreboard;
pub mod station;
pub mod stats;

pub use actions::{Action, RespKind, RxDataInfo, TimerKind, TxDescriptor};
pub use assoc::{AssocConfig, AssocMachine, AssocState, AssocStep};
pub use backoff::Contention;
pub use capability::{AssocRequest, AssocResponse, CapabilityInfo};
pub use config::MacConfig;
pub use frame::{ampdu_wire_len, AckBitmap, DataMpdu, Frame, HackBlob, Msdu, SeqNum};
pub use queue::{BaResolution, DestQueue, Mpdu};
pub use scoreboard::{RxAccept, RxReorder};
pub use station::Station;
pub use stats::{MacStats, TrafficClass};
