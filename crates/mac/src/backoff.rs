//! DCF/EDCA contention: interframe spacing plus binary-exponential
//! backoff, computed analytically instead of slot-by-slot.
//!
//! Rather than scheduling an event per 9 µs slot, [`Contention`] computes
//! the absolute instant at which the backoff counter reaches zero given
//! the time the medium became (and stayed) idle. When the medium goes
//! busy before that instant, [`Contention::pause`] credits the whole
//! slots that elapsed and freezes the remainder — exactly the 802.11
//! decrement-per-idle-slot rule, at a fraction of the event count.

use hack_phy::MacTimings;
use hack_sim::{SimRng, SimTime};

/// Contention state for one station.
#[derive(Debug, Clone)]
pub struct Contention {
    timings: MacTimings,
    /// Contention window for the next draw.
    cw: u32,
    /// Consecutive failed exchanges for the current head-of-line work.
    retries: u32,
    /// Frozen backoff slots remaining; `None` means a fresh draw is due.
    remaining: Option<u32>,
    /// When the current countdown started (anchor for pause accounting);
    /// `Some` only while a countdown is armed.
    anchor: Option<SimTime>,
    /// Use EIFS instead of AIFS for the next countdown (after a reception
    /// error, per 802.11).
    use_eifs: bool,
}

impl Contention {
    /// Fresh contention state at CWmin.
    pub fn new(timings: MacTimings) -> Self {
        Contention {
            cw: timings.cw_min,
            timings,
            retries: 0,
            remaining: None,
            anchor: None,
            use_eifs: false,
        }
    }

    /// Current contention window.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// Consecutive failures for the current exchange.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Frozen slots remaining, if a draw exists.
    pub fn remaining(&self) -> Option<u32> {
        self.remaining
    }

    /// Flag the next countdown to use EIFS (called after garbage rx).
    pub fn set_eifs(&mut self) {
        self.use_eifs = true;
    }

    /// Clear the EIFS condition (called after a correct rx).
    pub fn clear_eifs(&mut self) {
        self.use_eifs = false;
    }

    /// The interframe space the next countdown will wait.
    fn ifs(&self) -> hack_sim::SimDuration {
        if self.use_eifs {
            self.timings.eifs()
        } else {
            self.timings.aifs()
        }
    }

    /// Begin (or resume) the countdown given that the medium has been and
    /// remains idle since `idle_since` and the station has had pending
    /// work since `work_since`. Draws a fresh backoff if none is frozen.
    /// Returns the absolute time at which transmission may start.
    pub fn start_countdown(
        &mut self,
        idle_since: SimTime,
        work_since: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        let remaining = match self.remaining {
            Some(r) => r,
            None => {
                let r = rng.uniform(self.cw + 1);
                self.remaining = Some(r);
                r
            }
        };
        let anchor = idle_since.max(work_since);
        self.anchor = Some(anchor);
        anchor + self.ifs() + self.timings.slot * u64::from(remaining)
    }

    /// The medium went busy at `busy_at` before the countdown finished:
    /// credit fully elapsed slots and freeze the rest. No-op if no
    /// countdown was armed.
    pub fn pause(&mut self, busy_at: SimTime) {
        let (Some(anchor), Some(remaining)) = (self.anchor.take(), self.remaining) else {
            return;
        };
        let countdown_start = anchor + self.ifs();
        if busy_at <= countdown_start {
            return; // Still inside the IFS: no slots elapsed.
        }
        let elapsed_ns = busy_at.duration_since(countdown_start).as_nanos();
        let slots = (elapsed_ns / self.timings.slot.as_nanos()) as u32;
        self.remaining = Some(remaining.saturating_sub(slots));
    }

    /// The armed countdown completed and the frame was sent: clear the
    /// draw (a fresh post-transmission backoff will be drawn next time).
    pub fn consume(&mut self) {
        self.remaining = None;
        self.anchor = None;
    }

    /// The exchange succeeded: reset CW and the retry count.
    pub fn on_success(&mut self) {
        self.cw = self.timings.cw_min;
        self.retries = 0;
    }

    /// The exchange failed (no response): double CW, count a retry, force
    /// a fresh draw. Returns `false` once the retry limit is exceeded —
    /// the caller must abandon the frame and then call
    /// [`Contention::on_abandon`].
    pub fn on_failure(&mut self) -> bool {
        self.retries += 1;
        self.cw = ((self.cw + 1) * 2 - 1).min(self.timings.cw_max);
        self.remaining = None;
        self.anchor = None;
        self.retries <= self.timings.retry_limit
    }

    /// The frame was abandoned after exhausting retries: reset for the
    /// next head-of-line frame.
    pub fn on_abandon(&mut self) {
        self.cw = self.timings.cw_min;
        self.retries = 0;
        self.remaining = None;
        self.anchor = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_phy::MacTimings;
    use hack_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn countdown_is_ifs_plus_slots() {
        let mut c = Contention::new(MacTimings::dot11a());
        let mut r = rng();
        let t0 = SimTime::from_micros(100);
        let tx_at = c.start_countdown(t0, t0, &mut r);
        let slots = c.remaining().unwrap();
        assert!(slots <= 15);
        assert_eq!(
            tx_at,
            t0 + SimDuration::from_micros(34) + SimDuration::from_micros(9) * u64::from(slots)
        );
    }

    #[test]
    fn anchor_is_later_of_idle_and_work() {
        let mut c = Contention::new(MacTimings::dot11a());
        let mut r = rng();
        let idle = SimTime::from_micros(100);
        let work = SimTime::from_micros(250);
        let tx_at = c.start_countdown(idle, work, &mut r);
        assert!(tx_at >= work + SimDuration::from_micros(34));
    }

    #[test]
    fn pause_credits_whole_slots_only() {
        let t = MacTimings::dot11a();
        let mut c = Contention::new(t);
        let mut r = rng();
        // Force a known draw by retrying until we get >= 3 slots.
        let t0 = SimTime::from_micros(0);
        loop {
            c.remaining = None;
            c.start_countdown(t0, t0, &mut r);
            if c.remaining().unwrap() >= 3 {
                break;
            }
        }
        let before = c.remaining().unwrap();
        // Busy arrives 2.5 slots into the countdown: 2 slots credited.
        let busy = t0 + t.aifs() + SimDuration::from_nanos(t.slot.as_nanos() * 5 / 2);
        c.pause(busy);
        assert_eq!(c.remaining().unwrap(), before - 2);
    }

    #[test]
    fn pause_within_ifs_credits_nothing() {
        let t = MacTimings::dot11a();
        let mut c = Contention::new(t);
        let mut r = rng();
        let t0 = SimTime::from_micros(0);
        c.start_countdown(t0, t0, &mut r);
        let before = c.remaining().unwrap();
        c.pause(t0 + SimDuration::from_micros(10)); // inside DIFS
        assert_eq!(c.remaining().unwrap(), before);
    }

    #[test]
    fn frozen_slots_survive_resume() {
        let t = MacTimings::dot11a();
        let mut c = Contention::new(t);
        let mut r = rng();
        let t0 = SimTime::from_micros(0);
        loop {
            c.remaining = None;
            c.start_countdown(t0, t0, &mut r);
            if c.remaining().unwrap() >= 2 {
                break;
            }
        }
        let drawn = c.remaining().unwrap();
        c.pause(t0 + t.aifs() + t.slot); // one slot elapses
        let frozen = c.remaining().unwrap();
        assert_eq!(frozen, drawn - 1);
        // Resume: same frozen count is used, no redraw.
        let t1 = SimTime::from_micros(500);
        let tx_at = c.start_countdown(t1, t1, &mut r);
        assert_eq!(tx_at, t1 + t.aifs() + t.slot * u64::from(frozen));
    }

    #[test]
    fn failure_doubles_cw_until_limit() {
        let t = MacTimings::dot11a();
        let mut c = Contention::new(t);
        assert_eq!(c.cw(), 15);
        assert!(c.on_failure());
        assert_eq!(c.cw(), 31);
        assert!(c.on_failure());
        assert_eq!(c.cw(), 63);
        for _ in 0..10 {
            c.on_failure();
        }
        assert_eq!(c.cw(), 1023);
        // Retry limit (7) long exceeded.
        assert!(!c.on_failure());
        c.on_abandon();
        assert_eq!(c.cw(), 15);
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn success_resets_cw() {
        let mut c = Contention::new(MacTimings::dot11a());
        c.on_failure();
        c.on_failure();
        assert_eq!(c.cw(), 63);
        c.on_success();
        assert_eq!(c.cw(), 15);
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn eifs_lengthens_wait() {
        let t = MacTimings::dot11a();
        let mut c = Contention::new(t);
        let mut r = rng();
        let t0 = SimTime::from_micros(0);
        let normal = c.start_countdown(t0, t0, &mut r);
        let slots = c.remaining().unwrap();
        c.set_eifs();
        // Re-anchor with the same frozen slots.
        let eifs_at = c.start_countdown(t0, t0, &mut r);
        assert_eq!(c.remaining().unwrap(), slots, "EIFS must not redraw");
        assert!(eifs_at > normal);
        c.clear_eifs();
        assert_eq!(c.start_countdown(t0, t0, &mut r), normal);
    }

    #[test]
    fn draws_are_uniform_over_cw() {
        let t = MacTimings::dot11a();
        let mut counts = [0u32; 16];
        let mut r = SimRng::new(7);
        for _ in 0..16_000 {
            let mut c = Contention::new(t);
            c.start_countdown(SimTime::ZERO, SimTime::ZERO, &mut r);
            counts[c.remaining().unwrap() as usize] += 1;
        }
        for (slot, &n) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&n),
                "slot {slot} drawn {n} times of 16000"
            );
        }
    }
}
