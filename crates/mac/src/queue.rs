//! Transmit-side per-destination queue: sequence assignment, A-MPDU batch
//! building under the three 802.11n limits (64-frame Block ACK window,
//! 64 KB A-MPDU, TXOP airtime), retransmission bookkeeping, and BAR state.

use std::collections::VecDeque;

use hack_phy::{PhyRate, StationId};
use hack_sim::SimDuration;

use crate::config::MacConfig;
use crate::frame::{ampdu_wire_len, sizes, AckBitmap, DataMpdu, Msdu, SeqNum};

/// An MPDU that has been assigned a sequence number.
#[derive(Debug, Clone)]
pub struct Mpdu<M> {
    /// Assigned 12-bit sequence number (kept across retransmissions).
    pub seq: SeqNum,
    /// Transmission attempts so far (0 = never sent).
    pub attempts: u32,
    /// The MSDU payload.
    pub msdu: M,
}

/// Result of resolving an exchange against a Block ACK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaResolution<M> {
    /// Number of MPDUs newly acknowledged.
    pub acked: u32,
    /// Number of MPDUs that were acknowledged on their first attempt.
    pub acked_first_try: u32,
    /// The MSDUs that were just acknowledged (drivers use these to match
    /// delivered native TCP ACKs against held compressed copies).
    pub acked_msdus: Vec<M>,
    /// MSDUs dropped because their retry budget ran out.
    pub dropped: Vec<M>,
}

impl<M> Default for BaResolution<M> {
    fn default() -> Self {
        BaResolution {
            acked: 0,
            acked_first_try: 0,
            acked_msdus: Vec::new(),
            dropped: Vec::new(),
        }
    }
}

/// Per-destination transmit state.
#[derive(Debug)]
pub struct DestQueue<M> {
    dst: StationId,
    /// MSDUs not yet assigned sequence numbers.
    unsent: VecDeque<M>,
    /// MPDUs needing retransmission, in sequence order.
    retx: VecDeque<Mpdu<M>>,
    /// MPDUs transmitted and awaiting a (Block) ACK.
    awaiting: Vec<Mpdu<M>>,
    next_seq: SeqNum,
    /// A Block ACK Request is owed to this destination (our data batch's
    /// Block ACK never arrived).
    bar_pending: bool,
    /// Set the SYNC bit on the next data batch (BAR retries exhausted).
    sync_next: bool,
    /// Total bytes of MSDU currently queued (unsent + retx).
    queued_msdu_bytes: u64,
}

impl<M: Msdu> DestQueue<M> {
    /// An empty queue toward `dst`.
    pub fn new(dst: StationId) -> Self {
        DestQueue {
            dst,
            unsent: VecDeque::new(),
            retx: VecDeque::new(),
            awaiting: Vec::new(),
            next_seq: SeqNum::new(0),
            bar_pending: false,
            sync_next: false,
            queued_msdu_bytes: 0,
        }
    }

    /// The destination station.
    pub fn dst(&self) -> StationId {
        self.dst
    }

    /// Enqueue a fresh MSDU.
    pub fn enqueue(&mut self, msdu: M) {
        self.queued_msdu_bytes += u64::from(msdu.wire_len());
        self.unsent.push_back(msdu);
    }

    /// MSDUs (new + retransmit) ready to go into a batch.
    pub fn backlog(&self) -> usize {
        self.unsent.len() + self.retx.len()
    }

    /// Frames currently awaiting acknowledgment.
    pub fn awaiting(&self) -> usize {
        self.awaiting.len()
    }

    /// Whether a BAR is owed.
    pub fn bar_pending(&self) -> bool {
        self.bar_pending
    }

    /// Whether the next data batch will carry the SYNC bit.
    pub fn sync_pending(&self) -> bool {
        self.sync_next
    }

    /// Queued MSDU bytes not yet acknowledged-or-dropped (for AP queue
    /// sizing experiments).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_msdu_bytes
    }

    /// There is something to transmit: data or a BAR.
    pub fn has_work(&self) -> bool {
        self.bar_pending || self.backlog() > 0
    }

    /// The start of the Block ACK window: the oldest unresolved sequence
    /// number, or the next to assign when none is outstanding.
    pub fn window_start(&self) -> SeqNum {
        self.retx
            .front()
            .map(|m| m.seq)
            .or_else(|| self.awaiting.first().map(|m| m.seq))
            .unwrap_or(self.next_seq)
    }

    /// Build the next data batch (honouring the frame/byte/airtime limits
    /// and the Block ACK window), marking its members as awaiting.
    /// Returns an empty vec if there is nothing to send or a BAR is owed
    /// (the BAR must resolve the outstanding window first).
    ///
    /// `src` stamps the transmitter address; the MORE DATA and SYNC bits
    /// are set per `cfg` and queue state.
    pub fn build_batch(&mut self, src: StationId, cfg: &MacConfig) -> Vec<DataMpdu<M>> {
        if self.bar_pending {
            return Vec::new();
        }
        let max_frames = if cfg.aggregation {
            cfg.max_ampdu_frames
        } else {
            1
        };
        let win_start = self.window_start();
        // In aggregation mode everything outstanding must stay within the
        // 64-deep Block ACK window.
        let window_room = if cfg.aggregation {
            64usize.saturating_sub(usize::from(self.next_seq.dist_from(win_start)))
        } else {
            usize::MAX
        };

        let mut batch: Vec<Mpdu<M>> = Vec::new();
        let mut lens: Vec<u32> = Vec::new();
        let mut new_assigned = 0usize;

        loop {
            if batch.len() >= max_frames {
                break;
            }
            // Candidate: retransmissions first (lowest seq), then new.
            let candidate_len = if let Some(m) = self.retx.front() {
                m.msdu.wire_len() + sizes::DATA_OVERHEAD
            } else if let Some(m) = self.unsent.front() {
                if new_assigned >= window_room {
                    break;
                }
                m.wire_len() + sizes::DATA_OVERHEAD
            } else {
                break;
            };

            // Check the byte and airtime limits with this MPDU included.
            lens.push(candidate_len);
            let fits = if cfg.aggregation {
                let agg = ampdu_wire_len(&lens);
                agg <= cfg.max_ampdu_bytes
                    && within_txop(&lens, cfg.data_rate, cfg.timings.txop_limit)
            } else {
                true
            };
            if !fits && !batch.is_empty() {
                lens.pop();
                break;
            }
            // A single MPDU always goes (it can't be split).
            let mpdu = if let Some(m) = self.retx.pop_front() {
                m
            } else {
                let msdu = self.unsent.pop_front().expect("checked above");
                let seq = self.next_seq;
                self.next_seq = self.next_seq.next();
                new_assigned += 1;
                Mpdu {
                    seq,
                    attempts: 0,
                    msdu,
                }
            };
            batch.push(mpdu);
            if !fits {
                break;
            }
        }

        if batch.is_empty() {
            return Vec::new();
        }

        let more_data = cfg.set_more_data && self.backlog() > 0;
        let sync = cfg.use_sync && self.sync_next;
        self.sync_next = false;

        let out: Vec<DataMpdu<M>> = batch
            .iter()
            .map(|m| DataMpdu {
                src,
                dst: self.dst,
                seq: m.seq,
                retry: m.attempts > 0,
                more_data,
                sync,
                payload: m.msdu.clone(),
            })
            .collect();

        for mut m in batch {
            m.attempts += 1;
            self.awaiting.push(m);
        }
        self.awaiting.sort_by_key(|m| m.seq.dist_from(win_start));
        out
    }

    /// Resolve the awaiting set against a received Block ACK bitmap.
    /// Unacked MPDUs are requeued for retransmission or dropped once
    /// their attempts exceed `retry_limit`.
    pub fn on_block_ack(&mut self, bitmap: &AckBitmap, retry_limit: u32) -> BaResolution<M> {
        self.bar_pending = false;
        let mut res = BaResolution::default();
        let awaiting = std::mem::take(&mut self.awaiting);
        for m in awaiting {
            let acked = bitmap.contains(m.seq) || bitmap.start.is_newer_than(m.seq);
            if acked {
                res.acked += 1;
                if m.attempts == 1 {
                    res.acked_first_try += 1;
                }
                self.queued_msdu_bytes = self
                    .queued_msdu_bytes
                    .saturating_sub(u64::from(m.msdu.wire_len()));
                res.acked_msdus.push(m.msdu);
            } else if m.attempts > retry_limit {
                self.queued_msdu_bytes = self
                    .queued_msdu_bytes
                    .saturating_sub(u64::from(m.msdu.wire_len()));
                res.dropped.push(m.msdu);
            } else {
                self.retx.push_back(m);
            }
        }
        self.retx.make_contiguous().sort_by_key(|m| m.seq.value());
        res
    }

    /// Resolve a single-MPDU exchange against a plain ACK: the one
    /// awaiting MPDU is acknowledged.
    pub fn on_ack(&mut self) -> BaResolution<M> {
        let mut res = BaResolution::default();
        for m in std::mem::take(&mut self.awaiting) {
            res.acked += 1;
            if m.attempts == 1 {
                res.acked_first_try += 1;
            }
            self.queued_msdu_bytes = self
                .queued_msdu_bytes
                .saturating_sub(u64::from(m.msdu.wire_len()));
            res.acked_msdus.push(m.msdu);
        }
        res
    }

    /// The exchange got no response. In aggregation mode a BAR becomes
    /// pending (the Block ACK may have been lost, not the data); in
    /// single mode the MPDU goes straight back for retransmission.
    /// Returns any MSDUs dropped over the retry limit (single mode only).
    pub fn on_no_response(&mut self, aggregation: bool, retry_limit: u32) -> Vec<M> {
        if aggregation {
            if !self.awaiting.is_empty() {
                self.bar_pending = true;
            }
            Vec::new()
        } else {
            let mut dropped = Vec::new();
            for m in std::mem::take(&mut self.awaiting) {
                if m.attempts > retry_limit {
                    self.queued_msdu_bytes = self
                        .queued_msdu_bytes
                        .saturating_sub(u64::from(m.msdu.wire_len()));
                    dropped.push(m.msdu);
                } else {
                    self.retx.push_front(m);
                }
            }
            dropped
        }
    }

    /// Remove and return the not-yet-sent MSDUs matching `pred` (used by
    /// Opportunistic HACK to withdraw native TCP ACKs that are about to
    /// ride a Block ACK instead). MSDUs already assigned sequence numbers
    /// (in flight or queued for retransmission) are not touched.
    pub fn withdraw_unsent<F: FnMut(&M) -> bool>(&mut self, mut pred: F) -> Vec<M> {
        let mut kept = VecDeque::with_capacity(self.unsent.len());
        let mut out = Vec::new();
        for m in self.unsent.drain(..) {
            if pred(&m) {
                self.queued_msdu_bytes = self
                    .queued_msdu_bytes
                    .saturating_sub(u64::from(m.wire_len()));
                out.push(m);
            } else {
                kept.push_back(m);
            }
        }
        self.unsent = kept;
        out
    }

    /// BAR retries exhausted: stop soliciting, requeue everything
    /// outstanding for retransmission, and mark SYNC for the next batch.
    pub fn on_bar_exhausted(&mut self) {
        self.bar_pending = false;
        self.sync_next = true;
        let mut outstanding: Vec<Mpdu<M>> = std::mem::take(&mut self.awaiting);
        outstanding.extend(self.retx.drain(..));
        outstanding.sort_by_key(|m| m.seq.value());
        self.retx = outstanding.into();
    }
}

/// Would an A-MPDU with these MPDU lengths fit in the TXOP (data PPDU
/// airtime only — the SIFS+BA tail is small and the paper's 4 ms limit is
/// applied to the transmission)?
fn within_txop(mpdu_lens: &[u32], rate: PhyRate, txop: SimDuration) -> bool {
    rate.ppdu_duration(u64::from(ampdu_wire_len(mpdu_lens))) <= txop
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_phy::PhyRate;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Pkt(u32);
    impl Msdu for Pkt {
        fn wire_len(&self) -> u32 {
            self.0
        }
    }

    const AP: StationId = StationId(0);
    const C1: StationId = StationId(1);

    fn cfg_n() -> MacConfig {
        MacConfig::dot11n(PhyRate::ht(150))
    }

    fn cfg_a() -> MacConfig {
        MacConfig::dot11a(PhyRate::dot11a(54))
    }

    fn fill(q: &mut DestQueue<Pkt>, n: usize, len: u32) {
        for _ in 0..n {
            q.enqueue(Pkt(len));
        }
    }

    #[test]
    fn batch_of_1500b_mpdus_is_42_at_150mbps() {
        // 64 KB is the binding limit at 150 Mbps (airtime ~3.5 ms < 4 ms).
        let mut q = DestQueue::new(C1);
        fill(&mut q, 100, 1500);
        let batch = q.build_batch(AP, &cfg_n());
        assert_eq!(batch.len(), 42, "the paper's 42-packet batch");
        assert_eq!(q.awaiting(), 42);
        assert_eq!(q.backlog(), 58);
    }

    #[test]
    fn txop_binds_at_low_rates() {
        // At 15 Mbps, 4 ms of airtime holds far fewer than 42 MPDUs:
        // ~15e6*0.004/8 = 7500 bytes ≈ 4 MPDUs.
        let mut cfg = cfg_n();
        cfg.data_rate = PhyRate::ht(15);
        let mut q = DestQueue::new(C1);
        fill(&mut q, 100, 1500);
        let batch = q.build_batch(AP, &cfg);
        assert!(
            (3..=5).contains(&batch.len()),
            "TXOP-limited batch, got {}",
            batch.len()
        );
        // And the resulting airtime respects the limit.
        let lens: Vec<u32> = batch.iter().map(|m| m.wire_len()).collect();
        assert!(within_txop(&lens, cfg.data_rate, cfg.timings.txop_limit));
    }

    #[test]
    fn frame_limit_binds_for_small_mpdus() {
        // TCP ACKs (40-byte MSDUs): the 64-frame window binds first.
        let mut q = DestQueue::new(C1);
        fill(&mut q, 200, 40);
        let batch = q.build_batch(AP, &cfg_n());
        assert_eq!(batch.len(), 64);
    }

    #[test]
    fn single_mode_sends_one() {
        let mut q = DestQueue::new(C1);
        fill(&mut q, 5, 1500);
        let batch = q.build_batch(AP, &cfg_a());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, SeqNum::new(0));
        assert!(!batch[0].retry);
    }

    #[test]
    fn seq_numbers_ascend_across_batches() {
        let mut q = DestQueue::new(C1);
        fill(&mut q, 100, 1500);
        let cfg = cfg_n();
        let b1 = q.build_batch(AP, &cfg);
        // Resolve all acked so the window advances.
        let mut bm = AckBitmap::new(b1[0].seq);
        for m in &b1 {
            bm.set(m.seq);
        }
        let res = q.on_block_ack(&bm, cfg.timings.retry_limit);
        assert_eq!(res.acked, 42);
        assert_eq!(res.acked_first_try, 42);
        let b2 = q.build_batch(AP, &cfg);
        assert_eq!(b2[0].seq, SeqNum::new(42));
    }

    #[test]
    fn block_ack_requeues_missing_for_retransmission() {
        let mut q = DestQueue::new(C1);
        fill(&mut q, 10, 1500);
        let cfg = cfg_n();
        let b1 = q.build_batch(AP, &cfg);
        assert_eq!(b1.len(), 10);
        // ACK everything except seq 3 and 7.
        let mut bm = AckBitmap::new(SeqNum::new(0));
        for m in &b1 {
            if m.seq != SeqNum::new(3) && m.seq != SeqNum::new(7) {
                bm.set(m.seq);
            }
        }
        let res = q.on_block_ack(&bm, cfg.timings.retry_limit);
        assert_eq!(res.acked, 8);
        assert!(res.dropped.is_empty());
        assert_eq!(q.backlog(), 2);
        // The retransmission batch leads with the missing seqs, retry set.
        let b2 = q.build_batch(AP, &cfg);
        assert_eq!(b2[0].seq, SeqNum::new(3));
        assert_eq!(b2[1].seq, SeqNum::new(7));
        assert!(b2[0].retry && b2[1].retry);
    }

    #[test]
    fn retry_budget_drops_after_limit() {
        let mut q = DestQueue::new(C1);
        q.enqueue(Pkt(1500));
        let cfg = cfg_n();
        let empty_bm = AckBitmap::new(SeqNum::new(0));
        // Transmit and fail retry_limit times (initial attempt + 6 more
        // stay within the budget of 7 retries).
        for _ in 0..cfg.timings.retry_limit {
            let b = q.build_batch(AP, &cfg);
            assert_eq!(b.len(), 1);
            let res = q.on_block_ack(&empty_bm, cfg.timings.retry_limit);
            assert_eq!(res.acked, 0);
            assert!(res.dropped.is_empty());
        }
        let b = q.build_batch(AP, &cfg);
        assert_eq!(b.len(), 1);
        let res = q.on_block_ack(&empty_bm, cfg.timings.retry_limit);
        assert_eq!(res.dropped, vec![Pkt(1500)]);
        assert_eq!(q.backlog(), 0);
        assert!(!q.has_work());
    }

    #[test]
    fn bitmap_start_past_seq_counts_as_acked() {
        // If the receiver's window start moved beyond our seq, it was
        // delivered even though the bit isn't set.
        let mut q = DestQueue::new(C1);
        q.enqueue(Pkt(1500));
        let cfg = cfg_n();
        q.build_batch(AP, &cfg);
        let bm = AckBitmap::new(SeqNum::new(5));
        let res = q.on_block_ack(&bm, cfg.timings.retry_limit);
        assert_eq!(res.acked, 1);
    }

    #[test]
    fn no_response_in_agg_mode_sets_bar_pending() {
        let mut q = DestQueue::new(C1);
        fill(&mut q, 3, 1500);
        let cfg = cfg_n();
        q.build_batch(AP, &cfg);
        let dropped = q.on_no_response(true, cfg.timings.retry_limit);
        assert!(dropped.is_empty());
        assert!(q.bar_pending());
        // No data batch while BAR is owed.
        assert!(q.build_batch(AP, &cfg).is_empty());
        assert!(q.has_work());
    }

    #[test]
    fn no_response_in_single_mode_requeues_immediately() {
        let mut q = DestQueue::new(C1);
        q.enqueue(Pkt(1500));
        let cfg = cfg_a();
        let b1 = q.build_batch(AP, &cfg);
        let dropped = q.on_no_response(false, cfg.timings.retry_limit);
        assert!(dropped.is_empty());
        assert!(!q.bar_pending());
        let b2 = q.build_batch(AP, &cfg);
        assert_eq!(b2[0].seq, b1[0].seq);
        assert!(b2[0].retry);
    }

    #[test]
    fn single_mode_drop_after_retry_limit() {
        let mut q = DestQueue::new(C1);
        q.enqueue(Pkt(1500));
        let cfg = cfg_a();
        let lim = cfg.timings.retry_limit;
        for i in 0..lim {
            let b = q.build_batch(AP, &cfg);
            assert_eq!(b.len(), 1, "attempt {i}");
            let dropped = q.on_no_response(false, lim);
            assert!(dropped.is_empty(), "attempt {i}");
        }
        // One more failed attempt exceeds the budget.
        q.build_batch(AP, &cfg);
        let dropped = q.on_no_response(false, lim);
        assert_eq!(dropped, vec![Pkt(1500)]);
    }

    #[test]
    fn bar_exhausted_requeues_and_marks_sync() {
        let mut q = DestQueue::new(C1);
        fill(&mut q, 3, 1500);
        let mut cfg = cfg_n();
        cfg.use_sync = true;
        cfg.set_more_data = true;
        q.build_batch(AP, &cfg);
        q.on_no_response(true, cfg.timings.retry_limit);
        assert!(q.bar_pending());
        q.on_bar_exhausted();
        assert!(!q.bar_pending());
        assert!(q.sync_pending());
        let b = q.build_batch(AP, &cfg);
        assert_eq!(b.len(), 3);
        assert!(b[0].sync, "SYNC bit rides the next batch");
        assert!(b[0].retry);
        // SYNC is one-shot.
        let mut bm = AckBitmap::new(SeqNum::new(0));
        for m in &b {
            bm.set(m.seq);
        }
        q.on_block_ack(&bm, cfg.timings.retry_limit);
        fill(&mut q, 1, 1500);
        let b2 = q.build_batch(AP, &cfg);
        assert!(!b2[0].sync);
    }

    #[test]
    fn more_data_set_only_when_backlog_remains() {
        let mut cfg = cfg_n();
        cfg.set_more_data = true;
        let mut q = DestQueue::new(C1);
        fill(&mut q, 43, 1500); // one more than a full batch
        let b1 = q.build_batch(AP, &cfg);
        assert!(b1.iter().all(|m| m.more_data), "58-frame backlog remains");
        let mut bm = AckBitmap::new(SeqNum::new(0));
        for m in &b1 {
            bm.set(m.seq);
        }
        q.on_block_ack(&bm, cfg.timings.retry_limit);
        let b2 = q.build_batch(AP, &cfg);
        assert_eq!(b2.len(), 1);
        assert!(!b2[0].more_data, "queue is now empty");
    }

    #[test]
    fn more_data_requires_config() {
        let cfg = cfg_n(); // set_more_data = false (stock AP)
        let mut q = DestQueue::new(C1);
        fill(&mut q, 100, 1500);
        let b = q.build_batch(AP, &cfg);
        assert!(b.iter().all(|m| !m.more_data));
    }

    #[test]
    fn queued_bytes_tracks_lifecycle() {
        let mut q = DestQueue::new(C1);
        q.enqueue(Pkt(1000));
        q.enqueue(Pkt(500));
        assert_eq!(q.queued_bytes(), 1500);
        let cfg = cfg_n();
        let b = q.build_batch(AP, &cfg);
        assert_eq!(b.len(), 2);
        assert_eq!(q.queued_bytes(), 1500, "still unacknowledged");
        let mut bm = AckBitmap::new(SeqNum::new(0));
        bm.set(SeqNum::new(0));
        bm.set(SeqNum::new(1));
        q.on_block_ack(&bm, cfg.timings.retry_limit);
        assert_eq!(q.queued_bytes(), 0);
    }
}
