//! The association state machine driving AP handoff.
//!
//! 802.11 stations are only ever useful while *associated*: the
//! capability negotiation (including the HACK bit, [`crate::capability`]),
//! Block ACK agreements, and — in this codebase — the driver's ROHC
//! contexts and held-ACK queue are all per-association state. Roaming is
//! therefore modelled as a first-class state machine, not a teleport:
//!
//! ```text
//!             roam trigger                 scan done
//! Associated ─────────────▶ Scanning ─────────────────▶ Reassociating
//!     ▲                                                   │       │
//!     │            association response OK                │       │ attempt failed
//!     ├───────────────────────────────────────────────────┘       ▼
//!     │                                              retry (exponential backoff)
//!     │            retries exhausted: fall back to the      │
//!     └──────────── previous (known-good) AP ◀──────────────┘
//! ```
//!
//! The give-up path re-targets the *previous* AP, which by construction
//! accepted us before — so the machine always terminates back in
//! `Associated` and no flow can stall forever behind a flapping AP.
//! Like the rest of `hack-mac` this is sans-IO: the machine only
//! transitions and reports; the event loop owns timers and the actual
//! (re)association exchange.

use hack_sim::{SimDuration, SimTime};

/// Where a station stands with respect to its AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// Associated with the cell index carried by the machine.
    Associated,
    /// Disassociated; scanning for the target AP (fixed scan delay).
    Scanning,
    /// Scan complete; an association attempt is in flight (attempt
    /// counter for backoff).
    Reassociating,
}

/// Tunables for re-association retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssocConfig {
    /// Time spent in `Scanning` before the first association attempt.
    pub scan_delay: SimDuration,
    /// Backoff before the first retry; doubles per failure.
    pub retry_backoff: SimDuration,
    /// Attempts against the target before giving up and returning to
    /// the previous AP.
    pub max_retries: u32,
}

impl Default for AssocConfig {
    fn default() -> Self {
        AssocConfig {
            scan_delay: SimDuration::from_millis(20),
            retry_backoff: SimDuration::from_millis(10),
            max_retries: 3,
        }
    }
}

/// What the machine wants the event loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocStep {
    /// Wait until the given time, then call the matching `on_*` hook.
    Wait(SimTime),
    /// Send an association request to the cell now (attempt number for
    /// telemetry).
    Attempt {
        /// Target cell (BSS index) to associate with.
        cell: usize,
        /// 1-based attempt number, for telemetry.
        attempt: u32,
    },
    /// Retries exhausted: associate back with the previous AP (always
    /// succeeds — it accepted us before).
    GiveUp {
        /// The previous home cell to fall back to.
        back_to: usize,
    },
}

/// Per-station association machine. One per roaming client; stationary
/// clients never leave `Associated` and pay nothing.
#[derive(Debug, Clone)]
pub struct AssocMachine {
    cfg: AssocConfig,
    state: AssocState,
    /// Cell currently associated with (valid in `Associated`) or the
    /// cell we came from (valid while roaming).
    home: usize,
    /// Roam target (valid while roaming).
    target: usize,
    attempt: u32,
}

impl AssocMachine {
    /// A machine for a station associated with `home`.
    pub fn new(cfg: AssocConfig, home: usize) -> Self {
        AssocMachine {
            cfg,
            state: AssocState::Associated,
            home,
            target: home,
            attempt: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AssocState {
        self.state
    }

    /// The associated cell (or, mid-roam, the cell we left).
    pub fn home(&self) -> usize {
        self.home
    }

    /// The roam target (equals `home` when associated).
    pub fn target(&self) -> usize {
        self.target
    }

    /// Attempts made against the current target.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// True while disassociated (scanning or reassociating).
    pub fn roaming(&self) -> bool {
        self.state != AssocState::Associated
    }

    /// Leave the current AP for `target`. Returns the wait step for the
    /// scan period, or `None` if already roaming or `target` is the
    /// current cell (no-op).
    pub fn start_roam(&mut self, target: usize, now: SimTime) -> Option<AssocStep> {
        if self.roaming() || target == self.home {
            return None;
        }
        self.state = AssocState::Scanning;
        self.target = target;
        self.attempt = 0;
        Some(AssocStep::Wait(now + self.cfg.scan_delay))
    }

    /// Scan period elapsed: move to `Reassociating` and attempt.
    pub fn on_scan_done(&mut self) -> AssocStep {
        debug_assert_eq!(self.state, AssocState::Scanning);
        self.state = AssocState::Reassociating;
        self.attempt = 1;
        AssocStep::Attempt {
            cell: self.target,
            attempt: 1,
        }
    }

    /// Outcome of the in-flight association attempt. On success the
    /// machine is `Associated` with the target and returns `None`; on
    /// failure it either schedules a backed-off retry or gives up back
    /// to the previous AP.
    pub fn on_assoc_result(&mut self, ok: bool, now: SimTime) -> Option<AssocStep> {
        debug_assert_eq!(self.state, AssocState::Reassociating);
        if ok {
            self.home = self.target;
            self.state = AssocState::Associated;
            return None;
        }
        if self.attempt > self.cfg.max_retries {
            // Exhausted: return home. The caller re-associates us with
            // `back_to` unconditionally via `on_gave_up`.
            return Some(AssocStep::GiveUp { back_to: self.home });
        }
        // Exponential backoff: retry_backoff × 2^(attempt-1).
        let shift = (self.attempt - 1).min(16);
        let wait = SimDuration::from_nanos(
            self.cfg
                .retry_backoff
                .as_nanos()
                .saturating_mul(1u64 << shift),
        );
        self.attempt += 1;
        Some(AssocStep::Wait(now + wait))
    }

    /// Backoff elapsed: fire the next attempt.
    pub fn on_retry_timer(&mut self) -> AssocStep {
        debug_assert_eq!(self.state, AssocState::Reassociating);
        AssocStep::Attempt {
            cell: self.target,
            attempt: self.attempt,
        }
    }

    /// The give-up re-association with the previous AP completed; the
    /// machine is `Associated` with `home` again.
    pub fn on_gave_up(&mut self) {
        self.target = self.home;
        self.state = AssocState::Associated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn happy_path_roam() {
        let mut m = AssocMachine::new(AssocConfig::default(), 0);
        assert!(!m.roaming());
        let step = m.start_roam(2, t(100)).unwrap();
        assert_eq!(step, AssocStep::Wait(t(120)));
        assert_eq!(m.state(), AssocState::Scanning);
        assert_eq!(
            m.on_scan_done(),
            AssocStep::Attempt {
                cell: 2,
                attempt: 1
            }
        );
        assert_eq!(m.on_assoc_result(true, t(125)), None);
        assert_eq!(m.state(), AssocState::Associated);
        assert_eq!(m.home(), 2);
    }

    #[test]
    fn noop_roams_are_rejected() {
        let mut m = AssocMachine::new(AssocConfig::default(), 1);
        assert_eq!(m.start_roam(1, t(0)), None, "same cell");
        m.start_roam(0, t(0)).unwrap();
        assert_eq!(m.start_roam(2, t(1)), None, "already roaming");
    }

    #[test]
    fn retries_back_off_exponentially_then_give_up() {
        let cfg = AssocConfig {
            scan_delay: SimDuration::from_millis(20),
            retry_backoff: SimDuration::from_millis(10),
            max_retries: 2,
        };
        let mut m = AssocMachine::new(cfg, 0);
        m.start_roam(1, t(0)).unwrap();
        m.on_scan_done();
        // Attempt 1 fails: retry after 10 ms.
        assert_eq!(
            m.on_assoc_result(false, t(20)),
            Some(AssocStep::Wait(t(30)))
        );
        assert_eq!(
            m.on_retry_timer(),
            AssocStep::Attempt {
                cell: 1,
                attempt: 2
            }
        );
        // Attempt 2 fails: retry after 20 ms (doubled).
        assert_eq!(
            m.on_assoc_result(false, t(30)),
            Some(AssocStep::Wait(t(50)))
        );
        m.on_retry_timer();
        // Attempt 3 fails: max_retries=2 exhausted, go home.
        assert_eq!(
            m.on_assoc_result(false, t(50)),
            Some(AssocStep::GiveUp { back_to: 0 })
        );
        m.on_gave_up();
        assert_eq!(m.state(), AssocState::Associated);
        assert_eq!(m.home(), 0);
        assert_eq!(m.target(), 0);
        // A later roam works again.
        assert!(m.start_roam(1, t(100)).is_some());
    }
}
