//! Station mobility: waypoint trajectories and the SNR roam trigger.
//!
//! The paper evaluates stationary clients; mobility is what breaks the
//! per-association state HACK depends on (ROHC contexts, held-ACK
//! queues, the negotiated capability bit). This module supplies the two
//! passive pieces the event loop composes into roaming:
//!
//! * [`Trajectory`] — a piecewise-linear waypoint path, sampled by the
//!   simulation at its mobility tick and fed into `place_station`.
//! * [`RoamMonitor`] — the hysteresis rule deciding *when* a station
//!   should abandon its current AP for a better one. It is a pure
//!   decision function over SNR observations: no clocks, no RNG, no
//!   side effects, in keeping with the sans-IO layering (DESIGN.md §1).

use hack_sim::{SimDuration, SimTime};

/// One waypoint on a trajectory: be at `(x, y)` at offset `at` from the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waypoint {
    /// Time offset from simulation start.
    pub at: SimDuration,
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

/// A piecewise-linear path through a sequence of [`Waypoint`]s.
///
/// Before the first waypoint the station sits at the first position;
/// after the last it parks at the final position. Between adjacent
/// waypoints the position interpolates linearly in time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<Waypoint>,
}

impl Trajectory {
    /// Build a trajectory from waypoints. Points are sorted by time;
    /// an empty list is allowed (the trajectory then has no opinion and
    /// [`Trajectory::position_at`] returns `None`).
    pub fn new(mut points: Vec<Waypoint>) -> Self {
        points.sort_by_key(|p| p.at);
        Trajectory { points }
    }

    /// The waypoints, sorted by time.
    pub fn points(&self) -> &[Waypoint] {
        &self.points
    }

    /// Time of the final waypoint (when motion stops), if any.
    pub fn end(&self) -> Option<SimDuration> {
        self.points.last().map(|w| w.at)
    }

    /// The interpolated position at offset `t` from simulation start,
    /// or `None` for an empty trajectory.
    pub fn position_at(&self, t: SimDuration) -> Option<(f64, f64)> {
        let first = self.points.first()?;
        if t <= first.at {
            return Some((first.x, first.y));
        }
        for pair in self.points.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if t <= b.at {
                let span = (b.at - a.at).as_nanos();
                if span == 0 {
                    return Some((b.x, b.y));
                }
                let frac = (t - a.at).as_nanos() as f64 / span as f64;
                return Some((a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac));
            }
        }
        let last = self.points.last()?;
        Some((last.x, last.y))
    }
}

/// Hysteresis parameters for the SNR roam trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoamTrigger {
    /// Roam only once the serving link drops below this SNR (dB).
    pub threshold_db: f64,
    /// A candidate AP must beat the serving AP by at least this margin
    /// (dB) — suppresses ping-pong between near-equal APs.
    pub hysteresis_db: f64,
    /// Minimum dwell time on an association before the next roam may
    /// trigger.
    pub min_dwell: SimDuration,
}

impl Default for RoamTrigger {
    fn default() -> Self {
        RoamTrigger {
            threshold_db: 18.0,
            hysteresis_db: 4.0,
            min_dwell: SimDuration::from_millis(200),
        }
    }
}

/// The roam decision: pure function of the trigger parameters and a set
/// of SNR observations, tracked per station.
///
/// The caller samples `snr_db(client, ap)` for the serving AP and every
/// candidate and asks [`RoamMonitor::evaluate`]; a `Some(index)` answer
/// means "hand off to candidate `index` now". The monitor only records
/// the association epoch (for min-dwell); it never mutates the radio
/// state itself.
#[derive(Debug, Clone)]
pub struct RoamMonitor {
    trigger: RoamTrigger,
    associated_at: SimTime,
}

impl RoamMonitor {
    /// A monitor for a station associated at `now`.
    pub fn new(trigger: RoamTrigger, now: SimTime) -> Self {
        RoamMonitor {
            trigger,
            associated_at: now,
        }
    }

    /// Record a (re-)association, restarting the dwell clock.
    pub fn on_associated(&mut self, now: SimTime) {
        self.associated_at = now;
    }

    /// The trigger parameters.
    pub fn trigger(&self) -> RoamTrigger {
        self.trigger
    }

    /// Decide whether to roam. `serving_snr_db` is the SNR of the
    /// current association; `candidates` are `(index, snr_db)` pairs for
    /// every other AP in range. Returns the index of the best candidate
    /// when all three conditions hold: the serving link is below the
    /// threshold, the best candidate clears the hysteresis margin, and
    /// the minimum dwell has elapsed. Ties break toward the lowest
    /// index so the decision is deterministic.
    pub fn evaluate(
        &self,
        serving_snr_db: f64,
        candidates: &[(usize, f64)],
        now: SimTime,
    ) -> Option<usize> {
        if serving_snr_db >= self.trigger.threshold_db {
            return None;
        }
        if now < self.associated_at + self.trigger.min_dwell {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for &(idx, snr) in candidates {
            match best {
                Some((_, b)) if snr <= b => {}
                _ => best = Some((idx, snr)),
            }
        }
        let (idx, snr) = best?;
        if snr >= serving_snr_db + self.trigger.hysteresis_db {
            Some(idx)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(ms: u64, x: f64, y: f64) -> Waypoint {
        Waypoint {
            at: SimDuration::from_millis(ms),
            x,
            y,
        }
    }

    #[test]
    fn trajectory_interpolates_linearly() {
        let t = Trajectory::new(vec![wp(0, 0.0, 0.0), wp(1000, 10.0, 0.0)]);
        let p = t.position_at(SimDuration::from_millis(500)).unwrap();
        assert!((p.0 - 5.0).abs() < 1e-9 && p.1.abs() < 1e-9);
    }

    #[test]
    fn trajectory_clamps_at_ends() {
        let t = Trajectory::new(vec![wp(100, 1.0, 2.0), wp(200, 3.0, 4.0)]);
        assert_eq!(t.position_at(SimDuration::ZERO), Some((1.0, 2.0)));
        assert_eq!(t.position_at(SimDuration::from_secs(9)), Some((3.0, 4.0)));
        assert_eq!(t.end(), Some(SimDuration::from_millis(200)));
    }

    #[test]
    fn trajectory_sorts_waypoints_and_handles_empty() {
        let t = Trajectory::new(vec![wp(200, 2.0, 0.0), wp(100, 1.0, 0.0)]);
        assert_eq!(t.points()[0].at, SimDuration::from_millis(100));
        assert_eq!(Trajectory::new(vec![]).position_at(SimDuration::ZERO), None);
    }

    #[test]
    fn monitor_requires_threshold_margin_and_dwell() {
        let trig = RoamTrigger {
            threshold_db: 20.0,
            hysteresis_db: 5.0,
            min_dwell: SimDuration::from_millis(100),
        };
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        let m = RoamMonitor::new(trig, SimTime::ZERO);
        // Serving link still healthy: no roam even with a better AP.
        assert_eq!(m.evaluate(25.0, &[(1, 40.0)], late), None);
        // Below threshold but margin not met.
        assert_eq!(m.evaluate(15.0, &[(1, 18.0)], late), None);
        // All conditions met.
        assert_eq!(m.evaluate(15.0, &[(1, 21.0), (2, 30.0)], late), Some(2));
        // Dwell not yet elapsed.
        let mut m2 = m.clone();
        m2.on_associated(late);
        assert_eq!(
            m2.evaluate(15.0, &[(2, 30.0)], late + SimDuration::from_millis(50)),
            None
        );
        assert_eq!(
            m2.evaluate(15.0, &[(2, 30.0)], late + SimDuration::from_millis(100)),
            Some(2)
        );
    }

    #[test]
    fn monitor_ties_break_low_index() {
        let m = RoamMonitor::new(RoamTrigger::default(), SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(m.evaluate(10.0, &[(3, 30.0), (1, 30.0)], now), Some(3));
        // First-seen wins on exact ties; order is caller-controlled and
        // the caller enumerates cells in index order.
        assert_eq!(m.evaluate(10.0, &[(1, 30.0), (3, 30.0)], now), Some(1));
    }
}
