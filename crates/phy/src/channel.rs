//! Radio propagation: station placement, log-distance path loss, SNR.
//!
//! The paper's simulations scatter clients "randomly within a circle of
//! 10-meter radius centered on the AP" and sweep SNR by moving a single
//! client away from the AP (Figure 11). A log-distance path-loss model
//! with an indoor exponent reproduces exactly that knob: distance ⇒ SNR.

use std::collections::HashMap;

use crate::StationId;

/// Propagation model and station positions.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Transmit power in dBm (typical consumer AP/NIC: 16 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, in dB. ~46.7 dB at
    /// 2.4 GHz free space; ~47.5 dB at 5 GHz.
    pub path_loss_1m_db: f64,
    /// Path-loss exponent (2.0 free space, ~3.0 indoor open-plan).
    pub exponent: f64,
    /// Receiver noise floor in dBm (thermal −101 dBm for 20 MHz plus a
    /// 7 dB noise figure ⇒ −94 dBm; 40 MHz is 3 dB worse).
    pub noise_floor_dbm: f64,
    positions: HashMap<StationId, (f64, f64)>,
}

impl Channel {
    /// An indoor 2.4/5 GHz channel with typical consumer parameters.
    pub fn indoor() -> Self {
        Channel {
            tx_power_dbm: 16.0,
            path_loss_1m_db: 46.7,
            exponent: 3.0,
            noise_floor_dbm: -91.0,
            positions: HashMap::new(),
        }
    }

    /// Place (or move) a station at coordinates in metres.
    pub fn place(&mut self, station: StationId, x: f64, y: f64) {
        self.positions.insert(station, (x, y));
    }

    /// The position of a station, if placed.
    pub fn position(&self, station: StationId) -> Option<(f64, f64)> {
        self.positions.get(&station).copied()
    }

    /// Euclidean distance between two placed stations, clamped below by
    /// the 1 m reference distance.
    ///
    /// # Panics
    /// Panics if either station has not been placed.
    pub fn distance(&self, a: StationId, b: StationId) -> f64 {
        let pa = self.positions[&a];
        let pb = self.positions[&b];
        let d = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt();
        d.max(1.0)
    }

    /// Path loss in dB over `d` metres.
    pub fn path_loss_db(&self, d: f64) -> f64 {
        self.path_loss_1m_db + 10.0 * self.exponent * d.max(1.0).log10()
    }

    /// Received signal strength at `rx` for a transmission from `tx`.
    pub fn rx_power_dbm(&self, tx: StationId, rx: StationId) -> f64 {
        self.tx_power_dbm - self.path_loss_db(self.distance(tx, rx))
    }

    /// Signal-to-noise ratio in dB on the `tx → rx` link.
    pub fn snr_db(&self, tx: StationId, rx: StationId) -> f64 {
        self.rx_power_dbm(tx, rx) - self.noise_floor_dbm
    }

    /// The distance (metres) at which the link SNR equals `snr_db` —
    /// inverse of [`Channel::snr_db`], used by experiments that sweep SNR
    /// directly (Figure 11 plots goodput against SNR).
    pub fn distance_for_snr(&self, snr_db: f64) -> f64 {
        let pl = self.tx_power_dbm - self.noise_floor_dbm - snr_db;
        let d = 10f64.powf((pl - self.path_loss_1m_db) / (10.0 * self.exponent));
        d.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        let mut c = Channel::indoor();
        c.place(StationId(0), 0.0, 0.0);
        c.place(StationId(1), 3.0, 4.0);
        c
    }

    #[test]
    fn distance_is_euclidean() {
        assert!((ch().distance(StationId(0), StationId(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_clamped_at_1m() {
        let mut c = Channel::indoor();
        c.place(StationId(0), 0.0, 0.0);
        c.place(StationId(1), 0.1, 0.0);
        assert_eq!(c.distance(StationId(0), StationId(1)), 1.0);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let mut c = Channel::indoor();
        c.place(StationId(0), 0.0, 0.0);
        let mut last = f64::INFINITY;
        for d in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
            c.place(StationId(1), d, 0.0);
            let snr = c.snr_db(StationId(0), StationId(1));
            assert!(snr < last);
            last = snr;
        }
    }

    #[test]
    fn snr_is_symmetric() {
        let c = ch();
        assert_eq!(
            c.snr_db(StationId(0), StationId(1)),
            c.snr_db(StationId(1), StationId(0))
        );
    }

    #[test]
    fn snr_at_close_range_supports_top_rate() {
        // At a few metres an indoor link must comfortably exceed the
        // ~24 dB needed by HT 150 Mbps, or the paper's scenarios would
        // never reach the top rate.
        let mut c = Channel::indoor();
        c.place(StationId(0), 0.0, 0.0);
        c.place(StationId(1), 3.0, 0.0);
        assert!(c.snr_db(StationId(0), StationId(1)) > 24.0);
    }

    #[test]
    fn distance_for_snr_inverts_snr() {
        let mut c = Channel::indoor();
        c.place(StationId(0), 0.0, 0.0);
        for target in [5.0, 10.0, 20.0, 30.0] {
            let d = c.distance_for_snr(target);
            c.place(StationId(1), d, 0.0);
            let snr = c.snr_db(StationId(0), StationId(1));
            assert!((snr - target).abs() < 1e-9, "target {target} got {snr}");
        }
    }

    #[test]
    fn distance_for_snr_clamps_high_targets() {
        // An SNR higher than achievable at 1 m clamps to 1 m.
        let c = Channel::indoor();
        assert_eq!(c.distance_for_snr(1000.0), 1.0);
    }
}
