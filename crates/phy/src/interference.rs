//! Interference domains: which groups of stations can corrupt (or even
//! hear) each other.
//!
//! A dense deployment is a set of BSSs — one AP plus its clients — laid
//! out on a floor or across an apartment block. Two BSSs interfere when
//! they are close enough *and* their channels overlap; everything else
//! is spatial reuse. The [`InterferenceGraph`] captures exactly that
//! relation: one node per domain (= BSS), an edge per pair that can
//! corrupt each other's PPDUs. [`Medium`](crate::Medium) consults it to
//! scope collisions and receptions, replacing the historical "any
//! overlap anywhere corrupts everyone" rule (which survives as the
//! single-domain graph every legacy world gets).
//!
//! The graph is deliberately binary — a pair of domains either
//! interferes or it doesn't. Partial (adjacent-channel) overlap is
//! modelled as a shorter interference range, not a lower corruption
//! probability, which keeps the per-MPDU RNG draw sequence independent
//! of the layout and therefore keeps single-domain digests pinned.

/// Spatial/spectral placement of one BSS's AP, the inputs the
/// interference rule needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BssPlacement {
    /// AP x coordinate (m).
    pub x: f64,
    /// AP y coordinate (m).
    pub y: f64,
    /// 2.4 GHz channel number (1–11; channels within 5 of each other
    /// overlap spectrally).
    pub channel: u8,
}

/// Ranges that decide when two BSSs interfere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceConfig {
    /// AP-to-AP distance (m) within which two *co-channel* BSSs corrupt
    /// each other.
    pub co_channel_range_m: f64,
    /// AP-to-AP distance (m) within which two *partially overlapping*
    /// channels (|Δchannel| < 5 in the 2.4 GHz plan) corrupt each
    /// other. Shorter than the co-channel range: partial spectral
    /// overlap needs more received power to do damage.
    pub adjacent_range_m: f64,
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        // Indoor log-distance (exponent 3) puts a co-channel AP at 30 m
        // right at the carrier-sense floor; adjacent-channel energy
        // needs roughly half that distance to matter.
        InterferenceConfig {
            co_channel_range_m: 30.0,
            adjacent_range_m: 12.0,
        }
    }
}

/// Symmetric interference relation over `n` domains.
///
/// Every domain always interferes with itself. Construction is
/// deterministic: adjacency lists are kept sorted, so iteration order
/// never depends on edge insertion order.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    /// `adj[d]` holds every domain whose transmissions reach `d`,
    /// including `d` itself, sorted ascending.
    adj: Vec<Vec<u32>>,
}

impl InterferenceGraph {
    /// The legacy graph: one domain, everyone interferes with everyone.
    pub fn single() -> Self {
        InterferenceGraph { adj: vec![vec![0]] }
    }

    /// A graph over `n` domains with the given undirected edges.
    ///
    /// # Panics
    /// Panics if an edge names a domain `>= n`.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = (0..n).map(|d| vec![d as u32]).collect();
        for &(a, b) in edges {
            assert!(
                a < n && b < n,
                "edge ({a}, {b}) out of range for {n} domains"
            );
            if a == b {
                continue;
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        InterferenceGraph { adj }
    }

    /// Derive the graph from AP placements: co-channel pairs interfere
    /// within `co_channel_range_m`, partially overlapping channels
    /// (|Δchannel| < 5) within `adjacent_range_m`, orthogonal channels
    /// never.
    pub fn derive(aps: &[BssPlacement], cfg: &InterferenceConfig) -> Self {
        let mut edges = Vec::new();
        for a in 0..aps.len() {
            for b in (a + 1)..aps.len() {
                let dch = aps[a].channel.abs_diff(aps[b].channel);
                let range = if dch == 0 {
                    cfg.co_channel_range_m
                } else if dch < 5 {
                    cfg.adjacent_range_m
                } else {
                    continue;
                };
                let (dx, dy) = (aps[a].x - aps[b].x, aps[a].y - aps[b].y);
                if (dx * dx + dy * dy).sqrt() <= range {
                    edges.push((a, b));
                }
            }
        }
        InterferenceGraph::new(aps.len().max(1), &edges)
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph is the trivial empty one (never constructed by
    /// this crate, but clippy insists `len` implies `is_empty`).
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Whether domains `a` and `b` can corrupt each other.
    pub fn interferes(&self, a: u32, b: u32) -> bool {
        a == b || self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// The domains whose transmissions reach `d` (including `d`),
    /// sorted ascending.
    pub fn reaching(&self, d: u32) -> &[u32] {
        &self.adj[d as usize]
    }

    /// Number of undirected cross-domain edges.
    pub fn edge_count(&self) -> usize {
        self.adj
            .iter()
            .enumerate()
            .map(|(d, l)| l.iter().filter(|&&o| (o as usize) > d).count())
            .sum()
    }

    /// Connected components, each sorted ascending, ordered by their
    /// smallest member — the unit of parallel sharding: domains in
    /// different components can never affect each other.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(d) = stack.pop() {
                comp.push(d);
                for &o in &self.adj[d] {
                    let o = o as usize;
                    if !seen[o] {
                        seen[o] = true;
                        stack.push(o);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(x: f64, y: f64, channel: u8) -> BssPlacement {
        BssPlacement { x, y, channel }
    }

    #[test]
    fn single_graph_is_reflexive_and_total() {
        let g = InterferenceGraph::single();
        assert_eq!(g.len(), 1);
        assert!(g.interferes(0, 0));
        assert_eq!(g.reaching(0), &[0]);
        assert_eq!(g.components(), vec![vec![0]]);
    }

    #[test]
    fn edges_are_symmetric_and_self_loops_implicit() {
        let g = InterferenceGraph::new(4, &[(0, 2), (2, 3)]);
        assert!(g.interferes(0, 2) && g.interferes(2, 0));
        assert!(g.interferes(2, 3));
        assert!(!g.interferes(0, 3), "interference is not transitive");
        assert!(!g.interferes(0, 1));
        assert!((0..4).all(|d| g.interferes(d, d)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn components_partition_by_reachability() {
        let g = InterferenceGraph::new(5, &[(0, 2), (2, 3), (1, 4)]);
        assert_eq!(g.components(), vec![vec![0, 2, 3], vec![1, 4]]);
        let g = InterferenceGraph::new(3, &[]);
        assert_eq!(g.components(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn derive_uses_channel_overlap_and_distance() {
        let cfg = InterferenceConfig::default();
        // Co-channel inside range; orthogonal channels at zero distance;
        // partial overlap inside the shorter adjacent range only.
        let aps = [
            at(0.0, 0.0, 1),
            at(20.0, 0.0, 1),  // co-channel, 20 m < 30 m: edge
            at(0.0, 5.0, 6),   // orthogonal (Δ5): never an edge
            at(0.0, 10.0, 3),  // Δ2 partial overlap, 10 m < 12 m: edge
            at(0.0, 100.0, 1), // co-channel but far: no edge
        ];
        let g = InterferenceGraph::derive(&aps, &cfg);
        assert!(g.interferes(0, 1));
        assert!(!g.interferes(0, 2));
        assert!(g.interferes(0, 3));
        assert!(!g.interferes(0, 4));
        assert!(
            g.interferes(2, 3),
            "ch6 vs ch3 (Δ3) at 5 m is within the 12 m adjacent range"
        );
    }

    #[test]
    fn derive_adjacent_channel_edge_cases() {
        let cfg = InterferenceConfig {
            co_channel_range_m: 30.0,
            adjacent_range_m: 12.0,
        };
        // Δ4 still overlaps; Δ5 (1 vs 6) is orthogonal even co-located.
        let g = InterferenceGraph::derive(&[at(0.0, 0.0, 1), at(1.0, 0.0, 5)], &cfg);
        assert!(g.interferes(0, 1));
        let g = InterferenceGraph::derive(&[at(0.0, 0.0, 1), at(1.0, 0.0, 6)], &cfg);
        assert!(!g.interferes(0, 1));
        // Exactly at range counts as interfering (<=).
        let g = InterferenceGraph::derive(&[at(0.0, 0.0, 11), at(30.0, 0.0, 11)], &cfg);
        assert!(g.interferes(0, 1));
    }
}
