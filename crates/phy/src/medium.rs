//! The shared broadcast medium: who is transmitting, who collides, what
//! each receiver decodes.
//!
//! The medium is payload-agnostic — it deals only in [`PpduMeta`]
//! (source, destination, rate, per-MPDU lengths, airtime). The event loop
//! in `hack-core` stores the actual frames keyed by the returned [`TxId`]
//! and calls [`Medium::end_tx`] when the scheduled airtime elapses.
//!
//! ## Collision model
//!
//! Within one interference domain, every station is within carrier-sense
//! range of every other (the paper's scenarios are a single 10 m cell
//! with no hidden terminals), so any two transmissions that overlap in
//! time corrupt each other completely — no capture effect. This is the
//! conservative model; it is what makes vanilla TCP's ACK/data
//! collisions visible, the effect TCP/HACK exploits (§4.2, Table 1).
//!
//! Dense multi-BSS worlds partition stations into *interference domains*
//! (one per BSS) related by an [`InterferenceGraph`]: overlapping
//! transmissions corrupt each other only when their domains interfere,
//! and a PPDU is received (or even heard as energy) only by stations in
//! domains that hear the transmitter's. Legacy single-cell worlds get
//! the single-domain graph, which reproduces the historical behaviour
//! bit for bit — same reception iteration order, same RNG draws, same
//! trace digests.
//!
//! ## Loss model
//!
//! For non-collided PPDUs, the preamble may be missed (SNR mode only) and
//! then each MPDU inside the aggregate is lost independently per
//! [`LossModel::mpdu_loss_prob`], matching per-MPDU CRCs in 802.11n.
//! [`LossModel::Burst`] instead advances a per-link Gilbert–Elliott state
//! machine one step per MPDU, so losses cluster the way fading does.
//!
//! ## Fault injection
//!
//! With a [`CorruptModel`] installed the medium can *deliver* a faulted
//! MPDU with flipped bits instead of silently dropping it, reported as
//! [`MpduStatus::Corrupt`]. `fcs_ok: false` means the MAC FCS catches the
//! damage (the receiver sees garbage and defers EIFS); `fcs_ok: true`
//! models the rare flip the FCS check cannot see — in this codebase that
//! is the HACK blob extension of a control frame, which is exactly the
//! input the ROHC CRC-3 / context-repair path (§3.3.2) exists to absorb.

use std::collections::HashMap;

use hack_sim::{SimRng, SimTime};
use hack_trace::{Event, TraceHandle};

use crate::channel::Channel;
use crate::error::LossModel;
use crate::interference::InterferenceGraph;
use crate::rates::PhyRate;
use crate::StationId;
use hack_sim::SimDuration;

/// Identifies one in-flight transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

/// Payload-agnostic description of a PPDU on the air.
#[derive(Debug, Clone)]
pub struct PpduMeta {
    /// Transmitting station.
    pub src: StationId,
    /// Intended receiver (`None` = broadcast; every station decodes).
    pub dst: Option<StationId>,
    /// Data rate of the PSDU.
    pub rate: PhyRate,
    /// Length in bytes of each MPDU in the (possibly singleton) aggregate.
    pub mpdu_lens: Vec<u32>,
    /// Whether this PPDU is a control response (ACK / Block ACK / BAR).
    /// The fixed-loss model exempts control frames: measured
    /// "packet loss rates" (the paper's 12 % / 2 %) describe data
    /// frames, and short basic-rate control frames are far more robust.
    /// The SNR model still applies to them (at their own rate).
    pub control: bool,
    /// Total airtime including preamble.
    pub duration: SimDuration,
}

/// What happened to one MPDU of an aggregate at one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpduStatus {
    /// Decoded cleanly.
    Ok,
    /// Channel ate it; the receiver saw nothing of this MPDU.
    Lost,
    /// Delivered with flipped bits (fault injection).
    Corrupt {
        /// `false`: the MAC FCS catches the damage — the frame body is
        /// discarded and the receiver defers EIFS. `true`: the flip
        /// escaped the FCS-protected region (HACK blob extension), so
        /// the MAC accepts the frame and hands corrupted blob bytes up
        /// to the ROHC decompressor.
        fcs_ok: bool,
    },
}

impl MpduStatus {
    /// Whether the MPDU was decoded cleanly.
    pub fn is_ok(self) -> bool {
        self == MpduStatus::Ok
    }
}

/// Probability knobs for corrupted delivery. All zero ⇒ identical to the
/// plain drop model.
///
/// `fcs_miss` is deliberately exaggerated relative to a real CRC-32
/// residual (~2⁻³²): it is a fault-injection knob for driving the ROHC
/// CRC-3 repair path under load, not a claim about FCS strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptModel {
    /// Fraction of *lost* data MPDUs that arrive corrupted (and are
    /// always FCS-caught) instead of vanishing.
    pub data_frac: f64,
    /// Independent per-MPDU corruption probability for control frames,
    /// applied even where the loss model exempts them from drops.
    pub control_per: f64,
    /// Probability a corrupted control MPDU's bit flip lands beyond the
    /// FCS-checked region, i.e. inside the HACK blob extension.
    pub fcs_miss: f64,
}

impl Default for CorruptModel {
    fn default() -> Self {
        CorruptModel {
            data_frac: 0.5,
            control_per: 0.01,
            fcs_miss: 0.1,
        }
    }
}

/// What one station heard of one PPDU.
#[derive(Debug, Clone)]
pub struct Reception {
    /// The listening station.
    pub station: StationId,
    /// Whether the preamble was detected and the PPDU did not collide.
    /// When false, the station saw only energy (it still defers).
    pub detected: bool,
    /// Per-MPDU decode results (empty when `detected` is false).
    pub mpdus: Vec<MpduStatus>,
    /// Link SNR in dB (`f64::INFINITY` when no channel model is active).
    pub snr_db: f64,
}

impl Reception {
    /// Whether MPDU `i` was decoded cleanly.
    pub fn mpdu_ok(&self, i: usize) -> bool {
        self.mpdus.get(i).copied().is_some_and(MpduStatus::is_ok)
    }
}

/// The result of a completed transmission.
#[derive(Debug, Clone)]
pub struct TxOutcome {
    /// The transmission's metadata, returned to the caller.
    pub meta: PpduMeta,
    /// Whether another transmission overlapped this one.
    pub collided: bool,
    /// One entry per listening station other than the source — every
    /// station whose interference domain hears the transmitter's (all
    /// other stations on a legacy single-domain medium).
    pub receptions: Vec<Reception>,
}

#[derive(Debug)]
struct ActiveTx {
    id: TxId,
    meta: PpduMeta,
    start: SimTime,
    end: SimTime,
    collided: bool,
    /// Interference domain of the transmitter.
    domain: u32,
}

/// The broadcast medium.
#[derive(Debug)]
pub struct Medium {
    stations: Vec<StationId>,
    /// Interference domain of each station, parallel to `stations`.
    domains: Vec<u32>,
    /// Which domains can corrupt / hear each other.
    graph: InterferenceGraph,
    /// Per domain `d`: the stations (in `stations` order) whose domain
    /// hears `d` — the only candidates `end_tx` computes receptions for.
    listeners: Vec<Vec<StationId>>,
    /// Station id → index into `stations` / `domains`.
    index: HashMap<u32, usize>,
    loss: LossModel,
    channel: Option<Channel>,
    active: Vec<ActiveTx>,
    next_id: u64,
    /// Number of transmissions that ended collided.
    collisions: u64,
    /// Total transmissions completed.
    completed: u64,
    /// Gilbert–Elliott bad-state flags, one per unordered link, advanced
    /// one step per MPDU heard on that link.
    ge: HashMap<(u32, u32), bool>,
    /// Per-station loss overrides *composed* on top of the burst/SNR
    /// models by mid-run [`Medium::set_station_loss`] steps (the fixed
    /// models mutate their own table instead).
    extra_loss: HashMap<StationId, f64>,
    /// Mid-run loss steps applied (fixed mutations and compositions).
    loss_overrides: u64,
    /// Corrupted-delivery knobs (`None` = plain drops).
    corrupt: Option<CorruptModel>,
    /// Global SNR offset in dB applied on top of the channel model —
    /// the handle mid-run channel dynamics use to fade the whole cell.
    snr_offset_db: f64,
    trace: TraceHandle,
}

/// Unordered link key for per-link channel state.
fn link_key(a: StationId, b: StationId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl Medium {
    /// Create a medium over the given stations with a loss model and an
    /// optional propagation channel (required for [`LossModel::Snr`]).
    ///
    /// Every station lands in a single interference domain — the legacy
    /// "any overlap anywhere corrupts everyone" broadcast cell.
    ///
    /// # Panics
    /// Panics if `loss` is SNR-driven but no channel is supplied.
    pub fn new(stations: Vec<StationId>, loss: LossModel, channel: Option<Channel>) -> Self {
        let domains = vec![0; stations.len()];
        Medium::with_domains(
            stations,
            domains,
            InterferenceGraph::single(),
            loss,
            channel,
        )
    }

    /// Create a medium whose stations are partitioned into interference
    /// domains (`domains[i]` is the domain of `stations[i]`) related by
    /// `graph`. Overlapping transmissions corrupt each other only when
    /// their domains interfere, and receptions are computed only for
    /// stations whose domain hears the transmitter's.
    ///
    /// # Panics
    /// Panics if `loss` is SNR-driven but no channel is supplied, if
    /// `domains` is not parallel to `stations`, or if a domain index is
    /// out of range for `graph`.
    pub fn with_domains(
        stations: Vec<StationId>,
        domains: Vec<u32>,
        graph: InterferenceGraph,
        loss: LossModel,
        channel: Option<Channel>,
    ) -> Self {
        if matches!(loss, LossModel::Snr) {
            assert!(
                channel.is_some(),
                "SNR loss model requires a propagation channel"
            );
        }
        assert_eq!(
            stations.len(),
            domains.len(),
            "one interference domain per station"
        );
        assert!(
            domains.iter().all(|&d| (d as usize) < graph.len()),
            "station domain out of range for the interference graph"
        );
        // Precompute each domain's audience in registration order: the
        // legacy single-domain graph makes listeners[0] == stations, so
        // `end_tx` walks exactly the historical iteration order.
        let listeners = (0..graph.len() as u32)
            .map(|d| {
                stations
                    .iter()
                    .zip(&domains)
                    .filter(|&(_, &sd)| graph.interferes(sd, d))
                    .map(|(&s, _)| s)
                    .collect()
            })
            .collect();
        let index = stations.iter().enumerate().map(|(i, s)| (s.0, i)).collect();
        Medium {
            stations,
            domains,
            graph,
            listeners,
            index,
            loss,
            channel,
            active: Vec::new(),
            next_id: 0,
            collisions: 0,
            completed: 0,
            ge: HashMap::new(),
            extra_loss: HashMap::new(),
            loss_overrides: 0,
            corrupt: None,
            snr_offset_db: 0.0,
            trace: TraceHandle::off(),
        }
    }

    /// Install the structured-event trace handle (off by default).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Install (or clear) the corrupted-delivery model.
    pub fn set_corruption(&mut self, corrupt: Option<CorruptModel>) {
        self.corrupt = corrupt;
    }

    /// Set the global SNR offset in dB (mid-run fade/ramp dynamics).
    pub fn set_snr_offset_db(&mut self, offset_db: f64) {
        self.snr_offset_db = offset_db;
    }

    /// Move a station on the propagation channel (no geometric effect in
    /// the fixed-loss regimes, which ignore geometry) and reset the
    /// station's per-link Gilbert–Elliott burst state: the bad-state flag
    /// is a property of the old geometry's fade, and carrying it across a
    /// move would glue the old position's burst onto every link the
    /// station forms at the new one.
    pub fn place_station(&mut self, station: StationId, x: f64, y: f64) {
        if let Some(ch) = self.channel.as_mut() {
            ch.place(station, x, y);
        }
        self.ge
            .retain(|&(a, b), _| a != station.0 && b != station.0);
    }

    /// Re-home a station to a new interference `domain` mid-run — the
    /// PHY half of an AP handoff. Carrier sense, reception audience,
    /// and collision accounting all follow the new cell's channel from
    /// the next transmission on; per-link Gilbert–Elliott state for the
    /// station is reset like a move, since the burst fade belonged to
    /// the links of the old cell.
    ///
    /// # Panics
    ///
    /// Panics if `station` was never registered or `domain` is out of
    /// range for the interference graph.
    pub fn retune_station(&mut self, station: StationId, domain: u32) {
        assert!(
            (domain as usize) < self.graph.len(),
            "station domain out of range for the interference graph"
        );
        let i = self.index[&station.0];
        if self.domains[i] == domain {
            return;
        }
        self.domains[i] = domain;
        self.ge
            .retain(|&(a, b), _| a != station.0 && b != station.0);
        // Audience lists are precomputed per domain; rebuild them all in
        // registration order (handoffs are rare, fleets are small).
        self.listeners = (0..self.graph.len() as u32)
            .map(|d| {
                self.stations
                    .iter()
                    .zip(&self.domains)
                    .filter(|&(_, &sd)| self.graph.interferes(sd, d))
                    .map(|(&s, _)| s)
                    .collect()
            })
            .collect();
    }

    /// Change one station's per-MPDU loss rate mid-run.
    ///
    /// Under the fixed regimes this mutates the loss table ([`LossModel::Ideal`]
    /// converts to fixed-loss on first use). Under [`LossModel::Burst`]
    /// and [`LossModel::Snr`] — whose baseline loss comes from elsewhere —
    /// the step *composes*: an independent per-MPDU loss override drawn
    /// on top of the model (`per = 0` clears it). Either way the step is
    /// counted and traced as [`Event::PhyLossOverride`]; before this it
    /// silently vanished on burst/SNR media.
    pub fn set_station_loss(&mut self, station: StationId, per: f64, now: SimTime) {
        self.loss_overrides += 1;
        let composed = match &mut self.loss {
            LossModel::FixedPer(map) => {
                map.insert(station, per);
                false
            }
            LossModel::Ideal => {
                self.loss = LossModel::fixed([(station, per)]);
                false
            }
            LossModel::Burst(_) | LossModel::Snr => {
                if per > 0.0 {
                    self.extra_loss.insert(station, per);
                } else {
                    self.extra_loss.remove(&station);
                }
                true
            }
        };
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            station.0,
            Event::PhyLossOverride {
                station: station.0,
                per_bits: per.to_bits(),
                composed,
            }
        );
    }

    /// Number of mid-run loss steps applied so far (both fixed-table
    /// mutations and burst/SNR compositions).
    pub fn loss_overrides(&self) -> u64 {
        self.loss_overrides
    }

    /// The stations on this medium.
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// Whether any transmission is currently on the air, anywhere.
    pub fn busy(&self) -> bool {
        !self.active.is_empty()
    }

    /// Whether `station` hears any in-flight transmission — the
    /// carrier-sense question, scoped to the station's interference
    /// domain. Equals [`Medium::busy`] on a single-domain medium.
    pub fn busy_for(&self, station: StationId) -> bool {
        let d = self.domain_of(station);
        self.active
            .iter()
            .any(|t| self.graph.interferes(t.domain, d))
    }

    /// Interference domain of `station`.
    ///
    /// # Panics
    /// Panics if `station` is not registered.
    pub fn domain_of(&self, station: StationId) -> u32 {
        self.domains[self.index[&station.0]]
    }

    /// The stations (in registration order) that hear transmissions from
    /// `domain`, including the domain's own members.
    pub fn listeners(&self, domain: u32) -> &[StationId] {
        &self.listeners[domain as usize]
    }

    /// The interference graph relating the domains.
    pub fn graph(&self) -> &InterferenceGraph {
        &self.graph
    }

    /// Number of concurrent transmissions (>1 implies a collision in
    /// progress).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Completed transmissions so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completed transmissions that were corrupted by overlap.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Link SNR for `tx → rx` under the configured channel, or +∞ when no
    /// channel is modelled.
    pub fn snr_db(&self, tx: StationId, rx: StationId) -> f64 {
        self.channel
            .as_ref()
            .map_or(f64::INFINITY, |c| c.snr_db(tx, rx) + self.snr_offset_db)
    }

    /// Begin a transmission at `now`. Any overlap with an in-flight
    /// transmission in an interfering domain corrupts both.
    ///
    /// # Panics
    /// Panics if `src` is already transmitting (a MAC bug) or is not a
    /// registered station.
    pub fn begin_tx(&mut self, meta: PpduMeta, now: SimTime) -> TxId {
        let domain = match self.index.get(&meta.src.0) {
            Some(&i) => self.domains[i],
            None => panic!("unknown station {:?}", meta.src),
        };
        assert!(
            self.active.iter().all(|t| t.meta.src != meta.src),
            "station {:?} started a second concurrent transmission",
            meta.src
        );
        let id = TxId(self.next_id);
        self.next_id += 1;
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            meta.src.0,
            Event::PhyTxStart {
                tx: id.0,
                dst: meta.dst.map_or(u32::MAX, |d| d.0),
                mpdus: meta.mpdu_lens.len() as u32,
            }
        );
        let mut collided = false;
        for t in &mut self.active {
            if self.graph.interferes(t.domain, domain) {
                t.collided = true;
                collided = true;
            }
        }
        self.active.push(ActiveTx {
            id,
            end: now + meta.duration,
            meta,
            start: now,
            collided,
            domain,
        });
        id
    }

    /// Complete transmission `id` at `now` (which must equal its scheduled
    /// end) and compute what every listening station received.
    ///
    /// # Panics
    /// Panics if `id` is unknown or `now` differs from the scheduled end.
    pub fn end_tx(&mut self, id: TxId, now: SimTime, rng: &mut SimRng) -> TxOutcome {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == id)
            .expect("end_tx for unknown or already-ended transmission");
        let tx = self.active.swap_remove(idx);
        assert_eq!(tx.end, now, "end_tx at wrong time");
        debug_assert!(tx.start <= now);
        self.completed += 1;
        if tx.collided {
            self.collisions += 1;
        }

        // Only stations whose domain hears the transmitter's get a
        // reception — on a legacy single-domain medium that is every
        // station, in registration order. Index loop instead of iterator
        // chain: `receive_at` mutates per-link Gilbert–Elliott state, so
        // it needs `&mut self`. Capacity saturates for degenerate
        // (single- or zero-listener) worlds.
        let d = tx.domain as usize;
        let mut receptions: Vec<Reception> =
            Vec::with_capacity(self.listeners[d].len().saturating_sub(1));
        for i in 0..self.listeners[d].len() {
            let station = self.listeners[d][i];
            if station != tx.meta.src {
                receptions.push(self.receive_at(station, &tx, rng));
            }
        }

        if self.trace.enabled() {
            self.trace_tx_outcome(&tx, &receptions, now);
        }

        TxOutcome {
            collided: tx.collided,
            meta: tx.meta,
            receptions,
        }
    }

    /// Emit the PHY trace events describing one completed transmission,
    /// judged at the intended receiver (or across every listener for
    /// broadcast PPDUs).
    fn trace_tx_outcome(&self, tx: &ActiveTx, receptions: &[Reception], now: SimTime) {
        let t = now.as_nanos();
        let src = tx.meta.src.0;
        if tx.collided {
            self.trace.emit(t, src, Event::PhyCollision { tx: tx.id.0 });
        }
        let judged: Vec<&Reception> = receptions
            .iter()
            .filter(|r| tx.meta.dst.is_none_or(|d| d == r.station))
            .collect();
        let mut delivered = 0u32;
        for r in &judged {
            if !r.detected {
                if !tx.collided {
                    self.trace
                        .emit(t, r.station.0, Event::PhyPreambleMiss { tx: tx.id.0 });
                }
                continue;
            }
            for (i, &st) in r.mpdus.iter().enumerate() {
                match st {
                    MpduStatus::Ok => delivered += 1,
                    MpduStatus::Lost => {
                        self.trace.emit(
                            t,
                            r.station.0,
                            Event::PhyPerDrop {
                                tx: tx.id.0,
                                mpdu: i as u32,
                            },
                        );
                    }
                    MpduStatus::Corrupt { fcs_ok } => {
                        self.trace.emit(
                            t,
                            r.station.0,
                            Event::PhyFaultInjected {
                                tx: tx.id.0,
                                mpdu: i as u32,
                                fcs_ok,
                            },
                        );
                    }
                }
            }
        }
        let offered = (judged.len() * tx.meta.mpdu_lens.len()) as u32;
        self.trace.emit(
            t,
            src,
            Event::PhyTxEnd {
                tx: tx.id.0,
                delivered,
                lost: offered.saturating_sub(delivered),
            },
        );
    }

    fn receive_at(&mut self, station: StationId, tx: &ActiveTx, rng: &mut SimRng) -> Reception {
        let snr_db = self.snr_db(tx.meta.src, station);
        if tx.collided {
            return Reception {
                station,
                detected: false,
                mpdus: Vec::new(),
                snr_db,
            };
        }
        if rng.chance(self.loss.preamble_loss_prob(snr_db)) {
            return Reception {
                station,
                detected: false,
                mpdus: Vec::new(),
                snr_db,
            };
        }
        // Control-frame exemption covers both fixed-rate regimes: the
        // measured loss rates describe data frames, and short basic-rate
        // control frames are far more robust. Exempt frames also leave
        // the Gilbert–Elliott link state untouched, keeping the RNG draw
        // sequence a pure function of the data MPDU stream.
        let exempt =
            tx.meta.control && matches!(self.loss, LossModel::FixedPer(_) | LossModel::Burst(_));
        let burst = match self.loss {
            LossModel::Burst(params) => Some(params),
            _ => None,
        };
        let link = link_key(tx.meta.src, station);
        // Mid-run loss override composed on top of the burst/SNR model.
        // The extra draw happens only when an override exists on the
        // link, so override-free runs keep their exact RNG draw sequence
        // (and therefore their trace digests).
        let extra = if self.extra_loss.is_empty() || exempt {
            None
        } else {
            let pa = self.extra_loss.get(&tx.meta.src).copied().unwrap_or(0.0);
            let pb = self.extra_loss.get(&station).copied().unwrap_or(0.0);
            let p = 1.0 - (1.0 - pa) * (1.0 - pb);
            (p > 0.0).then_some(p)
        };
        let mut mpdus = Vec::with_capacity(tx.meta.mpdu_lens.len());
        for &len in &tx.meta.mpdu_lens {
            // Fixed draw order per MPDU — loss first, then corruption —
            // so the trace digest is reproducible from the seed alone.
            let mut lost = if exempt {
                false
            } else if let Some(params) = burst {
                let bad = self.ge.entry(link).or_insert(false);
                params.step(bad, rng)
            } else {
                let p = self
                    .loss
                    .mpdu_loss_prob(tx.meta.src, station, tx.meta.rate, len, snr_db);
                rng.chance(p)
            };
            if let Some(p) = extra {
                // Non-short-circuiting on purpose: one draw per MPDU
                // regardless of the base model's verdict.
                lost |= rng.chance(p);
            }
            let status = match (self.corrupt, tx.meta.control, lost) {
                // Control frames: an independent corruption draw, then a
                // draw for whether the flip escapes the FCS region.
                (Some(c), true, _) if rng.chance(c.control_per) => MpduStatus::Corrupt {
                    fcs_ok: rng.chance(c.fcs_miss),
                },
                // Data frames: a faulted MPDU arrives corrupted (always
                // FCS-caught) instead of vanishing.
                (Some(c), false, true) if rng.chance(c.data_frac) => {
                    MpduStatus::Corrupt { fcs_ok: false }
                }
                (_, _, true) => MpduStatus::Lost,
                _ => MpduStatus::Ok,
            };
            mpdus.push(status);
        }
        Reception {
            station,
            detected: true,
            mpdus,
            snr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GeParams;
    use hack_sim::SimDuration;

    const AP: StationId = StationId(0);
    const C1: StationId = StationId(1);
    const C2: StationId = StationId(2);

    fn meta(src: StationId, dst: StationId, n_mpdus: usize) -> PpduMeta {
        PpduMeta {
            src,
            dst: Some(dst),
            rate: PhyRate::dot11a(54),
            mpdu_lens: vec![1500; n_mpdus],
            control: false,
            duration: SimDuration::from_micros(244),
        }
    }

    fn ideal_medium() -> Medium {
        Medium::new(vec![AP, C1, C2], LossModel::Ideal, None)
    }

    #[test]
    fn clean_tx_delivers_to_all_listeners() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let id = m.begin_tx(meta(AP, C1, 3), t0);
        assert!(m.busy());
        let out = m.end_tx(id, t0 + SimDuration::from_micros(244), &mut rng);
        assert!(!m.busy());
        assert!(!out.collided);
        assert_eq!(out.receptions.len(), 2); // C1 and C2, not AP
        for r in &out.receptions {
            assert!(r.detected);
            assert_eq!(r.mpdus, vec![MpduStatus::Ok; 3]);
            assert!((0..3).all(|i| r.mpdu_ok(i)));
            assert!(!r.mpdu_ok(3));
        }
        assert_eq!(m.completed(), 1);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn overlapping_txs_both_collide() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let a = m.begin_tx(meta(AP, C1, 1), t0);
        // C2 starts while AP is still on the air.
        let later = t0 + SimDuration::from_micros(100);
        let b = m.begin_tx(meta(C2, AP, 1), later);
        assert_eq!(m.active_count(), 2);

        let out_a = m.end_tx(a, t0 + SimDuration::from_micros(244), &mut rng);
        assert!(out_a.collided);
        assert!(out_a.receptions.iter().all(|r| !r.detected));

        let out_b = m.end_tx(b, later + SimDuration::from_micros(244), &mut rng);
        assert!(out_b.collided);
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn back_to_back_txs_do_not_collide() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_micros(244);
        let a = m.begin_tx(meta(AP, C1, 1), t0);
        let out = m.end_tx(a, t0 + d, &mut rng);
        assert!(!out.collided);
        // Next transmission starts exactly when the first ended: clean.
        let b = m.begin_tx(meta(C1, AP, 1), t0 + d);
        let out = m.end_tx(b, t0 + d + d, &mut rng);
        assert!(!out.collided);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    #[should_panic(expected = "second concurrent transmission")]
    fn double_tx_from_same_station_panics() {
        let mut m = ideal_medium();
        let t0 = SimTime::ZERO;
        m.begin_tx(meta(AP, C1, 1), t0);
        m.begin_tx(meta(AP, C2, 1), t0);
    }

    #[test]
    fn fixed_per_loss_applies_per_mpdu() {
        let loss = LossModel::fixed([(C1, 0.5)]);
        let mut m = Medium::new(vec![AP, C1], loss, None);
        let mut rng = SimRng::new(7);
        let mut lost = 0u32;
        let mut total = 0u32;
        let d = SimDuration::from_micros(244);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let id = m.begin_tx(meta(AP, C1, 8), now);
            now += d;
            let out = m.end_tx(id, now, &mut rng);
            let r = &out.receptions[0];
            assert!(r.detected, "fixed-loss mode never loses preambles");
            for &st in &r.mpdus {
                total += 1;
                if !st.is_ok() {
                    lost += 1;
                }
            }
            now += SimDuration::from_micros(50);
        }
        let frac = f64::from(lost) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.05, "loss fraction {frac}");
    }

    #[test]
    fn snr_mode_needs_channel() {
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        let m = Medium::new(vec![AP, C1], LossModel::Snr, Some(ch));
        assert!(m.snr_db(AP, C1) > 24.0);
    }

    #[test]
    #[should_panic(expected = "requires a propagation channel")]
    fn snr_mode_without_channel_panics() {
        let _ = Medium::new(vec![AP, C1], LossModel::Snr, None);
    }

    #[test]
    fn snr_mode_close_link_is_clean_far_link_is_dead() {
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        // Far beyond any 802.11a sensitivity.
        ch.place(C2, 2000.0, 0.0);
        let mut m = Medium::new(vec![AP, C1, C2], LossModel::Snr, Some(ch));
        let mut rng = SimRng::new(5);
        let mut now = SimTime::ZERO;
        let d = SimDuration::from_micros(244);
        let mut c1_ok = 0;
        let mut c2_ok = 0;
        for _ in 0..100 {
            let id = m.begin_tx(meta(AP, C1, 1), now);
            now += d;
            let out = m.end_tx(id, now, &mut rng);
            for r in &out.receptions {
                let ok = r.detected && r.mpdus.iter().all(|&s| s.is_ok());
                if r.station == C1 && ok {
                    c1_ok += 1;
                }
                if r.station == C2 && ok {
                    c2_ok += 1;
                }
            }
            now += SimDuration::from_micros(50);
        }
        assert!(c1_ok >= 99, "close link should be clean, got {c1_ok}/100");
        assert_eq!(c2_ok, 0, "2 km link must be dead");
    }

    #[test]
    #[should_panic(expected = "end_tx at wrong time")]
    fn end_tx_at_wrong_time_panics() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let id = m.begin_tx(meta(AP, C1, 1), SimTime::ZERO);
        let _ = m.end_tx(id, SimTime::from_micros(1), &mut rng);
    }

    /// Run `rounds` single-MPDU data transmissions AP→C1 and return the
    /// per-MPDU statuses C1 saw.
    fn run_rounds(m: &mut Medium, rng: &mut SimRng, rounds: usize) -> Vec<MpduStatus> {
        let d = SimDuration::from_micros(244);
        let mut now = SimTime::ZERO;
        let mut statuses = Vec::new();
        for _ in 0..rounds {
            let id = m.begin_tx(meta(AP, C1, 1), now);
            now += d;
            let out = m.end_tx(id, now, rng);
            let r = out.receptions.iter().find(|r| r.station == C1).unwrap();
            statuses.push(r.mpdus[0]);
            now += SimDuration::from_micros(50);
        }
        statuses
    }

    #[test]
    fn burst_model_clusters_losses() {
        let ge = GeParams::bursty(0.15, 10.0);
        let mut m = Medium::new(vec![AP, C1], LossModel::Burst(ge), None);
        let mut rng = SimRng::new(42);
        let statuses = run_rounds(&mut m, &mut rng, 20_000);
        let losses = statuses.iter().filter(|s| !s.is_ok()).count();
        let runs = statuses
            .windows(2)
            .filter(|w| !w[1].is_ok() && w[0].is_ok())
            .count()
            + usize::from(!statuses[0].is_ok());
        let rate = losses as f64 / statuses.len() as f64;
        assert!((rate - 0.15).abs() < 0.02, "loss rate {rate}");
        let mean_burst = losses as f64 / runs as f64;
        assert!(
            mean_burst > 5.0,
            "bursty losses should clump, mean run {mean_burst}"
        );
    }

    #[test]
    fn corruption_converts_data_drops_to_fcs_failures() {
        let loss = LossModel::fixed([(C1, 0.3)]);
        let mut m = Medium::new(vec![AP, C1], loss, None);
        m.set_corruption(Some(CorruptModel {
            data_frac: 1.0,
            control_per: 0.0,
            fcs_miss: 0.0,
        }));
        let mut rng = SimRng::new(9);
        let statuses = run_rounds(&mut m, &mut rng, 2_000);
        let corrupt = statuses
            .iter()
            .filter(|s| matches!(s, MpduStatus::Corrupt { fcs_ok: false }))
            .count();
        let lost = statuses.iter().filter(|&&s| s == MpduStatus::Lost).count();
        assert_eq!(lost, 0, "data_frac = 1 leaves no silent drops");
        let frac = corrupt as f64 / statuses.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "corrupt fraction {frac}");
        // Data corruption is always FCS-caught.
        assert!(!statuses
            .iter()
            .any(|s| matches!(s, MpduStatus::Corrupt { fcs_ok: true })));
    }

    #[test]
    fn control_corruption_sometimes_escapes_the_fcs() {
        let mut m = Medium::new(vec![AP, C1], LossModel::fixed([(C1, 0.12)]), None);
        m.set_corruption(Some(CorruptModel {
            data_frac: 0.0,
            control_per: 0.2,
            fcs_miss: 0.25,
        }));
        let mut rng = SimRng::new(11);
        let d = SimDuration::from_micros(244);
        let mut now = SimTime::ZERO;
        let mut caught = 0usize;
        let mut escaped = 0usize;
        for _ in 0..5_000 {
            let mut pm = meta(C1, AP, 1);
            pm.control = true;
            let id = m.begin_tx(pm, now);
            now += d;
            let out = m.end_tx(id, now, &mut rng);
            let r = out.receptions.iter().find(|r| r.station == AP).unwrap();
            match r.mpdus[0] {
                MpduStatus::Corrupt { fcs_ok: false } => caught += 1,
                MpduStatus::Corrupt { fcs_ok: true } => escaped += 1,
                MpduStatus::Lost => panic!("control frames are exempt from fixed loss"),
                MpduStatus::Ok => {}
            }
            now += SimDuration::from_micros(30);
        }
        let corrupt_frac = (caught + escaped) as f64 / 5_000.0;
        assert!((corrupt_frac - 0.2).abs() < 0.03, "corrupt {corrupt_frac}");
        let escape_frac = escaped as f64 / (caught + escaped) as f64;
        assert!((escape_frac - 0.25).abs() < 0.05, "escape {escape_frac}");
    }

    #[test]
    fn dynamics_setters_reshape_the_channel() {
        // set_station_loss converts an ideal medium to fixed loss.
        let mut m = ideal_medium();
        let mut rng = SimRng::new(3);
        m.set_station_loss(C1, 1.0, SimTime::ZERO);
        let statuses = run_rounds(&mut m, &mut rng, 50);
        assert!(statuses.iter().all(|&s| s == MpduStatus::Lost));
        m.set_station_loss(C1, 0.0, SimTime::ZERO);
        let statuses = run_rounds(&mut m, &mut rng, 50);
        assert!(statuses.iter().all(|s| s.is_ok()));
        assert_eq!(m.loss_overrides(), 2);

        // A deep global fade kills an otherwise clean SNR link; moving
        // the station close again (plus clearing the fade) restores it.
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        let mut m = Medium::new(vec![AP, C1], LossModel::Snr, Some(ch));
        assert!(m.snr_db(AP, C1) > 24.0);
        m.set_snr_offset_db(-60.0);
        assert!(m.snr_db(AP, C1) < 0.0);
        m.set_snr_offset_db(0.0);
        m.place_station(C1, 2000.0, 0.0);
        assert!(m.snr_db(AP, C1) < 0.0);
        m.place_station(C1, 2.0, 0.0);
        assert!(m.snr_db(AP, C1) > 24.0);
    }

    #[test]
    fn loss_step_composes_on_burst_medium() {
        let ge = GeParams::bursty(0.15, 10.0);
        let mut m = Medium::new(vec![AP, C1], LossModel::Burst(ge), None);
        let (trace, sink) = hack_trace::TraceHandle::ring(64);
        m.set_trace(trace);
        let mut rng = SimRng::new(21);

        // Used to be a silent no-op; now the override drowns the link.
        m.set_station_loss(C1, 1.0, SimTime::ZERO);
        let statuses = run_rounds(&mut m, &mut rng, 100);
        assert!(
            statuses.iter().all(|&s| s == MpduStatus::Lost),
            "per=1.0 override must lose every MPDU on a burst medium"
        );

        // Clearing the override hands loss back to the GE model alone.
        m.set_station_loss(C1, 0.0, SimTime::ZERO);
        let statuses = run_rounds(&mut m, &mut rng, 2_000);
        let rate = statuses.iter().filter(|s| !s.is_ok()).count() as f64 / statuses.len() as f64;
        assert!(
            rate < 0.5,
            "cleared override leaves only GE loss, got {rate}"
        );

        assert_eq!(m.loss_overrides(), 2);
        assert!(
            sink.digest().events >= 2,
            "each loss step must emit a PhyLossOverride trace event"
        );
    }

    #[test]
    fn loss_step_composes_on_snr_medium() {
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        let mut m = Medium::new(vec![AP, C1], LossModel::Snr, Some(ch));
        let mut rng = SimRng::new(23);
        let statuses = run_rounds(&mut m, &mut rng, 50);
        assert!(statuses.iter().all(|s| s.is_ok()), "2 m SNR link is clean");

        m.set_station_loss(C1, 1.0, SimTime::ZERO);
        let statuses = run_rounds(&mut m, &mut rng, 50);
        assert!(
            statuses.iter().all(|&s| s == MpduStatus::Lost),
            "the override must compose on top of the SNR model"
        );
    }

    #[test]
    fn moving_a_station_resets_its_burst_link_state() {
        let ge = GeParams::bursty(0.5, 50.0);
        let mut m = Medium::new(vec![AP, C1, C2], LossModel::Burst(ge), None);
        let mut rng = SimRng::new(31);
        let _ = run_rounds(&mut m, &mut rng, 200);
        assert!(
            m.ge.contains_key(&link_key(AP, C1)),
            "rounds must have created per-link GE state"
        );
        // Park some unrelated state so we can check the reset is scoped.
        m.ge.insert(link_key(AP, C2), true);

        m.place_station(C1, 5.0, 0.0);
        assert!(
            m.ge.keys().all(|&(a, b)| a != C1.0 && b != C1.0),
            "a move must clear every link involving the moved station"
        );
        assert_eq!(
            m.ge.get(&link_key(AP, C2)),
            Some(&true),
            "links not involving the moved station keep their state"
        );
    }

    #[test]
    fn non_interfering_domains_do_not_collide_or_hear_each_other() {
        let s = [StationId(0), StationId(1), StationId(2), StationId(3)];
        let mk = |graph| {
            Medium::with_domains(s.to_vec(), vec![0, 0, 1, 1], graph, LossModel::Ideal, None)
        };
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_micros(244);

        // No edge between the domains: concurrent transmissions are
        // clean, carrier sense is scoped, and receptions stay local.
        let mut m = mk(InterferenceGraph::new(2, &[]));
        let a = m.begin_tx(meta(s[0], s[1], 1), t0);
        assert!(m.busy_for(s[1]));
        assert!(
            !m.busy_for(s[2]),
            "an isolated domain must not sense the other cell's carrier"
        );
        let b = m.begin_tx(meta(s[2], s[3], 1), t0);
        let out_a = m.end_tx(a, t0 + d, &mut rng);
        let out_b = m.end_tx(b, t0 + d, &mut rng);
        assert!(!out_a.collided && !out_b.collided);
        assert_eq!(out_a.receptions.len(), 1);
        assert_eq!(out_a.receptions[0].station, s[1]);
        assert_eq!(out_b.receptions.len(), 1);
        assert_eq!(out_b.receptions[0].station, s[3]);
        assert_eq!(m.collisions(), 0);
        assert_eq!(m.domain_of(s[0]), 0);
        assert_eq!(m.domain_of(s[3]), 1);
        assert_eq!(m.listeners(0), &s[..2]);
        assert_eq!(m.listeners(1), &s[2..]);

        // With the edge, the same overlap corrupts both and everyone
        // hears everyone.
        let mut m = mk(InterferenceGraph::new(2, &[(0, 1)]));
        let a = m.begin_tx(meta(s[0], s[1], 1), t0);
        assert!(m.busy_for(s[2]));
        let b = m.begin_tx(meta(s[2], s[3], 1), t0);
        let out_a = m.end_tx(a, t0 + d, &mut rng);
        let out_b = m.end_tx(b, t0 + d, &mut rng);
        assert!(out_a.collided && out_b.collided);
        assert_eq!(out_a.receptions.len(), 3);
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn degenerate_single_station_world_has_empty_receptions() {
        // `with_capacity(stations.len() - 1)` used to underflow the
        // reception capacity reasoning on worlds this small; the
        // listener-scoped loop must simply produce no receptions.
        let mut m = Medium::new(vec![AP], LossModel::Ideal, None);
        let mut rng = SimRng::new(1);
        let mut pm = meta(AP, C1, 1);
        pm.dst = None; // broadcast into an empty cell
        let id = m.begin_tx(pm, SimTime::ZERO);
        let out = m.end_tx(id, SimTime::ZERO + SimDuration::from_micros(244), &mut rng);
        assert!(!out.collided);
        assert!(out.receptions.is_empty());
    }
}
