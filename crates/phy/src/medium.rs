//! The shared broadcast medium: who is transmitting, who collides, what
//! each receiver decodes.
//!
//! The medium is payload-agnostic — it deals only in [`PpduMeta`]
//! (source, destination, rate, per-MPDU lengths, airtime). The event loop
//! in `hack-core` stores the actual frames keyed by the returned [`TxId`]
//! and calls [`Medium::end_tx`] when the scheduled airtime elapses.
//!
//! ## Collision model
//!
//! Every station is within carrier-sense range of every other (the
//! paper's scenarios are a single 10 m cell with no hidden terminals), so
//! any two transmissions that overlap in time corrupt each other
//! completely — no capture effect, no spatial reuse. This is the
//! conservative model; it is what makes vanilla TCP's ACK/data collisions
//! visible, the effect TCP/HACK exploits (§4.2, Table 1).
//!
//! ## Loss model
//!
//! For non-collided PPDUs, the preamble may be missed (SNR mode only) and
//! then each MPDU inside the aggregate is lost independently per
//! [`LossModel::mpdu_loss_prob`], matching per-MPDU CRCs in 802.11n.

use hack_sim::{SimRng, SimTime};
use hack_trace::{Event, TraceHandle};

use crate::channel::Channel;
use crate::error::LossModel;
use crate::rates::PhyRate;
use crate::StationId;
use hack_sim::SimDuration;

/// Identifies one in-flight transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

/// Payload-agnostic description of a PPDU on the air.
#[derive(Debug, Clone)]
pub struct PpduMeta {
    /// Transmitting station.
    pub src: StationId,
    /// Intended receiver (`None` = broadcast; every station decodes).
    pub dst: Option<StationId>,
    /// Data rate of the PSDU.
    pub rate: PhyRate,
    /// Length in bytes of each MPDU in the (possibly singleton) aggregate.
    pub mpdu_lens: Vec<u32>,
    /// Whether this PPDU is a control response (ACK / Block ACK / BAR).
    /// The fixed-loss model exempts control frames: measured
    /// "packet loss rates" (the paper's 12 % / 2 %) describe data
    /// frames, and short basic-rate control frames are far more robust.
    /// The SNR model still applies to them (at their own rate).
    pub control: bool,
    /// Total airtime including preamble.
    pub duration: SimDuration,
}

/// What one station heard of one PPDU.
#[derive(Debug, Clone)]
pub struct Reception {
    /// The listening station.
    pub station: StationId,
    /// Whether the preamble was detected and the PPDU did not collide.
    /// When false, the station saw only energy (it still defers).
    pub detected: bool,
    /// Per-MPDU decode results (empty when `detected` is false).
    pub mpdu_ok: Vec<bool>,
    /// Link SNR in dB (`f64::INFINITY` when no channel model is active).
    pub snr_db: f64,
}

/// The result of a completed transmission.
#[derive(Debug, Clone)]
pub struct TxOutcome {
    /// The transmission's metadata, returned to the caller.
    pub meta: PpduMeta,
    /// Whether another transmission overlapped this one.
    pub collided: bool,
    /// One entry per station other than the source.
    pub receptions: Vec<Reception>,
}

#[derive(Debug)]
struct ActiveTx {
    id: TxId,
    meta: PpduMeta,
    start: SimTime,
    end: SimTime,
    collided: bool,
}

/// The broadcast medium.
#[derive(Debug)]
pub struct Medium {
    stations: Vec<StationId>,
    loss: LossModel,
    channel: Option<Channel>,
    active: Vec<ActiveTx>,
    next_id: u64,
    /// Number of transmissions that ended collided.
    collisions: u64,
    /// Total transmissions completed.
    completed: u64,
    trace: TraceHandle,
}

impl Medium {
    /// Create a medium over the given stations with a loss model and an
    /// optional propagation channel (required for [`LossModel::Snr`]).
    ///
    /// # Panics
    /// Panics if `loss` is SNR-driven but no channel is supplied.
    pub fn new(stations: Vec<StationId>, loss: LossModel, channel: Option<Channel>) -> Self {
        if matches!(loss, LossModel::Snr) {
            assert!(
                channel.is_some(),
                "SNR loss model requires a propagation channel"
            );
        }
        Medium {
            stations,
            loss,
            channel,
            active: Vec::new(),
            next_id: 0,
            collisions: 0,
            completed: 0,
            trace: TraceHandle::off(),
        }
    }

    /// Install the structured-event trace handle (off by default).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The stations on this medium.
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// Whether any transmission is currently on the air.
    pub fn busy(&self) -> bool {
        !self.active.is_empty()
    }

    /// Number of concurrent transmissions (>1 implies a collision in
    /// progress).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Completed transmissions so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Completed transmissions that were corrupted by overlap.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Link SNR for `tx → rx` under the configured channel, or +∞ when no
    /// channel is modelled.
    pub fn snr_db(&self, tx: StationId, rx: StationId) -> f64 {
        self.channel
            .as_ref()
            .map_or(f64::INFINITY, |c| c.snr_db(tx, rx))
    }

    /// Begin a transmission at `now`. Any overlap with an in-flight
    /// transmission corrupts both.
    ///
    /// # Panics
    /// Panics if `src` is already transmitting (a MAC bug) or is not a
    /// registered station.
    pub fn begin_tx(&mut self, meta: PpduMeta, now: SimTime) -> TxId {
        assert!(
            self.stations.contains(&meta.src),
            "unknown station {:?}",
            meta.src
        );
        assert!(
            self.active.iter().all(|t| t.meta.src != meta.src),
            "station {:?} started a second concurrent transmission",
            meta.src
        );
        let id = TxId(self.next_id);
        self.next_id += 1;
        hack_trace::trace_ev!(
            self.trace,
            now.as_nanos(),
            meta.src.0,
            Event::PhyTxStart {
                tx: id.0,
                dst: meta.dst.map_or(u32::MAX, |d| d.0),
                mpdus: meta.mpdu_lens.len() as u32,
            }
        );
        let collided = !self.active.is_empty();
        if collided {
            for t in &mut self.active {
                t.collided = true;
            }
        }
        self.active.push(ActiveTx {
            id,
            end: now + meta.duration,
            meta,
            start: now,
            collided,
        });
        id
    }

    /// Complete transmission `id` at `now` (which must equal its scheduled
    /// end) and compute what every other station received.
    ///
    /// # Panics
    /// Panics if `id` is unknown or `now` differs from the scheduled end.
    pub fn end_tx(&mut self, id: TxId, now: SimTime, rng: &mut SimRng) -> TxOutcome {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == id)
            .expect("end_tx for unknown or already-ended transmission");
        let tx = self.active.swap_remove(idx);
        assert_eq!(tx.end, now, "end_tx at wrong time");
        debug_assert!(tx.start <= now);
        self.completed += 1;
        if tx.collided {
            self.collisions += 1;
        }

        let receptions: Vec<Reception> = self
            .stations
            .iter()
            .filter(|&&s| s != tx.meta.src)
            .map(|&station| self.receive_at(station, &tx, rng))
            .collect();

        if self.trace.enabled() {
            self.trace_tx_outcome(&tx, &receptions, now);
        }

        TxOutcome {
            collided: tx.collided,
            meta: tx.meta,
            receptions,
        }
    }

    /// Emit the PHY trace events describing one completed transmission,
    /// judged at the intended receiver (or across every listener for
    /// broadcast PPDUs).
    fn trace_tx_outcome(&self, tx: &ActiveTx, receptions: &[Reception], now: SimTime) {
        let t = now.as_nanos();
        let src = tx.meta.src.0;
        if tx.collided {
            self.trace.emit(t, src, Event::PhyCollision { tx: tx.id.0 });
        }
        let judged: Vec<&Reception> = receptions
            .iter()
            .filter(|r| tx.meta.dst.is_none_or(|d| d == r.station))
            .collect();
        let mut delivered = 0u32;
        for r in &judged {
            if !r.detected {
                if !tx.collided {
                    self.trace
                        .emit(t, r.station.0, Event::PhyPreambleMiss { tx: tx.id.0 });
                }
                continue;
            }
            for (i, &ok) in r.mpdu_ok.iter().enumerate() {
                if ok {
                    delivered += 1;
                } else {
                    self.trace.emit(
                        t,
                        r.station.0,
                        Event::PhyPerDrop {
                            tx: tx.id.0,
                            mpdu: i as u32,
                        },
                    );
                }
            }
        }
        let offered = (judged.len() * tx.meta.mpdu_lens.len()) as u32;
        self.trace.emit(
            t,
            src,
            Event::PhyTxEnd {
                tx: tx.id.0,
                delivered,
                lost: offered.saturating_sub(delivered),
            },
        );
    }

    fn receive_at(&self, station: StationId, tx: &ActiveTx, rng: &mut SimRng) -> Reception {
        let snr_db = self.snr_db(tx.meta.src, station);
        if tx.collided {
            return Reception {
                station,
                detected: false,
                mpdu_ok: Vec::new(),
                snr_db,
            };
        }
        if rng.chance(self.loss.preamble_loss_prob(snr_db)) {
            return Reception {
                station,
                detected: false,
                mpdu_ok: Vec::new(),
                snr_db,
            };
        }
        let exempt = tx.meta.control && matches!(self.loss, LossModel::FixedPer(_));
        let mpdu_ok = tx
            .meta
            .mpdu_lens
            .iter()
            .map(|&len| {
                if exempt {
                    return true;
                }
                let p = self
                    .loss
                    .mpdu_loss_prob(tx.meta.src, station, tx.meta.rate, len, snr_db);
                !rng.chance(p)
            })
            .collect();
        Reception {
            station,
            detected: true,
            mpdu_ok,
            snr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_sim::SimDuration;

    const AP: StationId = StationId(0);
    const C1: StationId = StationId(1);
    const C2: StationId = StationId(2);

    fn meta(src: StationId, dst: StationId, n_mpdus: usize) -> PpduMeta {
        PpduMeta {
            src,
            dst: Some(dst),
            rate: PhyRate::dot11a(54),
            mpdu_lens: vec![1500; n_mpdus],
            control: false,
            duration: SimDuration::from_micros(244),
        }
    }

    fn ideal_medium() -> Medium {
        Medium::new(vec![AP, C1, C2], LossModel::Ideal, None)
    }

    #[test]
    fn clean_tx_delivers_to_all_listeners() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let id = m.begin_tx(meta(AP, C1, 3), t0);
        assert!(m.busy());
        let out = m.end_tx(id, t0 + SimDuration::from_micros(244), &mut rng);
        assert!(!m.busy());
        assert!(!out.collided);
        assert_eq!(out.receptions.len(), 2); // C1 and C2, not AP
        for r in &out.receptions {
            assert!(r.detected);
            assert_eq!(r.mpdu_ok, vec![true, true, true]);
        }
        assert_eq!(m.completed(), 1);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn overlapping_txs_both_collide() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let a = m.begin_tx(meta(AP, C1, 1), t0);
        // C2 starts while AP is still on the air.
        let later = t0 + SimDuration::from_micros(100);
        let b = m.begin_tx(meta(C2, AP, 1), later);
        assert_eq!(m.active_count(), 2);

        let out_a = m.end_tx(a, t0 + SimDuration::from_micros(244), &mut rng);
        assert!(out_a.collided);
        assert!(out_a.receptions.iter().all(|r| !r.detected));

        let out_b = m.end_tx(b, later + SimDuration::from_micros(244), &mut rng);
        assert!(out_b.collided);
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn back_to_back_txs_do_not_collide() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_micros(244);
        let a = m.begin_tx(meta(AP, C1, 1), t0);
        let out = m.end_tx(a, t0 + d, &mut rng);
        assert!(!out.collided);
        // Next transmission starts exactly when the first ended: clean.
        let b = m.begin_tx(meta(C1, AP, 1), t0 + d);
        let out = m.end_tx(b, t0 + d + d, &mut rng);
        assert!(!out.collided);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    #[should_panic(expected = "second concurrent transmission")]
    fn double_tx_from_same_station_panics() {
        let mut m = ideal_medium();
        let t0 = SimTime::ZERO;
        m.begin_tx(meta(AP, C1, 1), t0);
        m.begin_tx(meta(AP, C2, 1), t0);
    }

    #[test]
    fn fixed_per_loss_applies_per_mpdu() {
        let loss = LossModel::fixed([(C1, 0.5)]);
        let mut m = Medium::new(vec![AP, C1], loss, None);
        let mut rng = SimRng::new(7);
        let mut lost = 0u32;
        let mut total = 0u32;
        let d = SimDuration::from_micros(244);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let id = m.begin_tx(meta(AP, C1, 8), now);
            now += d;
            let out = m.end_tx(id, now, &mut rng);
            let r = &out.receptions[0];
            assert!(r.detected, "fixed-loss mode never loses preambles");
            for &ok in &r.mpdu_ok {
                total += 1;
                if !ok {
                    lost += 1;
                }
            }
            now += SimDuration::from_micros(50);
        }
        let frac = f64::from(lost) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.05, "loss fraction {frac}");
    }

    #[test]
    fn snr_mode_needs_channel() {
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        let m = Medium::new(vec![AP, C1], LossModel::Snr, Some(ch));
        assert!(m.snr_db(AP, C1) > 24.0);
    }

    #[test]
    #[should_panic(expected = "requires a propagation channel")]
    fn snr_mode_without_channel_panics() {
        let _ = Medium::new(vec![AP, C1], LossModel::Snr, None);
    }

    #[test]
    fn snr_mode_close_link_is_clean_far_link_is_dead() {
        let mut ch = Channel::indoor();
        ch.place(AP, 0.0, 0.0);
        ch.place(C1, 2.0, 0.0);
        // Far beyond any 802.11a sensitivity.
        ch.place(C2, 2000.0, 0.0);
        let mut m = Medium::new(vec![AP, C1, C2], LossModel::Snr, Some(ch));
        let mut rng = SimRng::new(5);
        let mut now = SimTime::ZERO;
        let d = SimDuration::from_micros(244);
        let mut c1_ok = 0;
        let mut c2_ok = 0;
        for _ in 0..100 {
            let id = m.begin_tx(meta(AP, C1, 1), now);
            now += d;
            let out = m.end_tx(id, now, &mut rng);
            for r in &out.receptions {
                let ok = r.detected && r.mpdu_ok.iter().all(|&b| b);
                if r.station == C1 && ok {
                    c1_ok += 1;
                }
                if r.station == C2 && ok {
                    c2_ok += 1;
                }
            }
            now += SimDuration::from_micros(50);
        }
        assert!(c1_ok >= 99, "close link should be clean, got {c1_ok}/100");
        assert_eq!(c2_ok, 0, "2 km link must be dead");
    }

    #[test]
    #[should_panic(expected = "end_tx at wrong time")]
    fn end_tx_at_wrong_time_panics() {
        let mut m = ideal_medium();
        let mut rng = SimRng::new(1);
        let id = m.begin_tx(meta(AP, C1, 1), SimTime::ZERO);
        let _ = m.end_tx(id, SimTime::from_micros(1), &mut rng);
    }
}
