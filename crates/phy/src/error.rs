//! Frame-error models: how MPDUs get lost.
//!
//! Three regimes, matching the paper's three experimental setups:
//!
//! * [`LossModel::Ideal`] — lossless links (the Figure 1 analysis and the
//!   baseline Figure 10 simulations; collisions are still modelled by the
//!   medium).
//! * [`LossModel::FixedPer`] — a fixed per-station packet-loss rate. Used
//!   to emulate the SoRa testbed, where client 1 observes a higher loss
//!   rate than client 2, and for the §4.2 cross-validation runs (12 % /
//!   2 % loss).
//! * [`LossModel::Snr`] — SNR-driven loss with a per-rate sensitivity
//!   cliff, used for the Figure 11 distance sweep. The per-rate SNR
//!   requirement comes from [`PhyRate::min_snr_db`]; a logistic roll-off
//!   converts SNR margin to a reference-length error rate which is then
//!   scaled by frame length.
//!
//! **Substitution note (DESIGN.md §1):** the paper's ns-3 runs use ns-3's
//! NIST BER tables. Our logistic-cliff model preserves the property the
//! evaluation depends on — each rate works above its sensitivity and
//! fails quickly below it, longer frames fail first — without importing
//! the tables.

use std::collections::HashMap;

use crate::rates::PhyRate;
use crate::StationId;

/// Reference frame length (bytes) at which the logistic SNR→PER curve is
/// calibrated.
const REF_LEN_BYTES: f64 = 1000.0;

/// Logistic slope: ~1.8/dB gives PER ≈ 0.5 % at +3 dB margin and ≈ 99.5 %
/// at −3 dB for a 1000-byte frame.
const LOGISTIC_SLOPE: f64 = 1.8;

/// How MPDUs are lost on the air, beyond collisions.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No stochastic loss at all.
    Ideal,
    /// Fixed per-station MPDU loss probability; the loss of a link is the
    /// larger of its two endpoints' rates (a station with a bad radio
    /// loses frames it sends and frames it receives). Stations absent
    /// from the map are lossless.
    FixedPer(HashMap<StationId, f64>),
    /// SNR-driven loss; requires the medium to know an SNR per link.
    Snr,
}

impl LossModel {
    /// A fixed-loss model from `(station, per)` pairs.
    pub fn fixed<I: IntoIterator<Item = (StationId, f64)>>(pairs: I) -> Self {
        LossModel::FixedPer(pairs.into_iter().collect())
    }

    /// Probability that one MPDU of `len_bytes` is lost on the `tx → rx`
    /// link at `snr_db` (ignored except in SNR mode).
    pub fn mpdu_loss_prob(
        &self,
        tx: StationId,
        rx: StationId,
        rate: PhyRate,
        len_bytes: u32,
        snr_db: f64,
    ) -> f64 {
        match self {
            LossModel::Ideal => 0.0,
            LossModel::FixedPer(map) => {
                let a = map.get(&tx).copied().unwrap_or(0.0);
                let b = map.get(&rx).copied().unwrap_or(0.0);
                a.max(b)
            }
            LossModel::Snr => snr_per(rate, len_bytes, snr_db),
        }
    }

    /// Probability that the PPDU preamble itself is missed (the whole
    /// frame, including any aggregation, is then lost). Preambles are
    /// modulated at the most robust rate, so only deeply negative SNR
    /// kills them.
    pub fn preamble_loss_prob(&self, snr_db: f64) -> f64 {
        match self {
            LossModel::Ideal | LossModel::FixedPer(_) => 0.0,
            LossModel::Snr => preamble_miss_prob(snr_db),
        }
    }
}

/// PER for one MPDU from the logistic sensitivity cliff, length-scaled.
fn snr_per(rate: PhyRate, len_bytes: u32, snr_db: f64) -> f64 {
    let margin = snr_db - rate.min_snr_db();
    let per_ref = 1.0 / (1.0 + (LOGISTIC_SLOPE * margin).exp());
    // Independent-bit scaling: PER(L) = 1 − (1 − PER_ref)^(L/L_ref).
    let scale = f64::from(len_bytes.max(1)) / REF_LEN_BYTES;
    1.0 - (1.0 - per_ref).powf(scale)
}

/// Preamble miss probability: detection is reliable above ~2 dB SNR and
/// collapses below ~−1 dB.
fn preamble_miss_prob(snr_db: f64) -> f64 {
    1.0 / (1.0 + (2.5 * (snr_db - 0.5)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    const AP: StationId = StationId(0);
    const C1: StationId = StationId(1);
    const C2: StationId = StationId(2);

    #[test]
    fn ideal_never_loses() {
        let m = LossModel::Ideal;
        assert_eq!(m.mpdu_loss_prob(AP, C1, PhyRate::ht(150), 1500, -50.0), 0.0);
        assert_eq!(m.preamble_loss_prob(-50.0), 0.0);
    }

    #[test]
    fn fixed_per_uses_worse_endpoint() {
        let m = LossModel::fixed([(C1, 0.12), (C2, 0.02)]);
        let r = PhyRate::dot11a(54);
        // AP→C1 and C1→AP both see client 1's 12 %.
        assert_eq!(m.mpdu_loss_prob(AP, C1, r, 1500, 30.0), 0.12);
        assert_eq!(m.mpdu_loss_prob(C1, AP, r, 1500, 30.0), 0.12);
        assert_eq!(m.mpdu_loss_prob(AP, C2, r, 1500, 30.0), 0.02);
        // A client-to-client link takes the worse of the two.
        assert_eq!(m.mpdu_loss_prob(C1, C2, r, 1500, 30.0), 0.12);
    }

    #[test]
    fn snr_cliff_brackets_min_snr() {
        let m = LossModel::Snr;
        let r = PhyRate::ht(150);
        let at = |snr: f64| m.mpdu_loss_prob(AP, C1, r, 1000, snr);
        assert!(at(r.min_snr_db() + 6.0) < 0.01);
        assert!(at(r.min_snr_db() - 6.0) > 0.99);
        let mid = at(r.min_snr_db());
        assert!(
            (mid - 0.5).abs() < 0.05,
            "PER at threshold ≈ 0.5, got {mid}"
        );
    }

    #[test]
    fn snr_per_monotone_in_snr() {
        let m = LossModel::Snr;
        let r = PhyRate::dot11a(54);
        let mut last = 1.1;
        for snr in (0..40).map(f64::from) {
            let p = m.mpdu_loss_prob(AP, C1, r, 1500, snr);
            assert!(p <= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn longer_frames_fail_more() {
        let m = LossModel::Snr;
        let r = PhyRate::ht(90);
        let snr = r.min_snr_db() + 2.0;
        let short = m.mpdu_loss_prob(AP, C1, r, 40, snr);
        let long = m.mpdu_loss_prob(AP, C1, r, 1500, snr);
        assert!(long > short);
    }

    #[test]
    fn robust_rates_survive_lower_snr() {
        let m = LossModel::Snr;
        let snr = 10.0;
        let slow = m.mpdu_loss_prob(AP, C1, PhyRate::ht(15), 1500, snr);
        let fast = m.mpdu_loss_prob(AP, C1, PhyRate::ht(150), 1500, snr);
        assert!(slow < 0.05);
        assert!(fast > 0.95);
    }

    #[test]
    fn preamble_robust_at_positive_snr() {
        let m = LossModel::Snr;
        assert!(m.preamble_loss_prob(5.0) < 0.01);
        assert!(m.preamble_loss_prob(-5.0) > 0.99);
    }
}
