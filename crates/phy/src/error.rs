//! Frame-error models: how MPDUs get lost.
//!
//! Four regimes, matching the paper's experimental setups plus the
//! fault-injection work the §4.2 robustness claims lean on:
//!
//! * [`LossModel::Ideal`] — lossless links (the Figure 1 analysis and the
//!   baseline Figure 10 simulations; collisions are still modelled by the
//!   medium).
//! * [`LossModel::FixedPer`] — a fixed per-station packet-loss rate. Used
//!   to emulate the SoRa testbed, where client 1 observes a higher loss
//!   rate than client 2, and for the §4.2 cross-validation runs (12 % /
//!   2 % loss).
//! * [`LossModel::Burst`] — a Gilbert–Elliott two-state Markov channel:
//!   each link flips between a *good* and a *bad* (fading) state with
//!   per-state error rates, producing the bursty loss real 802.11 links
//!   exhibit. The per-link state lives in the [`crate::Medium`] (it must
//!   mutate per MPDU) and is driven by the simulation's deterministic
//!   RNG; [`GeParams`] holds the transition and error probabilities.
//! * [`LossModel::Snr`] — SNR-driven loss with a per-rate sensitivity
//!   cliff, used for the Figure 11 distance sweep. The per-rate SNR
//!   requirement comes from [`PhyRate::min_snr_db`]; a logistic roll-off
//!   converts SNR margin to a reference-length error rate which is then
//!   scaled by frame length.
//!
//! **Substitution note (DESIGN.md §1):** the paper's ns-3 runs use ns-3's
//! NIST BER tables. Our logistic-cliff model preserves the property the
//! evaluation depends on — each rate works above its sensitivity and
//! fails quickly below it, longer frames fail first — without importing
//! the tables. The Gilbert–Elliott model likewise substitutes for the
//! fading the SoRa office measurements bake into their aggregate 12 %/2 %
//! rates: [`GeParams::bursty`] maps a mean loss rate and mean burst
//! length onto the two-state chain so sweeps can compare bursty and
//! i.i.d. loss at identical average rates.

use std::collections::HashMap;

use hack_sim::SimRng;

use crate::rates::PhyRate;
use crate::StationId;

/// Reference frame length (bytes) at which the logistic SNR→PER curve is
/// calibrated.
const REF_LEN_BYTES: f64 = 1000.0;

/// Logistic slope: ~1.8/dB gives PER ≈ 0.5 % at +3 dB margin and ≈ 99.5 %
/// at −3 dB for a 1000-byte frame.
const LOGISTIC_SLOPE: f64 = 1.8;

/// Gilbert–Elliott two-state channel parameters.
///
/// Each link is a two-state Markov chain stepped once per MPDU: in the
/// *good* state MPDUs are lost with probability `per_good`, in the *bad*
/// (fading) state with `per_bad`; after each MPDU the chain transitions
/// good→bad with `p_enter_bad` and bad→good with `p_exit_bad`. The mean
/// burst length (MPDUs spent in the bad state per visit) is
/// `1 / p_exit_bad`, and the stationary bad-state probability is
/// `p_enter_bad / (p_enter_bad + p_exit_bad)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// P(good → bad) after one MPDU.
    pub p_enter_bad: f64,
    /// P(bad → good) after one MPDU.
    pub p_exit_bad: f64,
    /// MPDU loss probability while in the good state.
    pub per_good: f64,
    /// MPDU loss probability while in the bad state.
    pub per_bad: f64,
}

impl GeParams {
    /// The "simple Gilbert" parameterization used by the loss sweeps:
    /// lossless good state, always-lossy bad state, with the chain tuned
    /// so the stationary loss rate is `mean_loss` and the mean burst
    /// length is `mean_burst_len` MPDUs. This is how the paper's
    /// aggregate loss regimes (e.g. the §4.2 12 %/2 % rates) map onto a
    /// bursty channel for apples-to-apples burst-vs-i.i.d. comparisons.
    ///
    /// # Panics
    /// Panics unless `0 ≤ mean_loss < 1` and `mean_burst_len ≥ 1`.
    pub fn bursty(mean_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean loss must be in [0, 1)"
        );
        assert!(mean_burst_len >= 1.0, "burst length is at least one MPDU");
        let p_exit_bad = 1.0 / mean_burst_len;
        // Stationary π_bad = mean_loss ⇒ p_enter = π·p_exit / (1 − π).
        let p_enter_bad = (mean_loss * p_exit_bad / (1.0 - mean_loss)).min(1.0);
        GeParams {
            p_enter_bad,
            p_exit_bad,
            per_good: 0.0,
            per_bad: 1.0,
        }
    }

    /// Stationary (long-run average) MPDU loss probability.
    pub fn expected_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            return self.per_good;
        }
        let pi_bad = self.p_enter_bad / denom;
        pi_bad * self.per_bad + (1.0 - pi_bad) * self.per_good
    }

    /// One chain step for a link: returns whether this MPDU is lost and
    /// updates `bad` (the link's state) for the next MPDU. The loss draw
    /// uses the *current* state; the transition draw follows it, so both
    /// draws happen exactly once per MPDU in a fixed order (the medium's
    /// determinism contract).
    pub fn step(&self, bad: &mut bool, rng: &mut SimRng) -> bool {
        let per = if *bad { self.per_bad } else { self.per_good };
        let lost = rng.chance(per);
        let flip = if *bad {
            rng.chance(self.p_exit_bad)
        } else {
            rng.chance(self.p_enter_bad)
        };
        if flip {
            *bad = !*bad;
        }
        lost
    }
}

/// How MPDUs are lost on the air, beyond collisions.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No stochastic loss at all.
    Ideal,
    /// Fixed per-station MPDU loss probability; endpoint rates compose
    /// independently — a link loses an MPDU when *either* radio fails it
    /// (a station with a bad radio loses frames it sends and frames it
    /// receives), so the link rate is `1 − (1−a)(1−b)`. Stations absent
    /// from the map are lossless.
    FixedPer(HashMap<StationId, f64>),
    /// Gilbert–Elliott bursty loss; the per-link chain state lives in
    /// the medium. [`LossModel::mpdu_loss_prob`] reports the stationary
    /// average (the i.i.d.-equivalent rate) for callers without state.
    Burst(GeParams),
    /// SNR-driven loss; requires the medium to know an SNR per link.
    Snr,
}

impl LossModel {
    /// A fixed-loss model from `(station, per)` pairs.
    pub fn fixed<I: IntoIterator<Item = (StationId, f64)>>(pairs: I) -> Self {
        LossModel::FixedPer(pairs.into_iter().collect())
    }

    /// Probability that one MPDU of `len_bytes` is lost on the `tx → rx`
    /// link at `snr_db` (ignored except in SNR mode).
    pub fn mpdu_loss_prob(
        &self,
        tx: StationId,
        rx: StationId,
        rate: PhyRate,
        len_bytes: u32,
        snr_db: f64,
    ) -> f64 {
        match self {
            LossModel::Ideal => 0.0,
            LossModel::FixedPer(map) => {
                let a = map.get(&tx).copied().unwrap_or(0.0);
                let b = map.get(&rx).copied().unwrap_or(0.0);
                // Independent endpoint failures: the MPDU survives only
                // if both radios handle it.
                1.0 - (1.0 - a) * (1.0 - b)
            }
            LossModel::Burst(ge) => ge.expected_loss(),
            LossModel::Snr => snr_per(rate, len_bytes, snr_db),
        }
    }

    /// Probability that the PPDU preamble itself is missed (the whole
    /// frame, including any aggregation, is then lost). Preambles are
    /// modulated at the most robust rate, so only deeply negative SNR
    /// kills them.
    pub fn preamble_loss_prob(&self, snr_db: f64) -> f64 {
        match self {
            LossModel::Ideal | LossModel::FixedPer(_) | LossModel::Burst(_) => 0.0,
            LossModel::Snr => preamble_miss_prob(snr_db),
        }
    }
}

/// PER for one MPDU from the logistic sensitivity cliff, length-scaled.
fn snr_per(rate: PhyRate, len_bytes: u32, snr_db: f64) -> f64 {
    let margin = snr_db - rate.min_snr_db();
    let per_ref = 1.0 / (1.0 + (LOGISTIC_SLOPE * margin).exp());
    // Independent-bit scaling: PER(L) = 1 − (1 − PER_ref)^(L/L_ref).
    let scale = f64::from(len_bytes.max(1)) / REF_LEN_BYTES;
    1.0 - (1.0 - per_ref).powf(scale)
}

/// Preamble miss probability: detection is reliable above ~2 dB SNR and
/// collapses below ~−1 dB.
fn preamble_miss_prob(snr_db: f64) -> f64 {
    1.0 / (1.0 + (2.5 * (snr_db - 0.5)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    const AP: StationId = StationId(0);
    const C1: StationId = StationId(1);
    const C2: StationId = StationId(2);

    #[test]
    fn ideal_never_loses() {
        let m = LossModel::Ideal;
        assert_eq!(m.mpdu_loss_prob(AP, C1, PhyRate::ht(150), 1500, -50.0), 0.0);
        assert_eq!(m.preamble_loss_prob(-50.0), 0.0);
    }

    #[test]
    fn fixed_per_composes_endpoints_independently() {
        let m = LossModel::fixed([(C1, 0.12), (C2, 0.02)]);
        let r = PhyRate::dot11a(54);
        // AP→C1 and C1→AP both see client 1's 12 % (AP is clean, so the
        // composed rate equals the lossy endpoint's rate exactly). These
        // are the §4.2 cross-validation loss regimes — pinned so the
        // FixedPer semantics can't silently drift.
        assert!((m.mpdu_loss_prob(AP, C1, r, 1500, 30.0) - 0.12).abs() < 1e-12);
        assert!((m.mpdu_loss_prob(C1, AP, r, 1500, 30.0) - 0.12).abs() < 1e-12);
        assert!((m.mpdu_loss_prob(AP, C2, r, 1500, 30.0) - 0.02).abs() < 1e-12);
        // A client-to-client link fails if either radio corrupts the
        // frame: 1 − (1 − 0.12)(1 − 0.02) = 0.1376, not max(a, b).
        let p = m.mpdu_loss_prob(C1, C2, r, 1500, 30.0);
        assert!((p - 0.1376).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn ge_bursty_mapping_matches_targets() {
        // Simple-Gilbert preset: per_good = 0, per_bad = 1, mean burst
        // length 1/p_exit, stationary loss = π_bad.
        let ge = GeParams::bursty(0.12, 8.0);
        assert_eq!(ge.per_good, 0.0);
        assert_eq!(ge.per_bad, 1.0);
        assert!((1.0 / ge.p_exit_bad - 8.0).abs() < 1e-12);
        assert!((ge.expected_loss() - 0.12).abs() < 1e-12);
        let m = LossModel::Burst(ge);
        let r = PhyRate::dot11a(54);
        assert!((m.mpdu_loss_prob(AP, C1, r, 1500, 30.0) - 0.12).abs() < 1e-12);
        assert_eq!(m.preamble_loss_prob(30.0), 0.0);
    }

    #[test]
    fn ge_step_is_bursty_and_hits_mean_loss() {
        let ge = GeParams::bursty(0.10, 6.0);
        let mut rng = SimRng::new(0xBAD_5EED);
        let mut bad = false;
        let n = 200_000usize;
        let mut losses = 0usize;
        let mut runs = 0usize; // number of distinct loss bursts
        let mut prev_lost = false;
        for _ in 0..n {
            let lost = ge.step(&mut bad, &mut rng);
            if lost {
                losses += 1;
                if !prev_lost {
                    runs += 1;
                }
            }
            prev_lost = lost;
        }
        let loss_rate = losses as f64 / n as f64;
        assert!(
            (loss_rate - 0.10).abs() < 0.01,
            "empirical loss {loss_rate} vs target 0.10"
        );
        let mean_burst = losses as f64 / runs as f64;
        assert!(
            (mean_burst - 6.0).abs() < 0.6,
            "mean burst length {mean_burst} vs target 6"
        );
    }

    #[test]
    fn ge_degenerate_params_stay_finite() {
        // Zero target loss: never enters the bad state.
        let ge = GeParams::bursty(0.0, 4.0);
        assert_eq!(ge.p_enter_bad, 0.0);
        assert_eq!(ge.expected_loss(), 0.0);
        let mut rng = SimRng::new(7);
        let mut bad = false;
        for _ in 0..1000 {
            assert!(!ge.step(&mut bad, &mut rng));
        }
        // Both transition probabilities zero: expected_loss falls back
        // to per_good instead of dividing by zero.
        let stuck = GeParams {
            p_enter_bad: 0.0,
            p_exit_bad: 0.0,
            per_good: 0.03,
            per_bad: 1.0,
        };
        assert_eq!(stuck.expected_loss(), 0.03);
    }

    #[test]
    fn snr_cliff_brackets_min_snr() {
        let m = LossModel::Snr;
        let r = PhyRate::ht(150);
        let at = |snr: f64| m.mpdu_loss_prob(AP, C1, r, 1000, snr);
        assert!(at(r.min_snr_db() + 6.0) < 0.01);
        assert!(at(r.min_snr_db() - 6.0) > 0.99);
        let mid = at(r.min_snr_db());
        assert!(
            (mid - 0.5).abs() < 0.05,
            "PER at threshold ≈ 0.5, got {mid}"
        );
    }

    #[test]
    fn snr_per_monotone_in_snr() {
        let m = LossModel::Snr;
        let r = PhyRate::dot11a(54);
        let mut last = 1.1;
        for snr in (0..40).map(f64::from) {
            let p = m.mpdu_loss_prob(AP, C1, r, 1500, snr);
            assert!(p <= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn longer_frames_fail_more() {
        let m = LossModel::Snr;
        let r = PhyRate::ht(90);
        let snr = r.min_snr_db() + 2.0;
        let short = m.mpdu_loss_prob(AP, C1, r, 40, snr);
        let long = m.mpdu_loss_prob(AP, C1, r, 1500, snr);
        assert!(long > short);
    }

    #[test]
    fn robust_rates_survive_lower_snr() {
        let m = LossModel::Snr;
        let snr = 10.0;
        let slow = m.mpdu_loss_prob(AP, C1, PhyRate::ht(15), 1500, snr);
        let fast = m.mpdu_loss_prob(AP, C1, PhyRate::ht(150), 1500, snr);
        assert!(slow < 0.05);
        assert!(fast > 0.95);
    }

    #[test]
    fn preamble_robust_at_positive_snr() {
        let m = LossModel::Snr;
        assert!(m.preamble_loss_prob(5.0) < 0.01);
        assert!(m.preamble_loss_prob(-5.0) > 0.99);
    }
}
