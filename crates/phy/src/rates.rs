//! Physical-layer bit-rates for 802.11a (legacy OFDM) and 802.11n (HT).
//!
//! The paper's experiments use:
//!
//! * the full **802.11a** rate set 6–54 Mbps (Figure 1(a), the SoRa
//!   testbed at 54 Mbps),
//! * the **802.11n HT** rates achievable with a 40 MHz channel, 400 ns
//!   short guard interval and one spatial stream — MCS 0–7 ⇒
//!   15/30/45/60/90/120/135/150 Mbps (Figures 10–12), extended up to
//!   600 Mbps with four spatial streams for Figure 1(b),
//! * LL ACKs and Block ACKs at the **basic rates** 6/12/24 Mbps, selected
//!   per the 802.11 rule: the highest basic rate not exceeding the data
//!   frame's rate.
//!
//! OFDM symbol arithmetic is exact in integers: a legacy symbol is 4 µs,
//! an HT short-GI symbol is 3.6 µs, and every supported rate yields an
//! integral number of data bits per symbol.

use std::fmt;

use hack_sim::SimDuration;

/// Which PHY encoding a transmission uses. Determines preamble length and
/// symbol duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyKind {
    /// Legacy 802.11a OFDM: 20 µs preamble+SIGNAL, 4 µs symbols.
    LegacyOfdm,
    /// 802.11n HT mixed format, 40 MHz, short GI: 36 µs preamble,
    /// 3.6 µs symbols.
    HtMixed,
}

impl PhyKind {
    /// PLCP preamble + header airtime before the first data symbol.
    pub fn preamble(self) -> SimDuration {
        match self {
            // 16 µs preamble + 4 µs SIGNAL field.
            PhyKind::LegacyOfdm => SimDuration::from_micros(20),
            // L-STF+L-LTF+L-SIG (20) + HT-SIG (8) + HT-STF (4) + HT-LTF (4).
            PhyKind::HtMixed => SimDuration::from_micros(36),
        }
    }

    /// OFDM symbol duration.
    pub fn symbol(self) -> SimDuration {
        match self {
            PhyKind::LegacyOfdm => SimDuration::from_nanos(4_000),
            PhyKind::HtMixed => SimDuration::from_nanos(3_600),
        }
    }

    /// SERVICE + tail bits added around the PSDU by the PHY.
    pub fn service_and_tail_bits(self) -> u64 {
        16 + 6
    }
}

/// A physical-layer rate: bits per second plus the encoding it runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhyRate {
    bps: u64,
    kind: PhyKind,
}

/// All 802.11a rates, ascending (Mbps: 6, 9, 12, 18, 24, 36, 48, 54).
pub const DOT11A_RATES_MBPS: [u64; 8] = [6, 9, 12, 18, 24, 36, 48, 54];

/// The paper's 802.11n HT rate set: MCS 0–7, 40 MHz, short GI, one
/// antenna (Mbps).
pub const DOT11N_HT40_SGI_MBPS: [u64; 8] = [15, 30, 45, 60, 90, 120, 135, 150];

/// OFDM basic rates used for control responses (Mbps).
pub const BASIC_RATES_MBPS: [u64; 3] = [6, 12, 24];

impl PhyRate {
    /// A legacy 802.11a rate in Mbps.
    ///
    /// # Panics
    /// Panics unless `mbps` is one of the eight 802.11a rates.
    pub fn dot11a(mbps: u64) -> Self {
        assert!(
            DOT11A_RATES_MBPS.contains(&mbps),
            "{mbps} Mbps is not an 802.11a rate"
        );
        PhyRate {
            bps: mbps * 1_000_000,
            kind: PhyKind::LegacyOfdm,
        }
    }

    /// An 802.11n HT rate in Mbps (40 MHz / short GI grid).
    ///
    /// Accepts the single-antenna set 15–150 and its multi-stream
    /// multiples up to 600 Mbps (used by the Figure 1(b) analysis).
    ///
    /// # Panics
    /// Panics if `mbps` is not a multiple of one of the single-stream
    /// rates by 1–4 streams, i.e. if it would not give an integral number
    /// of bits per 3.6 µs symbol.
    pub fn ht(mbps: u64) -> Self {
        let valid = (1..=4u64).any(|streams| {
            DOT11N_HT40_SGI_MBPS
                .iter()
                .any(|&base| base * streams == mbps)
        });
        assert!(valid, "{mbps} Mbps is not an HT40/SGI rate (1-4 streams)");
        PhyRate {
            bps: mbps * 1_000_000,
            kind: PhyKind::HtMixed,
        }
    }

    /// The rate in bits per second.
    pub fn bps(self) -> u64 {
        self.bps
    }

    /// The rate in Mbps.
    pub fn mbps(self) -> u64 {
        self.bps / 1_000_000
    }

    /// The PHY encoding.
    pub fn kind(self) -> PhyKind {
        self.kind
    }

    /// Data bits carried by one OFDM symbol at this rate. Exact for every
    /// supported rate.
    pub fn bits_per_symbol(self) -> u64 {
        let sym_ns = self.kind.symbol().as_nanos();
        // bps * symbol_ns / 1e9; exact for all supported combinations.
        let bits = self.bps * sym_ns / 1_000_000_000;
        debug_assert_eq!(
            bits * 1_000_000_000,
            self.bps * sym_ns,
            "non-integral bits per symbol for {self}"
        );
        bits
    }

    /// Airtime of a PPDU whose PSDU is `psdu_bytes` long: preamble plus a
    /// whole number of OFDM symbols covering SERVICE + PSDU + tail bits.
    pub fn ppdu_duration(self, psdu_bytes: u64) -> SimDuration {
        let bits = self.kind.service_and_tail_bits() + 8 * psdu_bytes;
        let symbols = bits.div_ceil(self.bits_per_symbol());
        self.kind.preamble() + self.kind.symbol() * symbols
    }

    /// The basic (control-response) rate matching this data rate: the
    /// highest of 6/12/24 Mbps not exceeding it. Control frames are always
    /// legacy OFDM, even in an HT network.
    pub fn basic_response_rate(self) -> PhyRate {
        let mbps = self.mbps();
        let basic = BASIC_RATES_MBPS
            .iter()
            .rev()
            .copied()
            .find(|&b| b <= mbps)
            .unwrap_or(6);
        PhyRate {
            bps: basic * 1_000_000,
            kind: PhyKind::LegacyOfdm,
        }
    }

    /// Minimum SNR (dB) at which this rate is usable, per the 802.11
    /// receiver-sensitivity ladder. Drives the [`crate::error`] model and
    /// the Figure 11 envelope.
    pub fn min_snr_db(self) -> f64 {
        // Legacy OFDM sensitivities (dB above noise floor), then HT40
        // equivalents per MCS. Values follow the usual minstrel/ns-3
        // ladder; exactness is not required, monotonicity is.
        match (self.kind, self.mbps()) {
            (PhyKind::LegacyOfdm, 6) => 5.0,
            (PhyKind::LegacyOfdm, 9) => 6.0,
            (PhyKind::LegacyOfdm, 12) => 7.0,
            (PhyKind::LegacyOfdm, 18) => 9.0,
            (PhyKind::LegacyOfdm, 24) => 12.0,
            (PhyKind::LegacyOfdm, 36) => 16.0,
            (PhyKind::LegacyOfdm, 48) => 20.0,
            (PhyKind::LegacyOfdm, 54) => 21.0,
            (PhyKind::HtMixed, m) => {
                // Map the single-stream HT40 ladder; multi-stream rates
                // reuse the per-stream requirement of their base MCS.
                let per_stream = (1..=4)
                    .find_map(|s| {
                        let base = m / s;
                        (base * s == m && DOT11N_HT40_SGI_MBPS.contains(&base)).then_some(base)
                    })
                    .expect("validated at construction");
                match per_stream {
                    15 => 5.0,
                    30 => 8.0,
                    45 => 10.0,
                    60 => 13.0,
                    90 => 17.0,
                    120 => 21.0,
                    135 => 22.0,
                    150 => 24.0,
                    _ => unreachable!("validated at construction"),
                }
            }
            _ => unreachable!("validated at construction"),
        }
    }
}

impl fmt::Display for PhyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            PhyKind::LegacyOfdm => "11a",
            PhyKind::HtMixed => "HT",
        };
        write!(f, "{}Mbps/{tag}", self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11a_bits_per_symbol() {
        let expected = [24, 36, 48, 72, 96, 144, 192, 216];
        for (&mbps, &bits) in DOT11A_RATES_MBPS.iter().zip(&expected) {
            assert_eq!(PhyRate::dot11a(mbps).bits_per_symbol(), bits);
        }
    }

    #[test]
    fn ht_bits_per_symbol() {
        let expected = [54, 108, 162, 216, 324, 432, 486, 540];
        for (&mbps, &bits) in DOT11N_HT40_SGI_MBPS.iter().zip(&expected) {
            assert_eq!(PhyRate::ht(mbps).bits_per_symbol(), bits);
        }
        assert_eq!(PhyRate::ht(600).bits_per_symbol(), 2160);
    }

    #[test]
    #[should_panic(expected = "not an 802.11a rate")]
    fn dot11a_rejects_bogus_rate() {
        let _ = PhyRate::dot11a(11);
    }

    #[test]
    #[should_panic(expected = "not an HT40/SGI rate")]
    fn ht_rejects_bogus_rate() {
        let _ = PhyRate::ht(100);
    }

    #[test]
    fn ppdu_duration_known_values() {
        // 1500-byte PSDU at 54 Mbps: (16+12000+6)/216 = 55.66 -> 56 symbols
        // => 20 + 224 = 244 µs.
        assert_eq!(
            PhyRate::dot11a(54).ppdu_duration(1500),
            SimDuration::from_micros(244)
        );
        // ACK (14 bytes) at 24 Mbps: (16+112+6)/96 = 1.39 -> 2 symbols
        // => 20 + 8 = 28 µs.
        assert_eq!(
            PhyRate::dot11a(24).ppdu_duration(14),
            SimDuration::from_micros(28)
        );
        // 1500-byte PSDU at HT 150: (16+12000+6)/540 = 22.26 -> 23 symbols
        // => 36 µs + 23*3.6 = 36 + 82.8 = 118.8 µs.
        assert_eq!(
            PhyRate::ht(150).ppdu_duration(1500),
            SimDuration::from_nanos(118_800)
        );
    }

    #[test]
    fn ppdu_duration_monotone_in_length() {
        let r = PhyRate::ht(150);
        let mut last = SimDuration::ZERO;
        for len in (0..4000).step_by(37) {
            let d = r.ppdu_duration(len);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn basic_response_rate_rule() {
        assert_eq!(PhyRate::dot11a(54).basic_response_rate().mbps(), 24);
        assert_eq!(PhyRate::dot11a(24).basic_response_rate().mbps(), 24);
        assert_eq!(PhyRate::dot11a(18).basic_response_rate().mbps(), 12);
        assert_eq!(PhyRate::dot11a(9).basic_response_rate().mbps(), 6);
        assert_eq!(PhyRate::dot11a(6).basic_response_rate().mbps(), 6);
        // HT 150 answers at 24 Mbps legacy, as in the paper's simulations.
        let resp = PhyRate::ht(150).basic_response_rate();
        assert_eq!(resp.mbps(), 24);
        assert_eq!(resp.kind(), PhyKind::LegacyOfdm);
        // Low HT rates answer at correspondingly low basic rates.
        assert_eq!(PhyRate::ht(15).basic_response_rate().mbps(), 12);
    }

    #[test]
    fn min_snr_monotone_within_family() {
        let mut last = f64::NEG_INFINITY;
        for &m in &DOT11A_RATES_MBPS {
            let s = PhyRate::dot11a(m).min_snr_db();
            assert!(s >= last);
            last = s;
        }
        let mut last = f64::NEG_INFINITY;
        for &m in &DOT11N_HT40_SGI_MBPS {
            let s = PhyRate::ht(m).min_snr_db();
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhyRate::dot11a(54).to_string(), "54Mbps/11a");
        assert_eq!(PhyRate::ht(150).to_string(), "150Mbps/HT");
    }
}
