//! # hack-phy — 802.11a/n physical-layer model
//!
//! Everything below the MAC: bit-rates and airtime arithmetic
//! ([`rates`]), interframe-space/contention parameter sets ([`timing`]),
//! propagation and SNR ([`channel`]), frame-error models ([`error`]),
//! multi-BSS interference domains ([`interference`]), and the shared
//! broadcast medium with its collision model ([`medium`]).
//!
//! The paper evaluates on ns-3's WiFi PHY and on SoRa radios; this crate
//! is the from-scratch substitute (see DESIGN.md §1). It is entirely
//! passive — pure computation plus a [`Medium`] state container — and is
//! driven by `hack-core`'s event loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod interference;
pub mod medium;
pub mod mobility;
pub mod rates;
pub mod timing;

pub use channel::Channel;
pub use error::{GeParams, LossModel};
pub use interference::{BssPlacement, InterferenceConfig, InterferenceGraph};
pub use medium::{CorruptModel, Medium, MpduStatus, PpduMeta, Reception, TxId, TxOutcome};
pub use mobility::{RoamMonitor, RoamTrigger, Trajectory, Waypoint};
pub use rates::{PhyKind, PhyRate, BASIC_RATES_MBPS, DOT11A_RATES_MBPS, DOT11N_HT40_SGI_MBPS};
pub use timing::MacTimings;

/// Identifies one station (AP or client) on the medium. Also used as the
/// MAC address in frames — the simulation has no need for 48-bit
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub u32);

impl std::fmt::Display for StationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sta{}", self.0)
    }
}
