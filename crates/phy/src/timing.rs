//! MAC-layer timing parameter sets for 802.11a DCF and 802.11n EDCA.
//!
//! These numbers drive both the simulator and the analytical model, so
//! they are defined once here. Sanity anchor from the paper's
//! introduction: *"EDCA in 802.11n enforces an average idle period of
//! 110.5 µs before a frame's transmission"* — that is
//! AIFS(BE) = SIFS + 3·slot = 43 µs plus a mean backoff of
//! (CWmin/2)·slot = 7.5·9 = 67.5 µs. A unit test pins this.

use hack_sim::SimDuration;

use crate::rates::PhyKind;

/// Contention and interframe-space parameters for one MAC flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacTimings {
    /// Slot time (9 µs for OFDM PHYs).
    pub slot: SimDuration,
    /// Short interframe space (16 µs).
    pub sifs: SimDuration,
    /// AIFSN: the number of slots added to SIFS before contention.
    /// 2 for classic DCF (giving DIFS), 3 for EDCA best-effort (AIFS).
    pub aifsn: u32,
    /// Minimum contention window (15).
    pub cw_min: u32,
    /// Maximum contention window (1023).
    pub cw_max: u32,
    /// Retry limit before a frame (or A-MPDU recovery) is abandoned.
    pub retry_limit: u32,
    /// TXOP limit: the maximum time one medium acquisition may occupy.
    /// The paper applies the 802.11e 4 ms limit to all transmissions.
    pub txop_limit: SimDuration,
    /// The PHY encoding data frames use (controls preamble/symbol times).
    pub data_phy: PhyKind,
}

impl MacTimings {
    /// 802.11a DCF parameters (DIFS = SIFS + 2·slot = 34 µs).
    pub fn dot11a() -> Self {
        MacTimings {
            slot: SimDuration::from_micros(9),
            sifs: SimDuration::from_micros(16),
            aifsn: 2,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            txop_limit: SimDuration::from_millis(4),
            data_phy: PhyKind::LegacyOfdm,
        }
    }

    /// 802.11n EDCA best-effort parameters (AIFS = SIFS + 3·slot = 43 µs).
    pub fn dot11n() -> Self {
        MacTimings {
            slot: SimDuration::from_micros(9),
            sifs: SimDuration::from_micros(16),
            aifsn: 3,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            txop_limit: SimDuration::from_millis(4),
            data_phy: PhyKind::HtMixed,
        }
    }

    /// The interframe space before contention may begin:
    /// DIFS (802.11a) or AIFS (802.11n BE).
    pub fn aifs(&self) -> SimDuration {
        self.sifs + self.slot * u64::from(self.aifsn)
    }

    /// Mean backoff duration from a fresh contention window:
    /// (CWmin / 2) slots. Used by the analytical model.
    pub fn mean_backoff(&self) -> SimDuration {
        // Mean of uniform [0, cw_min] is cw_min/2 = 7.5 slots; keep exact
        // by halving the nanosecond product.
        SimDuration::from_nanos(self.slot.as_nanos() * u64::from(self.cw_min) / 2)
    }

    /// The contention window after `retries` failed attempts:
    /// CW doubles from CWmin, capped at CWmax.
    pub fn cw_for_retry(&self, retries: u32) -> u32 {
        let mut cw = self.cw_min;
        for _ in 0..retries {
            cw = ((cw + 1) * 2 - 1).min(self.cw_max);
        }
        cw
    }

    /// How long a transmitter waits for the start of an expected response
    /// (ACK/Block ACK) before declaring it lost: SIFS + slot + the legacy
    /// preamble detection time, per the 802.11 ACKTimeout definition.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.slot + PhyKind::LegacyOfdm.preamble()
    }

    /// EIFS-style penalty after a reception error — we use AIFS + the
    /// airtime of an ACK at the lowest basic rate, a simplified EIFS.
    pub fn eifs(&self) -> SimDuration {
        self.aifs() + crate::rates::PhyRate::dot11a(6).ppdu_duration(14) + self.sifs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot11a_difs_is_34us() {
        assert_eq!(MacTimings::dot11a().aifs(), SimDuration::from_micros(34));
    }

    #[test]
    fn dot11n_aifs_is_43us() {
        assert_eq!(MacTimings::dot11n().aifs(), SimDuration::from_micros(43));
    }

    /// The paper's 110.5 µs average idle period before an EDCA
    /// transmission: AIFS (43 µs) + mean backoff (67.5 µs).
    #[test]
    fn paper_anchor_mean_idle_110_5us() {
        let t = MacTimings::dot11n();
        let idle = t.aifs() + t.mean_backoff();
        assert_eq!(idle, SimDuration::from_nanos(110_500));
    }

    #[test]
    fn cw_doubles_and_caps() {
        let t = MacTimings::dot11a();
        assert_eq!(t.cw_for_retry(0), 15);
        assert_eq!(t.cw_for_retry(1), 31);
        assert_eq!(t.cw_for_retry(2), 63);
        assert_eq!(t.cw_for_retry(3), 127);
        assert_eq!(t.cw_for_retry(6), 1023);
        assert_eq!(t.cw_for_retry(10), 1023);
    }

    #[test]
    fn ack_timeout_exceeds_sifs() {
        let t = MacTimings::dot11a();
        assert!(t.ack_timeout() > t.sifs);
        // SIFS 16 + slot 9 + preamble 20 = 45 µs.
        assert_eq!(t.ack_timeout(), SimDuration::from_micros(45));
    }

    #[test]
    fn eifs_exceeds_aifs() {
        let t = MacTimings::dot11n();
        assert!(t.eifs() > t.aifs());
    }
}
