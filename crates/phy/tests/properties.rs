//! Property-based tests for PHY airtime arithmetic and loss models.

use hack_phy::{LossModel, PhyRate, StationId, DOT11A_RATES_MBPS, DOT11N_HT40_SGI_MBPS};
use proptest::prelude::*;

fn any_rate() -> impl Strategy<Value = PhyRate> {
    prop_oneof![
        (0usize..DOT11A_RATES_MBPS.len()).prop_map(|i| PhyRate::dot11a(DOT11A_RATES_MBPS[i])),
        (0usize..DOT11N_HT40_SGI_MBPS.len()).prop_map(|i| PhyRate::ht(DOT11N_HT40_SGI_MBPS[i])),
    ]
}

proptest! {
    /// Airtime grows monotonically with PSDU length at any rate.
    #[test]
    fn duration_monotone(rate in any_rate(), a in 0u64..65_536, b in 0u64..65_536) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rate.ppdu_duration(lo) <= rate.ppdu_duration(hi));
    }

    /// Faster rates never take longer for the same PSDU (within a PHY
    /// family, where preamble and symbol duration are fixed).
    #[test]
    fn faster_is_never_slower_11a(len in 0u64..65_536, i in 0usize..7) {
        let slow = PhyRate::dot11a(DOT11A_RATES_MBPS[i]);
        let fast = PhyRate::dot11a(DOT11A_RATES_MBPS[i + 1]);
        prop_assert!(fast.ppdu_duration(len) <= slow.ppdu_duration(len));
    }

    /// Airtime is at least the ideal serialization time plus preamble.
    #[test]
    fn duration_lower_bound(rate in any_rate(), len in 1u64..65_536) {
        let d = rate.ppdu_duration(len);
        let ideal_ns = (8 * len) * 1_000_000_000 / rate.bps();
        prop_assert!(d.as_nanos() >= rate.kind().preamble().as_nanos() + ideal_ns);
        // …and within one symbol + service/tail of it.
        let slack = rate.kind().symbol().as_nanos()
            + rate.kind().service_and_tail_bits() * 1_000_000_000 / rate.bps()
            + rate.kind().symbol().as_nanos();
        prop_assert!(d.as_nanos() <= rate.kind().preamble().as_nanos() + ideal_ns + slack);
    }

    /// Loss probabilities are always valid probabilities.
    #[test]
    fn loss_prob_in_unit_interval(
        rate in any_rate(),
        len in 1u32..65_536,
        snr in -30.0f64..60.0,
        per in 0.0f64..1.0,
    ) {
        let a = StationId(0);
        let b = StationId(1);
        for model in [LossModel::Ideal, LossModel::fixed([(b, per)]), LossModel::Snr] {
            let p = model.mpdu_loss_prob(a, b, rate, len, snr);
            prop_assert!((0.0..=1.0).contains(&p), "{model:?} gave {p}");
            let q = model.preamble_loss_prob(snr);
            prop_assert!((0.0..=1.0).contains(&q));
        }
    }

    /// In SNR mode, loss is monotone non-increasing in SNR.
    #[test]
    fn snr_loss_monotone(rate in any_rate(), len in 1u32..4096, lo in -20.0f64..40.0, delta in 0.0f64..20.0) {
        let a = StationId(0);
        let b = StationId(1);
        let m = LossModel::Snr;
        let p_lo = m.mpdu_loss_prob(a, b, rate, len, lo);
        let p_hi = m.mpdu_loss_prob(a, b, rate, len, lo + delta);
        prop_assert!(p_hi <= p_lo + 1e-12);
    }

    /// The basic response rate is always a legacy basic rate ≤ data rate
    /// (or the 6 Mbps floor).
    #[test]
    fn basic_rate_rule(rate in any_rate()) {
        let b = rate.basic_response_rate();
        prop_assert!([6, 12, 24].contains(&b.mbps()));
        prop_assert!(b.mbps() <= rate.mbps().max(6));
    }
}
