//! Property-based tests for the simulation kernel's core invariants.

use hack_sim::{
    CalendarQueue, EventQueue, HeapEventQueue, QueueKind, Scheduler, SimDuration, SimRng, SimTime,
    TimerTable,
};
use proptest::prelude::*;

proptest! {
    /// Differential test: the calendar queue and the binary heap pop the
    /// *identical* (time, payload) sequence for any push order —
    /// including same-instant FIFO bursts (the `dup` factor repeats
    /// times so ties are common).
    #[test]
    fn calendar_matches_heap_total_order(
        times in proptest::collection::vec((0u64..200_000, 1usize..5), 1..150),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut idx = 0usize;
        for &(t, dup) in &times {
            for _ in 0..dup {
                cal.push(SimTime::from_nanos(t), idx);
                heap.push(SimTime::from_nanos(t), idx);
                idx += 1;
            }
        }
        loop {
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Same differential test under a scheduler-like workload: pops
    /// interleaved with pushes that are relative to the last popped
    /// time (events never scheduled into the past), crossing many
    /// resize and year boundaries.
    #[test]
    fn calendar_matches_heap_interleaved(
        ops in proptest::collection::vec((0u64..3_000_000, 0u8..4), 1..300),
    ) {
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut now = 0u64;
        for (i, &(delay, pops)) in ops.iter().enumerate() {
            cal.push(SimTime::from_nanos(now + delay), i);
            heap.push(SimTime::from_nanos(now + delay), i);
            for _ in 0..pops {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Events always pop in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Same-time events pop in insertion order (stable FIFO tiebreak).
    #[test]
    fn queue_fifo_on_ties(groups in proptest::collection::vec((0u64..100, 1usize..8), 1..40)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::from_nanos(t), idx);
                idx += 1;
            }
        }
        // Per firing time, payload indices must be ascending *within the
        // set of payloads inserted at that time*.
        let mut by_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        while let Some((t, p)) = q.pop() {
            by_time.entry(t.as_nanos()).or_default().push(p);
        }
        for seq in by_time.values() {
            prop_assert!(seq.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The scheduler clock is monotone non-decreasing over any run.
    #[test]
    fn scheduler_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut s = Scheduler::new();
        for &d in &delays {
            s.schedule_in(SimDuration::from_nanos(d), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = s.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(s.now(), t);
            last = t;
        }
    }

    /// A timer token fires iff it is the most recent arming and was not
    /// cancelled, and at most once.
    #[test]
    fn timer_exactly_once(ops in proptest::collection::vec(0u8..3, 1..100)) {
        let mut table: TimerTable<u8> = TimerTable::new();
        let mut outstanding = Vec::new();
        let mut latest: Option<hack_sim::TimerToken<u8>> = None;
        let mut cancelled = true;
        for op in ops {
            match op {
                0 => {
                    let tok = table.arm(0);
                    outstanding.push(tok);
                    latest = Some(tok);
                    cancelled = false;
                }
                1 => {
                    table.cancel(0);
                    cancelled = true;
                }
                _ => {}
            }
        }
        let mut fired = 0;
        for tok in outstanding {
            if table.fire(tok) {
                fired += 1;
                prop_assert_eq!(Some(tok), latest);
            }
        }
        prop_assert_eq!(fired, u32::from(!cancelled && latest.is_some()));
    }

    /// RNG determinism: identical seeds yield identical streams; forks are
    /// reproducible.
    #[test]
    fn rng_deterministic(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.uniform(1 << 20), b.uniform(1 << 20));
        }
        let mut fa = SimRng::new(seed).fork(salt);
        let mut fb = SimRng::new(seed).fork(salt);
        prop_assert_eq!(fa.uniform(u32::MAX), fb.uniform(u32::MAX));
    }

    /// for_bits never under-estimates: duration * rate >= bits.
    #[test]
    fn for_bits_is_ceiling(bits in 0u64..1_000_000_000, rate in 1u64..1_000_000_000) {
        let d = SimDuration::for_bits(bits, rate);
        // d >= bits/rate seconds  <=>  d_ns * rate >= bits * 1e9
        prop_assert!((d.as_nanos() as u128) * (rate as u128) >= (bits as u128) * 1_000_000_000);
        // And tight: one ns less would be too short (when d > 0).
        if d.as_nanos() > 0 {
            prop_assert!(((d.as_nanos() - 1) as u128) * (rate as u128) < (bits as u128) * 1_000_000_000);
        }
    }
}
