//! Lightweight, zero-dependency event tracing.
//!
//! Experiments run millions of events; tracing must cost nothing when off.
//! [`Tracer`] is a level-filtered sink of preformatted lines — callers
//! guard formatting behind [`Tracer::enabled`] so disabled traces never
//! allocate. The default sink discards; tests install a buffer sink to
//! assert on protocol behaviour.

use std::fmt;

/// Trace verbosity levels, ordered from most to least important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Protocol-visible state transitions (retries exhausted, SYNC set…).
    Info,
    /// Per-frame events (transmissions, ACKs, losses).
    Frame,
    /// Per-event minutiae (backoff slots, timer churn).
    Debug,
}

/// Where trace lines go.
pub trait TraceSink {
    /// Consume one preformatted line.
    fn line(&mut self, level: Level, line: fmt::Arguments<'_>);
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn line(&mut self, _level: Level, _line: fmt::Arguments<'_>) {}
}

/// Collects lines into memory (used by tests).
#[derive(Debug, Default)]
pub struct BufferSink {
    /// Captured lines, in order.
    pub lines: Vec<(Level, String)>,
}

impl TraceSink for BufferSink {
    fn line(&mut self, level: Level, line: fmt::Arguments<'_>) {
        self.lines.push((level, line.to_string()));
    }
}

/// Writes lines to stderr, prefixed by level.
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn line(&mut self, level: Level, line: fmt::Arguments<'_>) {
        eprintln!("[{level:?}] {line}");
    }
}

/// A level-filtered tracer.
pub struct Tracer {
    max_level: Option<Level>,
    sink: Box<dyn TraceSink>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("max_level", &self.max_level)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per call site.
    pub fn off() -> Self {
        Tracer {
            max_level: None,
            sink: Box::new(NullSink),
        }
    }

    /// A tracer forwarding everything up to `max_level` to `sink`.
    pub fn new(max_level: Level, sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            max_level: Some(max_level),
            sink,
        }
    }

    /// A tracer printing to stderr up to `max_level`.
    pub fn stderr(max_level: Level) -> Self {
        Tracer::new(max_level, Box::new(StderrSink))
    }

    /// Whether `level` would be recorded — guard formatting with this.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        self.max_level.is_some_and(|max| level <= max)
    }

    /// Record a line at `level` (no-op when filtered).
    #[inline]
    pub fn emit(&mut self, level: Level, line: fmt::Arguments<'_>) {
        if self.enabled(level) {
            self.sink.line(level, line);
        }
    }
}

/// Convenience macro: `trace!(tracer, Level::Frame, "tx {} bytes", n)`.
#[macro_export]
macro_rules! trace {
    ($tracer:expr, $level:expr, $($arg:tt)*) => {
        if $tracer.enabled($level) {
            $tracer.emit($level, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled(Level::Info));
        trace!(t, Level::Info, "should vanish");
    }

    #[test]
    fn level_filtering() {
        let t = Tracer::new(Level::Frame, Box::new(NullSink));
        assert!(t.enabled(Level::Info));
        assert!(t.enabled(Level::Frame));
        assert!(!t.enabled(Level::Debug));
    }

    #[test]
    fn buffer_sink_captures() {
        let mut t = Tracer::new(Level::Debug, Box::new(BufferSink::default()));
        trace!(t, Level::Info, "hello {}", 42);
        trace!(t, Level::Debug, "world");
        // Swap the sink out to inspect it: rebuild with a captured buffer.
        // (In real use the owner keeps the tracer; tests just verify via a
        // second tracer below.)
        let mut buf = BufferSink::default();
        buf.line(Level::Info, format_args!("x={}", 1));
        assert_eq!(buf.lines, vec![(Level::Info, "x=1".to_string())]);
    }
}
