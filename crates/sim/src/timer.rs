//! Cancellable timers on top of the non-removable event queue.
//!
//! A binary heap cannot cheaply remove an arbitrary entry, so cancellation
//! is **lazy**: each logical timer key carries a generation counter. Arming
//! a timer bumps the generation and embeds a [`TimerToken`] (key +
//! generation) in the scheduled event; cancelling or re-arming bumps the
//! generation again. When the event fires, the dispatcher asks
//! [`TimerTable::fire`] whether the token is still current — stale tokens
//! are dropped silently. This is the same pattern used by most production
//! discrete-event engines (including ns-3's `EventId::IsExpired`).

use std::collections::HashMap;
use std::hash::Hash;

/// A handle embedded in a scheduled event identifying one arming of one
/// logical timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken<K> {
    key: K,
    generation: u64,
}

impl<K: Copy> TimerToken<K> {
    /// The logical timer key this token belongs to.
    pub fn key(&self) -> K {
        self.key
    }
}

/// Tracks the current generation of every logical timer key.
#[derive(Debug)]
pub struct TimerTable<K> {
    generations: HashMap<K, u64>,
    /// Number of stale tokens dropped at fire time (observability).
    stale_fired: u64,
}

impl<K: Eq + Hash + Copy> Default for TimerTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Copy> TimerTable<K> {
    /// Create an empty table.
    pub fn new() -> Self {
        TimerTable {
            generations: HashMap::new(),
            stale_fired: 0,
        }
    }

    /// Arm (or re-arm) the timer `key`, invalidating any previously armed
    /// instance, and return the token to embed in the scheduled event.
    pub fn arm(&mut self, key: K) -> TimerToken<K> {
        let entry = self.generations.entry(key).or_insert(0);
        *entry += 1;
        TimerToken {
            key,
            generation: *entry,
        }
    }

    /// Cancel the timer `key`. Any outstanding token becomes stale. Safe to
    /// call when the timer was never armed.
    pub fn cancel(&mut self, key: K) {
        if let Some(generation) = self.generations.get_mut(&key) {
            *generation += 1;
        }
    }

    /// Report that the event carrying `token` fired. Returns `true` if the
    /// token is current (the handler should run) and consumes the arming so
    /// a second delivery of the same token is stale.
    pub fn fire(&mut self, token: TimerToken<K>) -> bool {
        match self.generations.get_mut(&token.key) {
            Some(generation) if *generation == token.generation => {
                // Consume: a fired one-shot timer is no longer pending.
                *generation += 1;
                true
            }
            _ => {
                self.stale_fired += 1;
                false
            }
        }
    }

    /// Whether `token` would currently fire (without consuming it).
    pub fn is_current(&self, token: &TimerToken<K>) -> bool {
        self.generations.get(&token.key) == Some(&token.generation)
    }

    /// Number of stale tokens observed at fire time so far.
    pub fn stale_fired(&self) -> u64 {
        self.stale_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Key {
        AckTimeout,
        Slot,
    }

    #[test]
    fn armed_timer_fires_once() {
        let mut t = TimerTable::new();
        let tok = t.arm(Key::AckTimeout);
        assert!(t.is_current(&tok));
        assert!(t.fire(tok));
        // Double delivery is stale.
        assert!(!t.fire(tok));
        assert_eq!(t.stale_fired(), 1);
    }

    #[test]
    fn cancel_invalidates() {
        let mut t = TimerTable::new();
        let tok = t.arm(Key::AckTimeout);
        t.cancel(Key::AckTimeout);
        assert!(!t.is_current(&tok));
        assert!(!t.fire(tok));
    }

    #[test]
    fn rearm_invalidates_previous() {
        let mut t = TimerTable::new();
        let old = t.arm(Key::Slot);
        let new = t.arm(Key::Slot);
        assert!(!t.fire(old));
        assert!(t.fire(new));
    }

    #[test]
    fn keys_are_independent() {
        let mut t = TimerTable::new();
        let a = t.arm(Key::AckTimeout);
        let s = t.arm(Key::Slot);
        t.cancel(Key::AckTimeout);
        assert!(!t.fire(a));
        assert!(t.fire(s));
    }

    #[test]
    fn cancel_unarmed_is_noop() {
        let mut t: TimerTable<Key> = TimerTable::new();
        t.cancel(Key::Slot); // must not panic or create state
        let tok = t.arm(Key::Slot);
        assert!(t.fire(tok));
    }
}
