//! Deterministic random numbers for reproducible simulation runs.
//!
//! Every run is driven by a single seed; the paper's experiments average
//! over five runs, which we reproduce by running seeds `base..base+5`.
//! [`SimRng`] is a self-contained xoshiro256++ generator (the same family
//! `rand`'s `SmallRng` uses — fast and statistically adequate for backoff
//! slots and loss draws), seeded through SplitMix64 so that even adjacent
//! integer seeds start from decorrelated states. Keeping the generator
//! in-tree pins the stream bit-for-bit across platforms and toolchains,
//! which the trace-digest determinism tests rely on.

/// xoshiro256++ state (Blackman & Vigna). Period 2^256 − 1.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence, used for state initialization.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// A seeded simulation RNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
    seed: u64,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed. Equal seeds produce identical
    /// streams across runs and platforms.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this RNG was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork a child RNG with a decorrelated stream, e.g. one per node, so
    /// that adding a node does not perturb other nodes' draws.
    pub fn fork(&self, salt: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, salt) into a child seed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform integer in `[0, n)` — e.g. a backoff slot count drawn from
    /// `[0, CW]` is `uniform(cw + 1)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform(&mut self, n: u32) -> u32 {
        assert!(n > 0, "uniform(0) is meaningless");
        // Lemire's unbiased multiply-shift rejection method.
        let n64 = u64::from(n);
        loop {
            let x = self.inner.next_u64() & 0xFFFF_FFFF;
            let m = x * n64;
            let low = m & 0xFFFF_FFFF;
            if low >= u64::from(n.wrapping_neg() % n) {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard 2^-53 construction.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "inverted range");
        lo + (hi - lo) * self.unit()
    }

    /// A uniformly random point in a disc of radius `r` centred on the
    /// origin (used to scatter clients around the AP, as in §4.3's
    /// "scattered randomly within a circle of 10-meter radius").
    pub fn point_in_disc(&mut self, r: f64) -> (f64, f64) {
        // Radius must be sqrt-distributed for area uniformity.
        let radius = r * self.unit().sqrt();
        let theta = self.range_f64(0.0, std::f64::consts::TAU);
        (radius * theta.cos(), radius * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.uniform(1024), b.uniform(1024));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100)
            .filter(|_| a.uniform(1 << 30) == b.uniform(1 << 30))
            .count();
        assert!(same < 3, "streams should be essentially uncorrelated");
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(0);
        let mut c1b = root.fork(0);
        let mut c2 = root.fork(1);
        assert_eq!(c1.uniform(u32::MAX), c1b.uniform(u32::MAX));
        // Extremely unlikely to collide.
        assert_ne!(c1.uniform(u32::MAX), c2.uniform(u32::MAX));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(9);
        let hits = (0..100_000).filter(|_| r.chance(0.12)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.12).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn uniform_covers_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[r.uniform(16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn point_in_disc_is_inside() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let (x, y) = r.point_in_disc(10.0);
            assert!(x * x + y * y <= 100.0 + 1e-9);
        }
    }
}
