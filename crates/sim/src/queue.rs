//! The pending-event queue at the heart of the discrete-event engine.
//!
//! A binary min-heap ordered by firing time, with a monotonically increasing
//! sequence number as a tiebreak so that events scheduled for the same
//! instant fire in **FIFO order**. Deterministic tie-breaking matters: the
//! 802.11 MAC schedules many same-instant events (e.g. several stations'
//! backoff slot boundaries), and run-to-run reproducibility of the whole
//! simulation depends on their dispatch order being a pure function of
//! insertion order.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue holding payloads of type `E`, ordered by firing time then
/// insertion order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A simulation clock plus event queue: the minimal driver loop.
///
/// [`Scheduler::pop`] advances the clock to each event's firing time, which
/// guarantees the global event-ordering invariant: the clock never moves
/// backwards, and every handler observes `now` equal to its event's
/// scheduled time.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Create a scheduler with the clock at t=0 and an empty queue.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would break
    /// causality and silently reorder the run.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedule an event `delay` from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, payload) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue returned a past event");
        self.now = at;
        self.dispatched += 1;
        Some((at, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_tiebreak_interleaved_with_earlier_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.push(t, 1);
        q.push(SimTime::from_micros(1), 0);
        q.push(t, 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_micros(10), ());
        s.schedule_in(SimDuration::from_micros(5), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(5)));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(5));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert!(s.pop().is_none());
        // Clock stays at the last event after the queue drains.
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_micros(10), ());
        s.pop();
        s.schedule_at(SimTime::from_micros(3), ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
