//! The pending-event queue at the heart of the discrete-event engine.
//!
//! Two implementations live behind the [`EventQueue`] facade:
//!
//! * [`CalendarQueue`] — a Brown-style calendar queue (the structure
//!   NS-2 popularized for network simulation): events hash into
//!   time-indexed buckets of one "day" each, a "year" spanning all
//!   buckets, so push and pop are amortized O(1) in the steady state.
//!   This is the default.
//! * [`HeapEventQueue`] — the classic binary min-heap, kept as the
//!   reference implementation and for differential testing.
//!
//! Both order events by firing time with a monotonically increasing
//! sequence number as a tiebreak so that events scheduled for the same
//! instant fire in **FIFO order**, and both produce the *identical*
//! total order for the same push sequence. Deterministic tie-breaking
//! matters: the 802.11 MAC schedules many same-instant events (e.g.
//! several stations' backoff slot boundaries), and run-to-run
//! reproducibility of the whole simulation depends on their dispatch
//! order being a pure function of insertion order.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Which [`EventQueue`] implementation a scheduler runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Calendar queue — amortized O(1) push/pop (the default).
    #[default]
    Calendar,
    /// Binary min-heap — O(log n) reference implementation.
    Heap,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

// ---------------------------------------------------------------------
// Binary-heap implementation (the reference).
// ---------------------------------------------------------------------

/// The classic binary-min-heap event queue, ordered by firing time then
/// insertion order.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

// ---------------------------------------------------------------------
// Calendar-queue implementation (the default).
// ---------------------------------------------------------------------

/// Smallest bucket count the calendar shrinks to.
const MIN_BUCKETS: usize = 8;
/// Bucket-width ceiling (2^40 ns ≈ 18 min) — keeps the year arithmetic
/// far from overflow even for degenerate schedules.
const MAX_WIDTH_SHIFT: u32 = 40;

/// A bucket entry: the sort key plus a slab index. 24 bytes regardless
/// of the payload type, so sorted inserts and resizes move small POD
/// values — the payload itself sits still in the slab until popped.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl SlotRef {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A Brown-style calendar queue: buckets of one "day" (`width`) each,
/// the whole array spanning one "year". An event at time `t` lives in
/// bucket `(t / width) % nbuckets`; buckets are kept sorted so pops
/// stream off bucket fronts in (time, seq) order.
///
/// Payloads are stored once in a slab with a LIFO free list; buckets
/// hold 24-byte [`SlotRef`]s. Simulation event payloads are large (a
/// full packet rides inside), and keeping them out of the sorted
/// buckets makes inserts and re-bucketing cheap memmoves of small keys
/// instead of whole-event copies.
///
/// The structure is entirely deterministic — bucket geometry and slab
/// slot reuse are pure functions of the queue's content (no sampling,
/// no randomness, no wall clock), so equal push sequences always
/// produce equal pop sequences, bit for bit.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `nbuckets` (power of two) sorted day-buckets.
    buckets: Vec<VecDeque<SlotRef>>,
    /// Payload storage; `SlotRef::idx` points here.
    slab: Vec<Option<E>>,
    /// Vacant slab indices, reused LIFO.
    free: Vec<u32>,
    /// log2 of the bucket width in ns (width is a power of two so the
    /// index computation is a shift, not a division).
    width_shift: u32,
    /// Bucket the pop scan is parked on.
    cur_bucket: usize,
    /// Exclusive upper time bound of `cur_bucket`'s current day.
    bucket_top_ns: u64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            slab: Vec::new(),
            free: Vec::new(),
            width_shift: 10, // 1.024 µs days until the first resize
            cur_bucket: 0,
            bucket_top_ns: 1 << 10,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn width_ns(&self) -> u64 {
        1 << self.width_shift
    }

    fn bucket_of(&self, at_ns: u64) -> usize {
        ((at_ns >> self.width_shift) as usize) & (self.buckets.len() - 1)
    }

    /// Park the pop scan on the day containing `at_ns`.
    fn set_scan(&mut self, at_ns: u64) {
        self.cur_bucket = self.bucket_of(at_ns);
        self.bucket_top_ns = (at_ns >> self.width_shift << self.width_shift) + self.width_ns();
    }

    /// Insert into the bucket keeping it sorted by (time, seq). The
    /// strict-less predicate places equal-time entries after every
    /// already-present one with a smaller seq — the FIFO tiebreak.
    fn insert_sorted(bucket: &mut VecDeque<SlotRef>, r: SlotRef) {
        let pos = bucket.partition_point(|x| x.key() < r.key());
        bucket.insert(pos, r);
    }

    fn slab_put(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(payload);
                i
            }
            None => {
                self.slab.push(Some(payload));
                u32::try_from(self.slab.len() - 1).expect("slab index fits u32")
            }
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at_ns = at.as_nanos();
        // If the event lands before the day the scan is parked on,
        // rewind the scan so the next pop cannot miss it.
        if self.len == 0 || at_ns < self.bucket_top_ns - self.width_ns() {
            self.set_scan(at_ns);
        }
        let idx = self.slab_put(payload);
        let bucket = self.bucket_of(at_ns);
        Self::insert_sorted(&mut self.buckets[bucket], SlotRef { at, seq, idx });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Advance the year scan to the bucket holding the global minimum
    /// and return its index. Amortized O(1): the scan position persists
    /// across calls (peeks and pops share it), so consecutive calls
    /// resume where the last one parked instead of rescanning.
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Fast path: walk day-buckets within the current year. Each
        // bucket front is that bucket's minimum; a front inside the
        // scan's current day is the global minimum.
        for _ in 0..self.buckets.len() {
            if let Some(front) = self.buckets[self.cur_bucket].front() {
                if front.at.as_nanos() < self.bucket_top_ns {
                    return Some(self.cur_bucket);
                }
            }
            self.cur_bucket = (self.cur_bucket + 1) & (self.buckets.len() - 1);
            self.bucket_top_ns += self.width_ns();
        }
        // Sparse year (a full lap found nothing): jump the scan straight
        // to the earliest event. Direct search over bucket fronts.
        let idx = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|r| (r.key(), i)))
            .min()
            .map(|(_, i)| i)
            .expect("len > 0 but all buckets empty");
        let at_ns = self.buckets[idx]
            .front()
            .expect("chosen front")
            .at
            .as_nanos();
        self.set_scan(at_ns);
        Some(self.cur_bucket)
    }

    /// The firing time of the earliest pending event, if any.
    ///
    /// Takes `&mut self`: peeking advances the shared year-scan cursor
    /// (pure acceleration state — the queue's contents and pop order
    /// are unaffected), which is what makes the peek-then-pop pattern
    /// of a simulation main loop amortized O(1) instead of O(nbuckets)
    /// per event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.find_min()?;
        self.buckets[idx].front().map(|r| r.at)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.find_min()?;
        Some(self.take_front(idx))
    }

    fn take_front(&mut self, bucket: usize) -> (SimTime, E) {
        let r = self.buckets[bucket]
            .pop_front()
            .expect("bucket front exists");
        let payload = self.slab[r.idx as usize].take().expect("live slab slot");
        self.free.push(r.idx);
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        (r.at, payload)
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.slab.clear();
        self.free.clear();
        self.len = 0;
    }

    /// Re-bucket every pending event into `nbuckets` buckets with a
    /// width derived from the current time span per event. Only the
    /// 24-byte refs move; payloads stay put in the slab. Fully
    /// deterministic: geometry depends only on queue content.
    fn resize(&mut self, nbuckets: usize) {
        let mut refs: Vec<SlotRef> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            refs.extend(b.drain(..));
        }
        let min_ns = refs.iter().map(|r| r.at.as_nanos()).min().unwrap_or(0);
        let max_ns = refs.iter().map(|r| r.at.as_nanos()).max().unwrap_or(0);
        let span_per_event = (max_ns - min_ns) / refs.len().max(1) as u64;
        self.width_shift = span_per_event
            .next_power_of_two()
            .trailing_zeros()
            .clamp(1, MAX_WIDTH_SHIFT);
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        }
        self.set_scan(min_ns);
        for r in refs {
            let idx = self.bucket_of(r.at.as_nanos());
            Self::insert_sorted(&mut self.buckets[idx], r);
        }
    }
}

// ---------------------------------------------------------------------
// The facade.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Inner<E> {
    Calendar(CalendarQueue<E>),
    Heap(HeapEventQueue<E>),
}

/// An event queue holding payloads of type `E`, ordered by firing time
/// then insertion order. Backed by a [`CalendarQueue`] by default; a
/// [`HeapEventQueue`] can be selected with [`EventQueue::with_kind`]
/// (both yield the identical pop order).
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue on the default (calendar) implementation.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Create an empty queue on the chosen implementation.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            inner: match kind {
                QueueKind::Calendar => Inner::Calendar(CalendarQueue::new()),
                QueueKind::Heap => Inner::Heap(HeapEventQueue::new()),
            },
        }
    }

    /// Which implementation this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.inner {
            Inner::Calendar(_) => QueueKind::Calendar,
            Inner::Heap(_) => QueueKind::Heap,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Calendar(q) => q.len(),
            Inner::Heap(q) => q.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        match &mut self.inner {
            Inner::Calendar(q) => q.push(at, payload),
            Inner::Heap(q) => q.push(at, payload),
        }
    }

    /// The firing time of the earliest pending event, if any.
    ///
    /// `&mut self` because the calendar implementation advances its
    /// scan cursor while peeking (contents are untouched).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Calendar(q) => q.peek_time(),
            Inner::Heap(q) => q.peek_time(),
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Calendar(q) => q.pop(),
            Inner::Heap(q) => q.pop(),
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Calendar(q) => q.clear(),
            Inner::Heap(q) => q.clear(),
        }
    }
}

/// A simulation clock plus event queue: the minimal driver loop.
///
/// [`Scheduler::pop`] advances the clock to each event's firing time, which
/// guarantees the global event-ordering invariant: the clock never moves
/// backwards, and every handler observes `now` equal to its event's
/// scheduled time.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Create a scheduler with the clock at t=0 and an empty queue on the
    /// default (calendar) implementation.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Create a scheduler on the chosen queue implementation.
    pub fn with_kind(kind: QueueKind) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(kind),
            dispatched: 0,
        }
    }

    /// Which queue implementation this scheduler runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would break
    /// causality and silently reorder the run.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, payload);
    }

    /// Schedule an event `delay` from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pop the next event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, payload) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue returned a past event");
        self.now = at;
        self.dispatched += 1;
        Some((at, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn both() -> [EventQueue<i32>; 2] {
        [
            EventQueue::with_kind(QueueKind::Calendar),
            EventQueue::with_kind(QueueKind::Heap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::with_kind(QueueKind::Calendar),
            EventQueue::with_kind(QueueKind::Heap),
        ] {
            q.push(SimTime::from_micros(30), "c");
            q.push(SimTime::from_micros(10), "a");
            q.push(SimTime::from_micros(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn same_time_is_fifo() {
        for mut q in both() {
            let t = SimTime::from_micros(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fifo_tiebreak_interleaved_with_earlier_events() {
        for mut q in both() {
            let t = SimTime::from_micros(5);
            q.push(t, 1);
            q.push(SimTime::from_micros(1), 0);
            q.push(t, 2);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        // Grow far past the initial geometry, interleaving pops.
        for i in 0..5_000u64 {
            q.push(SimTime::from_nanos(i * 977 % 100_000), i);
            if i % 3 == 0 {
                q.pop();
            }
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last.0, "time went backwards");
            last = (t, v);
            n += 1;
        }
        assert_eq!(n + 5_000 / 3 + 1, 5_000);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_sparse_schedule_jumps_years() {
        let mut q = CalendarQueue::new();
        // Events many "years" apart force the direct-search fallback.
        for i in (0..10u64).rev() {
            q.push(SimTime::from_secs(i * 37), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for i in [5u64, 3, 9, 3, 7, 1, 1] {
            q.push(SimTime::from_micros(i), i);
        }
        while !q.is_empty() {
            let peeked = q.peek_time().unwrap();
            let (popped, _) = q.pop().unwrap();
            assert_eq!(peeked, popped);
        }
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn calendar_slab_reuses_slots() {
        let mut q = CalendarQueue::new();
        // Steady-state push/pop churn must not grow the slab without
        // bound: slots free on pop and are reused by later pushes.
        for round in 0..1_000u64 {
            q.push(SimTime::from_nanos(round * 100), round);
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.slab.len() <= 2,
            "slab grew to {} slots under 1-deep churn",
            q.slab.len()
        );
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_micros(10), ());
        s.schedule_in(SimDuration::from_micros(5), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(5)));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(5));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert!(s.pop().is_none());
        // Clock stays at the last event after the queue drains.
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_micros(10), ());
        s.pop();
        s.schedule_at(SimTime::from_micros(3), ());
    }

    #[test]
    fn clear_empties_queue() {
        for mut q in both() {
            q.push(SimTime::ZERO, 1);
            q.push(SimTime::ZERO, 2);
            assert_eq!(q.len(), 2);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn default_kind_is_calendar() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
        assert_eq!(Scheduler::<()>::new().queue_kind(), QueueKind::Calendar);
    }
}
