//! Measurement primitives used by the experiment harness.
//!
//! The paper reports means and standard deviations over five runs
//! ([`RunStats`]), goodput over steady-state windows ([`ThroughputMeter`]),
//! retry-rate breakdowns (plain [`Counter`]s), and time-overhead breakdowns
//! (accumulated [`SimDuration`]s). Everything here is plain-old-data with
//! no interior mutability, so results are deterministic and `Send`.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Reconstitute a counter from a stored value (result
    /// deserialization — the campaign cache round-trips statistics).
    pub const fn from_value(v: u64) -> Self {
        Counter(v)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Online mean / variance over a stream of samples (Welford's algorithm).
#[derive(Debug, Default, Clone, Copy)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (Bessel-corrected; 0 with <2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Mean ± std-dev over independent runs — the paper's error bars.
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    samples: Vec<f64>,
}

impl RunStats {
    /// Create an empty collection.
    pub fn new() -> Self {
        RunStats {
            samples: Vec::new(),
        }
    }

    /// Record one run's result.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// All recorded samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean over runs (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation over runs (0 with <2 runs).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean(), self.std_dev())
    }
}

/// Goodput measurement over an arbitrary window.
///
/// Records (time, bytes) deliveries; [`ThroughputMeter::mbps_between`]
/// integrates over a window, which is how the paper computes "aggregate
/// goodput over the steady-state portion of the runs".
#[derive(Debug, Default, Clone)]
pub struct ThroughputMeter {
    deliveries: Vec<(SimTime, u64)>,
    total_bytes: u64,
}

impl ThroughputMeter {
    /// Create an empty meter.
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Record `bytes` delivered at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        debug_assert!(
            self.deliveries.last().is_none_or(|&(t, _)| t <= now),
            "deliveries must be recorded in time order"
        );
        self.deliveries.push((now, bytes));
        self.total_bytes += bytes;
    }

    /// Total bytes delivered over the whole run.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Time of the first delivery.
    pub fn first_delivery(&self) -> Option<SimTime> {
        self.deliveries.first().map(|&(t, _)| t)
    }

    /// Time of the last delivery.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.deliveries.last().map(|&(t, _)| t)
    }

    /// Bytes delivered in `[from, to)`.
    pub fn bytes_between(&self, from: SimTime, to: SimTime) -> u64 {
        self.deliveries
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, b)| b)
            .sum()
    }

    /// Goodput in Mbps over `[from, to)`; 0 for an empty window.
    pub fn mbps_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let bytes = self.bytes_between(from, to);
        let secs = to.duration_since(from).as_secs_f64();
        (bytes as f64 * 8.0) / secs / 1e6
    }
}

/// A duration accumulator for time-overhead breakdowns (Table 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct TimeAccumulator {
    total: SimDuration,
    events: u64,
}

impl TimeAccumulator {
    /// Create a zeroed accumulator.
    pub fn new() -> Self {
        TimeAccumulator::default()
    }

    /// Reconstitute an accumulator from stored totals (result
    /// deserialization — the campaign cache round-trips statistics).
    pub const fn from_parts(total: SimDuration, events: u64) -> Self {
        TimeAccumulator { total, events }
    }

    /// Add one span.
    pub fn add(&mut self, d: SimDuration) {
        self.total += d;
        self.events += 1;
    }

    /// Total accumulated time.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Number of spans recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean span (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.events == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.events
        }
    }
}

/// Fixed-boundary histogram for latency-style distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bounds (exclusive) of each bucket; a final overflow bucket
    /// catches everything else.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of samples strictly below `bound`, where `bound` must be
    /// one of the constructed bucket bounds.
    pub fn fraction_below(&self, bound: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| b == bound)
            .expect("bound must match a constructed bucket bound");
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }
}

/// Number of buckets in a [`QuantileSketch`]: 8 exact small-value
/// buckets plus 61 octaves × 8 sub-bins of logarithmic buckets.
pub const SKETCH_BUCKETS: usize = 496;

/// Deterministic, mergeable streaming quantile sketch over `u64`
/// samples (nanoseconds, bytes, ...).
///
/// Values 0–7 get exact buckets; larger values land in log-spaced
/// buckets with 8 sub-bins per octave, bounding the relative error of
/// any reported quantile to ~6.7%. Recording, merging, and querying
/// are all integer-only and order-insensitive with respect to merge,
/// so parallel shards reduce to the same bytes as a serial run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; SKETCH_BUCKETS],
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < 8 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros() as usize; // 3..=63
            let sub = ((v >> (exp - 3)) & 0x7) as usize;
            8 + (exp - 3) * 8 + sub
        }
    }

    /// Midpoint of bucket `i`'s value range (its representative).
    fn bucket_mid(i: usize) -> u64 {
        if i < 8 {
            i as u64
        } else {
            let exp = 3 + (i - 8) / 8;
            let sub = ((i - 8) % 8) as u64;
            let lo = (8 + sub) << (exp - 3);
            let width = 1u64 << (exp - 3);
            lo + (width - 1) / 2
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`; `None` when empty.
    ///
    /// Returns the representative (bucket midpoint) of the bucket
    /// containing the rank-`⌊q·(n−1)⌋` sample, clamped to the exact
    /// observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another sketch into this one.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Sparse view for serialization: `(count, sum, min, max, pairs)`
    /// where pairs are `(bucket_index, bucket_count)` for non-empty
    /// buckets in ascending index order.
    pub fn to_sparse(&self) -> (u64, u64, u64, u64, Vec<(u16, u64)>) {
        let pairs = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u16, c))
            .collect();
        (self.count, self.sum, self.min, self.max, pairs)
    }

    /// Rebuild from a sparse view produced by [`Self::to_sparse`].
    ///
    /// Returns `None` if a bucket index is out of range or the bucket
    /// counts do not sum to `count`.
    pub fn from_sparse(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        pairs: &[(u16, u64)],
    ) -> Option<Self> {
        let mut s = QuantileSketch::new();
        let mut total = 0u64;
        for &(i, c) in pairs {
            let slot = s.buckets.get_mut(i as usize)?;
            *slot = slot.checked_add(c)?;
            total = total.checked_add(c)?;
        }
        if total != count {
            return None;
        }
        s.count = count;
        s.sum = sum;
        s.min = if count == 0 { u64::MAX } else { min };
        s.max = max;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_mean_var() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn run_stats_mean_std() {
        let mut r = RunStats::new();
        for x in [10.0, 12.0, 14.0] {
            r.push(x);
        }
        assert!((r.mean() - 12.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(format!("{r}"), "12.00 ± 2.00");
    }

    #[test]
    fn throughput_meter_windows() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_secs(1), 1_000_000);
        m.record(SimTime::from_secs(2), 1_000_000);
        m.record(SimTime::from_secs(3), 1_000_000);
        assert_eq!(m.total_bytes(), 3_000_000);
        // Window [1s, 3s): two deliveries over 2 seconds = 8 Mbps.
        let mbps = m.mbps_between(SimTime::from_secs(1), SimTime::from_secs(3));
        assert!((mbps - 8.0).abs() < 1e-9);
        assert_eq!(
            m.mbps_between(SimTime::from_secs(3), SimTime::from_secs(3)),
            0.0
        );
        assert_eq!(m.first_delivery(), Some(SimTime::from_secs(1)));
        assert_eq!(m.last_delivery(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn time_accumulator() {
        let mut t = TimeAccumulator::new();
        t.add(SimDuration::from_micros(10));
        t.add(SimDuration::from_micros(30));
        assert_eq!(t.total(), SimDuration::from_micros(40));
        assert_eq!(t.mean(), SimDuration::from_micros(20));
        assert_eq!(t.events(), 2);
    }

    #[test]
    fn histogram_buckets_and_fraction() {
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0]);
        for x in [5.0, 15.0, 25.0, 35.0, 9.9, 29.9] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 2, 1]);
        assert_eq!(h.total(), 6);
        assert!((h.fraction_below(10.0) - 2.0 / 6.0).abs() < 1e-12);
        assert!((h.fraction_below(30.0) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10.0, 5.0]);
    }

    #[test]
    fn sketch_small_values_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..8u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(7));
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(7));
        // Rank 3 (q=0.5 over 8 samples, 0-based floor) is exactly 3.
        assert_eq!(s.quantile(0.5), Some(3));
    }

    #[test]
    fn sketch_relative_error_bounded() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000u64 {
            s.record(i * 1_000); // 1µs .. 10ms in ns
        }
        for q in [0.5, 0.95, 0.99] {
            let est = s.quantile(q).unwrap() as f64;
            let exact = ((q * 9_999.0).floor() as u64 + 1) as f64 * 1_000.0;
            assert!(
                (est - exact).abs() / exact < 0.07,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_sequential() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for i in 0..1000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sketch_sparse_round_trip() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 900, 1_000_000, u64::MAX] {
            s.record(v);
        }
        let (count, sum, min, max, pairs) = s.to_sparse();
        let back = QuantileSketch::from_sparse(count, sum, min, max, &pairs).unwrap();
        assert_eq!(back, s);

        let empty = QuantileSketch::new();
        let (c, su, mn, mx, p) = empty.to_sparse();
        assert_eq!(
            QuantileSketch::from_sparse(c, su, mn, mx, &p).unwrap(),
            empty
        );
        // Corrupt: count mismatch rejected.
        assert!(QuantileSketch::from_sparse(7, sum, min, max, &pairs).is_none());
        // Corrupt: out-of-range bucket rejected.
        assert!(QuantileSketch::from_sparse(1, 0, 0, 0, &[(u16::MAX, 1)]).is_none());
    }
}
