//! Simulation time primitives.
//!
//! All simulation time is kept in integer **nanoseconds** since the start of
//! the run. A `u64` nanosecond clock wraps after ~584 years of simulated
//! time, far beyond any experiment in this repository, so arithmetic is
//! plain (debug-checked) addition rather than wrapping arithmetic.
//!
//! Two newtypes keep instants and spans from being confused:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! The PHY layer works in microsecond-granularity quantities (OFDM symbols
//! are 4 µs), TCP works in milliseconds, and the wired backhaul in
//! sub-millisecond serialization times; nanoseconds give integer-exact
//! representations of all of them.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for timer comparisons.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct an instant from raw nanoseconds since t=0.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct an instant from microseconds since t=0.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct an instant from milliseconds since t=0.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct an instant from whole seconds since t=0.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (for reporting; never feed back into
    /// scheduling decisions, which must stay integer-exact).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, clamped to zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        let ns = s * 1e9;
        assert!(ns <= u64::MAX as f64, "duration overflow: {s} s");
        SimDuration(ns.round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero-length span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<SimDuration> {
        self.0.checked_mul(k).map(SimDuration)
    }

    /// The time it takes to serialize `bits` at `rate_bps` bits per second,
    /// rounded **up** to the next nanosecond (a transmission never finishes
    /// early).
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero.
    pub fn for_bits(bits: u64, rate_bps: u64) -> SimDuration {
        assert!(rate_bps > 0, "zero transmission rate");
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bits < 2^40 and 1e9 < 2^30 keeps the product within u128.
        let ns = ((bits as u128) * 1_000_000_000u128).div_ceil(rate_bps as u128);
        SimDuration(u64::try_from(ns).expect("transmission duration overflow"))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

/// Human-friendly rendering: picks s / ms / µs / ns by magnitude.
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.6}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(16);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_micros(4));
    }

    #[test]
    fn for_bits_rounds_up() {
        // 12000 bits at 54 Mbps = 222.22.. us => must round up to the next ns.
        let d = SimDuration::for_bits(12_000, 54_000_000);
        assert_eq!(d.as_nanos(), 222_223);
        // Exact division stays exact: 6000 bits at 6 Mbps = 1 ms.
        assert_eq!(
            SimDuration::for_bits(6_000, 6_000_000),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn for_bits_zero_bits_is_zero() {
        assert_eq!(SimDuration::for_bits(0, 1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero transmission rate")]
    fn for_bits_zero_rate_panics() {
        let _ = SimDuration::for_bits(1, 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.000_016),
            SimDuration::from_micros(16)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(16)), "16.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(4)), "4.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
    }

    #[test]
    fn scalar_ops() {
        let d = SimDuration::from_micros(9);
        assert_eq!(d * 4, SimDuration::from_micros(36));
        assert_eq!(d / 3, SimDuration::from_micros(3));
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_micros(27));
    }
}
