//! # hack-sim — discrete-event simulation kernel
//!
//! The substrate underneath the TCP/HACK reproduction: a deterministic
//! discrete-event engine in the style of ns-3's core, but deliberately
//! minimal. It provides
//!
//! * integer-nanosecond [`SimTime`] / [`SimDuration`] ([`time`]),
//! * a FIFO-tiebroken [`EventQueue`] and clock-advancing [`Scheduler`]
//!   ([`queue`]),
//! * lazily-cancellable timers ([`timer`]),
//! * a seeded, forkable RNG ([`rng`]), and
//! * measurement primitives for the paper's metrics ([`stats`]) plus a
//!   zero-cost-when-off tracer ([`mod@trace`]).
//!
//! The protocol crates (`hack-mac`, `hack-tcp`, `hack-core`) are written
//! sans-IO: they never talk to this engine directly, they merely return
//! actions and timer requests that `hack-core`'s event loop materializes
//! through these types. That keeps every protocol state machine unit-
//! testable with hand-fed events and keeps whole-simulation runs exactly
//! reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;
pub mod trace;

pub use queue::{CalendarQueue, EventQueue, HeapEventQueue, QueueKind, Scheduler};
pub use rng::SimRng;
pub use stats::{
    Counter, Histogram, QuantileSketch, RunStats, RunningStats, ThroughputMeter, TimeAccumulator,
    SKETCH_BUCKETS,
};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerTable, TimerToken};
pub use trace::{Level, Tracer};

/// The structured cross-layer event-tracing layer (re-exported so
/// simulation drivers need only depend on `hack-sim`).
pub use hack_trace as events;
