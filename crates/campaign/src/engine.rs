//! Campaign execution: work-stealing pool + deterministic reduction.
//!
//! The engine expands a [`SweepSpec`] into its job list, executes jobs
//! on up to [`std::thread::available_parallelism`] workers (each worker
//! owns a deque and steals from the others when it drains), and then
//! reduces results **by job index** — never by completion order. That
//! single rule is the determinism argument: scheduling decides only
//! *when* a result materializes, not *where* it lands, so one thread,
//! sixteen threads, and an all-cache-hit re-run all produce
//! byte-identical reports.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use hack_core::RunResult;

use crate::agg::CellStats;
use crate::cache::ResultCache;
use crate::spec::{Job, SweepSpec};

/// Knobs controlling how a campaign executes (not *what* it computes:
/// none of these change the report of a completed campaign).
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Directory for the content-addressed result cache; `None`
    /// disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Stop after this many jobs complete (cache hits included). Used
    /// to simulate an interrupted campaign; the report then has
    /// `complete == false` and only fully-covered cells.
    pub job_limit: Option<usize>,
}

/// Aggregated results for one cell of the sweep.
#[derive(Debug)]
pub struct CellReport {
    /// Cell index in odometer order.
    pub cell: usize,
    /// One label per axis.
    pub labels: Vec<String>,
    /// The seeds aggregated here, in bank order.
    pub seeds: Vec<u64>,
    /// Steady-state aggregate goodput (Mbps) over the seed bank.
    pub goodput: CellStats,
    /// AP first-try delivery fraction over the seed bank (seeds whose
    /// AP sent no data are excluded, as in `ap_first_try_fraction`).
    pub first_try: CellStats,
    /// The raw per-seed results, in seed-bank order.
    pub runs: Vec<RunResult>,
}

/// The outcome of a campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// The seed bank shared by every cell.
    pub seeds: Vec<u64>,
    /// Fully-covered cells, in cell order. An interrupted campaign
    /// omits cells with missing seeds rather than reporting partial
    /// statistics.
    pub cells: Vec<CellReport>,
    /// Total jobs in the expansion.
    pub jobs_total: usize,
    /// Jobs actually simulated (cache misses).
    pub jobs_executed: usize,
    /// Jobs satisfied from the result cache.
    pub cache_hits: usize,
    /// Whether every job completed (false under `job_limit`).
    pub complete: bool,
}

/// Run a campaign with the default runner (`hack_core::run_auto`):
/// legacy single-cell configs run directly, dense multi-BSS configs run
/// sharded and merged — so dense cells sweep, cache, and resume exactly
/// like legacy ones.
pub fn run_campaign(spec: &SweepSpec, opts: &CampaignOptions) -> CampaignReport {
    run_campaign_with(spec, opts, &|job: &Job| {
        hack_core::run_auto(job.cfg.clone())
    })
}

/// Run a campaign with a caller-supplied runner (e.g. a traced run).
///
/// The runner must be a pure function of the job's config: the cache
/// will happily serve a previous runner's result for an identical
/// config, and determinism of the report is only as good as the
/// runner's.
pub fn run_campaign_with(
    spec: &SweepSpec,
    opts: &CampaignOptions,
    runner: &(dyn Fn(&Job) -> RunResult + Sync),
) -> CampaignReport {
    let jobs = spec.expand();
    let jobs_total = jobs.len();
    let cache = opts
        .cache_dir
        .as_ref()
        .map(|d| ResultCache::new(d).expect("campaign: cannot create cache dir"));
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.threads
    }
    .max(1);
    let limit = opts.job_limit.unwrap_or(usize::MAX);

    // Deal jobs round-robin into per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (0..jobs_total)
                    .filter(|i| i % threads == w)
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();
    let budget = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunResult, bool)>();

    let worker = |w: usize, tx: mpsc::Sender<(usize, RunResult, bool)>| {
        loop {
            // Own queue front first; steal from the back of the others
            // when it drains.
            let mut claimed = queues[w].lock().expect("queue poisoned").pop_front();
            if claimed.is_none() {
                for v in (0..threads).filter(|&v| v != w) {
                    claimed = queues[v].lock().expect("queue poisoned").pop_back();
                    if claimed.is_some() {
                        break;
                    }
                }
            }
            let Some(idx) = claimed else { break };
            // Atomically claim a slot of the job budget ("kill after k
            // jobs"): once spent, workers wind down mid-campaign.
            if budget.fetch_add(1, Ordering::SeqCst) >= limit {
                break;
            }
            let job = &jobs[idx];
            let (result, hit) = match cache.as_ref().and_then(|c| c.load(&job.key)) {
                Some(r) => (r, true),
                None => {
                    let r = runner(job);
                    if let Some(c) = &cache {
                        if let Err(e) = c.store(&job.key, &r) {
                            eprintln!("campaign: cache store failed for {}: {e}", job.key);
                        }
                    }
                    (r, false)
                }
            };
            if tx.send((idx, result, hit)).is_err() {
                break;
            }
        }
    };

    if threads == 1 {
        // Serial reference path: the caller's thread runs every job in
        // job order. Parallel runs must match its output byte for byte.
        worker(0, tx);
    } else {
        std::thread::scope(|s| {
            for w in 0..threads {
                let tx = tx.clone();
                let worker = &worker;
                s.spawn(move || worker(w, tx));
            }
            drop(tx);
        });
    }

    // Deterministic reduction: results land in their job slot, then
    // cells aggregate in seed-bank order.
    let mut slots: Vec<Option<RunResult>> = (0..jobs_total).map(|_| None).collect();
    let mut jobs_executed = 0;
    let mut cache_hits = 0;
    for (idx, result, hit) in rx {
        slots[idx] = Some(result);
        if hit {
            cache_hits += 1;
        } else {
            jobs_executed += 1;
        }
    }

    let n_seeds = spec.seed_list().len();
    let n_cells = spec.n_cells();
    let complete = slots.iter().all(Option::is_some);
    let mut cells = Vec::new();
    for cell in 0..n_cells {
        let range = cell * n_seeds..(cell + 1) * n_seeds;
        if slots[range.clone()].iter().any(Option::is_none) {
            continue;
        }
        let runs: Vec<RunResult> = slots[range]
            .iter_mut()
            .map(|s| s.take().expect("checked above"))
            .collect();
        let goodput: Vec<f64> = runs.iter().map(|r| r.aggregate_goodput_mbps).collect();
        let first_try: Vec<f64> = runs
            .iter()
            .filter_map(hack_core::RunResult::ap_first_try_fraction)
            .collect();
        cells.push(CellReport {
            cell,
            labels: jobs[cell * n_seeds].labels.clone(),
            seeds: spec.seed_list().to_vec(),
            goodput: CellStats::from_values(&goodput),
            first_try: CellStats::from_values(&first_try),
            runs,
        });
    }

    CampaignReport {
        name: spec.name().to_string(),
        axis_names: spec.axis_names().iter().map(ToString::to_string).collect(),
        seeds: spec.seed_list().to_vec(),
        cells,
        jobs_total,
        jobs_executed,
        cache_hits,
        complete,
    }
}
