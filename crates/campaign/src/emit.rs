//! Report emitters: hand-rolled JSON and CSV (this workspace carries
//! no serde).
//!
//! Both emitters are deterministic functions of the [`CampaignReport`]:
//! floats render with Rust's default `Display` (shortest round-trip
//! form), keys emit in fixed order, and nothing time- or host-dependent
//! enters the output. The parallel-vs-serial equivalence tests compare
//! these strings byte for byte.

use std::fmt::Write as _;

use hack_core::RESULT_SCHEMA_VERSION;

use crate::agg::CellStats;
use crate::engine::CampaignReport;

/// Escape a string for a JSON string literal.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quote a CSV field when it needs it (comma, quote, newline).
fn esc_csv(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn stats_json(s: &CellStats) -> String {
    format!(
        "{{\"n\":{},\"mean\":{},\"min\":{},\"max\":{},\"ci95\":{}}}",
        s.n, s.mean, s.min, s.max, s.ci95
    )
}

/// Render a campaign report as a single JSON object.
///
/// Top-level keys: `schema_version` (the result-codec version — the
/// campaign JSON schema and the cached-result schema version move
/// together), `campaign`, `axes`, `seeds`, `jobs`, `cells`.
pub fn campaign_json(r: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":{RESULT_SCHEMA_VERSION},\"campaign\":\"{}\",\"axes\":[{}],\"seeds\":[{}],",
        esc_json(&r.name),
        r.axis_names
            .iter()
            .map(|a| format!("\"{}\"", esc_json(a)))
            .collect::<Vec<_>>()
            .join(","),
        r.seeds
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    let _ = write!(
        out,
        "\"jobs\":{{\"total\":{},\"executed\":{},\"cache_hits\":{},\"complete\":{}}},\"cells\":[",
        r.jobs_total, r.jobs_executed, r.cache_hits, r.complete
    );
    for (i, c) in r.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cell\":{},\"labels\":[{}],\"goodput_mbps\":{},\"ap_first_try\":{},\"per_seed_goodput_mbps\":[{}]}}",
            c.cell,
            c.labels
                .iter()
                .map(|l| format!("\"{}\"", esc_json(l)))
                .collect::<Vec<_>>()
                .join(","),
            stats_json(&c.goodput),
            stats_json(&c.first_try),
            c.runs
                .iter()
                .map(|run| run.aggregate_goodput_mbps.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    out.push_str("]}");
    out
}

/// Render a campaign report as CSV: one aggregate row per cell.
pub fn campaign_csv(r: &CampaignReport) -> String {
    let mut out = String::from("campaign,cell");
    for a in &r.axis_names {
        let _ = write!(out, ",{}", esc_csv(a));
    }
    out.push_str(
        ",n,goodput_mean_mbps,goodput_min_mbps,goodput_max_mbps,goodput_ci95_mbps,first_try_mean\n",
    );
    for c in &r.cells {
        let _ = write!(out, "{},{}", esc_csv(&r.name), c.cell);
        for l in &c.labels {
            let _ = write!(out, ",{}", esc_csv(l));
        }
        let _ = writeln!(
            out,
            ",{},{},{},{},{},{}",
            c.goodput.n,
            c.goodput.mean,
            c.goodput.min,
            c.goodput.max,
            c.goodput.ci95,
            c.first_try.mean
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(esc_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(esc_csv("plain"), "plain");
        assert_eq!(esc_csv("a,b"), "\"a,b\"");
        assert_eq!(esc_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
