//! Declarative sweep specification.
//!
//! A [`SweepSpec`] is a base [`ScenarioConfig`] crossed with named
//! [`Axis`] dimensions and a seed bank. [`SweepSpec::expand`] flattens
//! the cross product into a deterministic, fully-resolved job list:
//! cells are enumerated odometer-style (the **last** declared axis
//! varies fastest) and seeds are innermost, so job `index` is
//! `cell * n_seeds + seed_slot`. Axis setters are applied in
//! declaration order, which lets a later axis read (and rewrite) the
//! value an earlier axis installed.

use std::sync::Arc;

use hack_core::ScenarioConfig;

/// A mutation applied to the base config for one point of an axis.
pub type Setter = Arc<dyn Fn(&mut ScenarioConfig) + Send + Sync>;

/// One labelled point along an axis.
pub struct AxisPoint {
    /// Human-readable label (appears in reports and emitted tables).
    pub label: String,
    /// The config mutation this point stands for.
    pub setter: Setter,
}

/// One named sweep dimension: an ordered list of labelled points.
pub struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

impl Axis {
    /// New empty axis called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a labelled point that applies `setter` to the config.
    #[must_use]
    pub fn point(
        mut self,
        label: impl Into<String>,
        setter: impl Fn(&mut ScenarioConfig) + Send + Sync + 'static,
    ) -> Self {
        self.points.push(AxisPoint {
            label: label.into(),
            setter: Arc::new(setter),
        });
        self
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points on this axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis has no points (such an axis yields zero jobs).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point labels, in declaration order.
    pub fn labels(&self) -> Vec<&str> {
        self.points.iter().map(|p| p.label.as_str()).collect()
    }
}

/// A fully-resolved unit of work: one cell of the sweep under one seed.
pub struct Job {
    /// Position in expansion order (`cell * n_seeds + seed_slot`).
    pub index: usize,
    /// Which cell of the cross product this job belongs to.
    pub cell: usize,
    /// The seed this run uses (already written into `cfg.seed`).
    pub seed: u64,
    /// One label per axis, identifying the cell.
    pub labels: Vec<String>,
    /// The fully-resolved scenario.
    pub cfg: ScenarioConfig,
    /// Content address: stable hash of `cfg` (seed included).
    pub key: String,
}

/// Declarative sweep: base config × axes × seed bank.
pub struct SweepSpec {
    name: String,
    base: ScenarioConfig,
    axes: Vec<Axis>,
    seeds: Vec<u64>,
}

impl SweepSpec {
    /// New sweep over `base`. With no axes and no explicit seed bank it
    /// expands to a single job: `base` under its own `seed`.
    pub fn new(name: impl Into<String>, base: ScenarioConfig) -> Self {
        let seeds = vec![base.seed];
        Self {
            name: name.into(),
            base,
            axes: Vec::new(),
            seeds,
        }
    }

    /// Add a sweep dimension. Axes apply in declaration order.
    #[must_use]
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Replace the seed bank with an explicit list.
    #[must_use]
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Replace the seed bank with `base, base+1, .., base+n-1`.
    #[must_use]
    pub fn seed_bank(mut self, base: u64, n: u64) -> Self {
        self.seeds = (0..n).map(|i| base + i).collect();
        self
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed bank.
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// Axis names, in declaration order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Number of cells in the cross product (1 when there are no axes).
    pub fn n_cells(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Total number of jobs (`n_cells × seeds`).
    pub fn n_jobs(&self) -> usize {
        self.n_cells() * self.seeds.len()
    }

    /// Decode cell `cell` into one point index per axis
    /// (odometer order: last axis fastest).
    fn cell_indices(&self, cell: usize) -> Vec<usize> {
        let mut idx = vec![0; self.axes.len()];
        let mut rest = cell;
        for (slot, axis) in idx.iter_mut().zip(&self.axes).rev() {
            *slot = rest % axis.len();
            rest /= axis.len();
        }
        idx
    }

    /// Flatten the sweep into its deterministic job list.
    pub fn expand(&self) -> Vec<Job> {
        let n_cells = self.n_cells();
        let mut jobs = Vec::with_capacity(self.n_jobs());
        for cell in 0..n_cells {
            let point_idx = self.cell_indices(cell);
            let mut cfg = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &p) in self.axes.iter().zip(&point_idx) {
                (axis.points[p].setter)(&mut cfg);
                labels.push(axis.points[p].label.clone());
            }
            for seed in &self.seeds {
                let mut job_cfg = cfg.clone();
                job_cfg.seed = *seed;
                let key = job_cfg.stable_hash_hex();
                jobs.push(Job {
                    index: jobs.len(),
                    cell,
                    seed: *seed,
                    labels: labels.clone(),
                    cfg: job_cfg,
                    key,
                });
            }
        }
        jobs
    }
}
