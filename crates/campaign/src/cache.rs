//! Content-addressed result cache.
//!
//! Each completed job's [`RunResult`] is stored under
//! `<dir>/<stable-hash-hex>.hkrr` using the versioned binary codec from
//! `hack_core::codec`. The key is the stable hash of the fully-resolved
//! config (seed included), so a cache hit is — by construction — the
//! result of the *identical* simulation. Decoding round-trips every
//! `f64` bit-exactly, which is what lets cached results feed the same
//! byte-identical aggregates as fresh runs.
//!
//! Writes are atomic (write to a unique temp file, then rename), so an
//! interrupted campaign never leaves a torn entry: the next run either
//! sees the complete file or recomputes. Any load error — missing file,
//! truncation, bad magic, or a [`RESULT_SCHEMA_VERSION`] mismatch from
//! an older binary — is a plain miss, never a panic.
//!
//! [`RESULT_SCHEMA_VERSION`]: hack_core::RESULT_SCHEMA_VERSION

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hack_core::{decode_run_result, encode_run_result, RunResult};

/// Uniquifies temp-file names within the process (no wall clock:
/// cache behaviour must not depend on time).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// On-disk result store addressed by config content hash.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The file a given key lives at.
    pub fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.hkrr"))
    }

    /// Fetch the cached result for `key`, or `None` on any miss:
    /// absent file, torn write, or schema mismatch.
    pub fn load(&self, key: &str) -> Option<RunResult> {
        let bytes = std::fs::read(self.path(key)).ok()?;
        decode_run_result(&bytes).ok()
    }

    /// Store `result` under `key`, atomically.
    pub fn store(&self, key: &str, result: &RunResult) -> std::io::Result<()> {
        let bytes = encode_run_result(result);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.path(key))
    }

    /// Number of committed entries currently on disk.
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        Path::new(&e.file_name())
                            .extension()
                            .is_some_and(|x| x == "hkrr")
                    })
                    .count()
            })
            .unwrap_or(0)
    }
}
