//! Streaming per-cell aggregation.
//!
//! Cells aggregate with Welford's online algorithm (via
//! [`hack_sim::RunningStats`]) in **seed order**: the engine reduces
//! results by job index, never by completion order, so the same sweep
//! produces bit-identical statistics whether it ran on one thread,
//! sixteen, or straight out of the cache.

use hack_sim::RunningStats;

/// Summary statistics for one metric over one cell's seed bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Number of samples.
    pub n: u64,
    /// Sample mean (0.0 when `n == 0`).
    pub mean: f64,
    /// Smallest sample (0.0 when `n == 0`).
    pub min: f64,
    /// Largest sample (0.0 when `n == 0`).
    pub max: f64,
    /// Half-width of the two-sided 95% confidence interval on the mean
    /// (Student-t, `n - 1` degrees of freedom; 0.0 when `n < 2`).
    pub ci95: f64,
}

impl CellStats {
    /// Aggregate `values` in the order given (one pass, Welford).
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = RunningStats::new();
        for &v in values {
            s.push(v);
        }
        let n = s.count();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                ci95: 0.0,
            };
        }
        let ci95 = if n < 2 {
            0.0
        } else {
            t95(n - 1) * s.std_dev() / (n as f64).sqrt()
        };
        Self {
            n,
            mean: s.mean(),
            min: s.min(),
            max: s.max(),
            ci95,
        }
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table values for `df ≤ 30`, the conventional stepped table
/// beyond (40, 60, 120, ∞ → z = 1.960). Monotonically non-increasing,
/// so interpolation is unnecessary for reporting purposes.
pub fn t95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_is_monotone_and_anchored() {
        assert_eq!(t95(1), 12.706);
        assert_eq!(t95(30), 2.042);
        assert_eq!(t95(1_000_000), 1.960);
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t95(df);
            assert!(t <= prev, "t95 must not increase with df (df={df})");
            prev = t;
        }
    }

    #[test]
    fn cell_stats_basics() {
        let s = CellStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // sd = 1, n = 3, df = 2 → ci95 = 4.303 / sqrt(3)
        assert!((s.ci95 - 4.303 / 3f64.sqrt()).abs() < 1e-12);

        let single = CellStats::from_values(&[5.0]);
        assert_eq!(single.ci95, 0.0);
        assert_eq!(single.mean, 5.0);

        let empty = CellStats::from_values(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn aggregation_is_order_sensitive_only_in_documented_ways() {
        // Same values, same order ⇒ bit-identical stats. (The engine
        // guarantees seed order; this guards the primitive.)
        let vals = [3.25, 1.5, 9.75, 2.125];
        let a = CellStats::from_values(&vals);
        let b = CellStats::from_values(&vals);
        assert_eq!(a, b);
    }
}
