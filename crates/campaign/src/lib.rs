//! # hack-campaign — parallel experiment campaigns
//!
//! A declarative sweep engine for `hack-core` scenarios:
//!
//! * [`spec`] — [`SweepSpec`]: a base [`hack_core::ScenarioConfig`]
//!   crossed with named [`Axis`] dimensions and a seed bank, expanded
//!   into a deterministic job list.
//! * [`engine`] — work-stealing execution bounded by
//!   `available_parallelism`, with results reduced in job order so
//!   parallel and serial campaigns emit byte-identical reports.
//! * [`cache`] — content-addressed on-disk result cache keyed by the
//!   stable hash of each fully-resolved config; interrupted campaigns
//!   resume from what they already computed.
//! * [`agg`] — streaming per-cell statistics (mean / min / max / 95%
//!   confidence interval via a Student-t table).
//! * [`emit`] — deterministic JSON and CSV emitters.
//!
//! ```no_run
//! use hack_campaign::{run_campaign, Axis, CampaignOptions, SweepSpec};
//! use hack_core::{HackMode, ScenarioBuilder, ScenarioConfig};
//!
//! let spec = SweepSpec::new("demo", ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build())
//!     .axis(
//!         Axis::new("mode")
//!             .point("tcp", |c| c.hack_mode = HackMode::Disabled)
//!             .point("hack", |c| c.hack_mode = HackMode::MoreData),
//!     )
//!     .seed_bank(1, 4);
//! let report = run_campaign(&spec, &CampaignOptions::default());
//! println!("{}", hack_campaign::campaign_json(&report));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cache;
pub mod emit;
pub mod engine;
pub mod spec;

pub use agg::{t95, CellStats};
pub use cache::ResultCache;
pub use emit::{campaign_csv, campaign_json};
pub use engine::{run_campaign, run_campaign_with, CampaignOptions, CampaignReport, CellReport};
pub use spec::{Axis, AxisPoint, Job, Setter, SweepSpec};
