//! Campaign-engine contract tests: parallel-vs-serial determinism,
//! cache-backed resume of an interrupted campaign, and schema-versioned
//! cache rejection.

use std::path::PathBuf;

use hack_campaign::{
    campaign_csv, campaign_json, run_campaign, Axis, CampaignOptions, ResultCache, SweepSpec,
};
use hack_core::{
    encode_run_result, run, HackMode, LossConfig, ScenarioBuilder, ScenarioConfig, RESULT_SCHEMA_VERSION,
};
use hack_sim::SimDuration;

/// Fresh scratch dir under the target-adjacent temp root, unique per
/// test and per process, wiped at entry so reruns start cold.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hack-campaign-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn base_cfg() -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build();
    // Short runs, but with a real steady-state window (default warmup
    // is 1 s, which would leave these sweeps measuring nothing).
    c.warmup = SimDuration::from_millis(200);
    c.duration = SimDuration::from_millis(800);
    c
}

/// A 2×2 sweep × 2 seeds = 8 jobs: loss axis × HACK-mode axis.
fn spec() -> SweepSpec {
    SweepSpec::new("contract", base_cfg())
        .axis(
            Axis::new("loss")
                .point("p2", |c| c.loss = LossConfig::PerClient(vec![0.02]))
                .point("p5", |c| c.loss = LossConfig::PerClient(vec![0.05])),
        )
        .axis(
            Axis::new("mode")
                .point("tcp", |c| c.hack_mode = HackMode::Disabled)
                .point("hack", |c| c.hack_mode = HackMode::MoreData),
        )
        .seed_bank(7, 2)
}

#[test]
fn expansion_is_odometer_ordered_with_seeds_innermost() {
    let jobs = spec().expand();
    assert_eq!(jobs.len(), 8);
    // Last axis (mode) varies fastest; seeds innermost.
    assert_eq!(jobs[0].labels, ["p2", "tcp"]);
    assert_eq!(jobs[0].seed, 7);
    assert_eq!(jobs[1].labels, ["p2", "tcp"]);
    assert_eq!(jobs[1].seed, 8);
    assert_eq!(jobs[2].labels, ["p2", "hack"]);
    assert_eq!(jobs[4].labels, ["p5", "tcp"]);
    assert_eq!(jobs[7].labels, ["p5", "hack"]);
    // Every job's key is distinct (configs differ at least by seed).
    let mut keys: Vec<_> = jobs.iter().map(|j| j.key.clone()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 8, "content addresses must be unique");
    // And the seed really landed in the config.
    assert_eq!(jobs[1].cfg.seed, 8);
}

#[test]
fn parallel_and_serial_emit_byte_identical_reports() {
    let serial = run_campaign(
        &spec(),
        &CampaignOptions {
            threads: 1,
            ..CampaignOptions::default()
        },
    );
    let parallel = run_campaign(
        &spec(),
        &CampaignOptions {
            threads: 4,
            ..CampaignOptions::default()
        },
    );
    assert!(serial.complete && parallel.complete);
    assert_eq!(serial.jobs_executed, 8);
    assert_eq!(parallel.jobs_executed, 8);
    // Guard against trivially-equal zeros: the sweep must measure
    // something.
    assert!(
        serial.cells.iter().all(|c| c.goodput.mean > 1.0),
        "sweep produced no goodput; the equality check below is vacuous"
    );
    assert_eq!(
        campaign_json(&serial).into_bytes(),
        campaign_json(&parallel).into_bytes(),
        "thread count leaked into the report"
    );
    assert_eq!(
        campaign_csv(&serial).into_bytes(),
        campaign_csv(&parallel).into_bytes()
    );
}

#[test]
fn campaign_of_one_axis_matches_direct_runs() {
    // A single-cell campaign is just run_seeds: per-seed results must
    // equal direct `run` calls on the same configs.
    let sweep = SweepSpec::new("single", base_cfg()).seed_bank(3, 2);
    let report = run_campaign(&sweep, &CampaignOptions::default());
    assert_eq!(report.cells.len(), 1);
    for (i, seed) in [3u64, 4].iter().enumerate() {
        let mut c = base_cfg();
        c.seed = *seed;
        assert_eq!(
            report.cells[0].runs[i].aggregate_goodput_mbps,
            run(c).aggregate_goodput_mbps,
            "slot {i} must hold seed {seed}"
        );
    }
}

#[test]
fn interrupted_campaign_resumes_from_cache() {
    let dir = scratch("resume");
    let killed = run_campaign(
        &spec(),
        &CampaignOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
            job_limit: Some(3),
        },
    );
    assert!(!killed.complete, "job_limit must truncate the campaign");
    assert_eq!(
        killed.jobs_executed, 3,
        "exactly the budgeted jobs should have run"
    );
    let cache = ResultCache::new(&dir).unwrap();
    assert_eq!(cache.entries(), 3, "each executed job must be committed");

    // Re-run to completion: the 3 finished jobs come from cache.
    let resumed = run_campaign(
        &spec(),
        &CampaignOptions {
            threads: 4,
            cache_dir: Some(dir.clone()),
            job_limit: None,
        },
    );
    assert!(resumed.complete);
    assert_eq!(resumed.cache_hits, 3);
    assert_eq!(resumed.jobs_executed, 5);

    // And the resumed aggregate equals a cold uncached campaign's,
    // byte for byte (cache_hits/executed live under "jobs", so strip
    // that bookkeeping by comparing the cells array).
    let cold = run_campaign(
        &spec(),
        &CampaignOptions {
            threads: 1,
            ..CampaignOptions::default()
        },
    );
    let cells = |s: &str| s[s.find("\"cells\":").unwrap()..].to_string();
    assert_eq!(
        cells(&campaign_json(&resumed)),
        cells(&campaign_json(&cold)),
        "cache round-trip changed an aggregate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_full_run_is_all_cache_hits() {
    let dir = scratch("hits");
    let opts = CampaignOptions {
        threads: 2,
        cache_dir: Some(dir.clone()),
        job_limit: None,
    };
    let first = run_campaign(&spec(), &opts);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.jobs_executed, 8);
    let second = run_campaign(&spec(), &opts);
    assert_eq!(second.cache_hits, 8, "identical sweep must fully hit");
    assert_eq!(second.jobs_executed, 0);
    // The "jobs" bookkeeping legitimately differs (hits vs executed);
    // everything downstream of the results must not.
    let cells = |s: &str| s[s.find("\"cells\":").unwrap()..].to_string();
    assert_eq!(
        cells(&campaign_json(&first)),
        cells(&campaign_json(&second)),
        "cached results must reproduce the aggregates byte for byte"
    );
    assert_eq!(
        campaign_csv(&first).into_bytes(),
        campaign_csv(&second).into_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_rejects_bumped_schema_version() {
    let dir = scratch("schema");
    let cache = ResultCache::new(&dir).unwrap();
    let result = run(base_cfg());
    cache.store("somekey", &result).unwrap();
    assert!(cache.load("somekey").is_some(), "sanity: fresh entry hits");

    // Forge a future-schema entry: bump the version field in place.
    let mut bytes = encode_run_result(&result);
    let off = hack_core::codec::SCHEMA_VERSION_OFFSET;
    bytes[off..off + 4].copy_from_slice(&(RESULT_SCHEMA_VERSION + 1).to_le_bytes());
    std::fs::write(cache.path("somekey"), &bytes).unwrap();
    assert!(
        cache.load("somekey").is_none(),
        "a bumped schema_version must be a cache miss, not a decode"
    );

    // Torn writes miss too.
    std::fs::write(cache.path("torn"), &encode_run_result(&result)[..10]).unwrap();
    assert!(cache.load("torn").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
