//! End-to-end simulation tests: whole-network runs must produce sane,
//! paper-shaped results.

use hack_core::{run, HackMode, LossConfig, ScenarioBuilder, ScenarioConfig, TrafficModel};
use hack_sim::SimDuration;

fn short(mut cfg: ScenarioConfig) -> ScenarioConfig {
    cfg.duration = SimDuration::from_secs(3);
    cfg
}

#[test]
fn udp_download_approaches_capacity_dot11a() {
    let cfg = short(ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build().with_udp());
    let mut cfg = cfg;
    cfg.sora_quirks = false;
    cfg.loss = LossConfig::Ideal;
    let res = run(cfg);
    // Ideal 802.11a UDP at 54 Mbps ≈ 28–30 Mbps application goodput.
    assert!(
        res.aggregate_goodput_mbps > 25.0 && res.aggregate_goodput_mbps < 32.0,
        "UDP goodput {:.2} Mbps out of range",
        res.aggregate_goodput_mbps
    );
    assert_eq!(res.collisions, 0, "unidirectional UDP cannot collide");
}

#[test]
fn tcp_download_dot11a_works_and_hack_beats_stock() {
    let mut stock = short(ScenarioBuilder::sora_testbed(1, HackMode::Disabled).build());
    stock.loss = LossConfig::Ideal;
    stock.sora_quirks = false;
    let mut hack = stock.clone();
    hack.hack_mode = HackMode::MoreData;

    let rs = run(stock);
    assert!(
        rs.aggregate_goodput_mbps > 15.0,
        "stock TCP/802.11a too slow: {:.2} Mbps",
        rs.aggregate_goodput_mbps
    );
    let rh = run(hack);
    assert!(
        rh.aggregate_goodput_mbps > rs.aggregate_goodput_mbps * 1.1,
        "HACK ({:.2}) must clearly beat stock ({:.2})",
        rh.aggregate_goodput_mbps,
        rs.aggregate_goodput_mbps
    );
    // HACK actually rode compressed ACKs.
    assert!(
        rh.driver[0].hacked_acks > 100,
        "too few hacked ACKs: {}",
        rh.driver[0].hacked_acks
    );
    // And the AP reconstituted them without persistent failures.
    assert!(rh.decompressor.decompressed > 100);
}

#[test]
fn tcp_download_dot11n_aggregation() {
    let stock = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build());
    let res = run(stock);
    // Theoretical TCP/802.11n at 150 Mbps is ~110-125 Mbps; with
    // collisions and TCP dynamics, expect a healthy fraction.
    assert!(
        res.aggregate_goodput_mbps > 70.0,
        "TCP/802.11n goodput {:.2} Mbps too low",
        res.aggregate_goodput_mbps
    );
    assert!(
        res.aggregate_goodput_mbps < 130.0,
        "goodput {:.2} exceeds theoretical capacity",
        res.aggregate_goodput_mbps
    );
}

#[test]
fn hack_more_data_beats_stock_dot11n() {
    let stock = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build());
    let hack = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
    let rs = run(stock);
    let rh = run(hack);
    assert!(
        rh.aggregate_goodput_mbps > rs.aggregate_goodput_mbps * 1.05,
        "HACK {:.2} vs stock {:.2}: expected ≥5% gain",
        rh.aggregate_goodput_mbps,
        rs.aggregate_goodput_mbps
    );
    assert!(rh.driver[0].hacked_acks > 100);
}

#[test]
fn determinism_same_seed_same_result() {
    let cfg = short(ScenarioBuilder::dot11n_download(150, 2, HackMode::MoreData).build());
    let a = run(cfg.clone());
    let b = run(cfg);
    assert_eq!(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);
    assert_eq!(a.ppdus, b.ppdus);
    assert_eq!(a.collisions, b.collisions);
}

#[test]
fn upload_is_symmetric() {
    let mut cfg = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
    cfg.traffic = TrafficModel::BulkUpload;
    let res = run(cfg);
    assert!(
        res.aggregate_goodput_mbps > 50.0,
        "upload goodput {:.2} Mbps too low",
        res.aggregate_goodput_mbps
    );
}

#[test]
fn byte_limited_transfer_completes() {
    let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::Disabled).build();
    cfg.transfer_bytes = Some(2_000_000);
    cfg.duration = SimDuration::from_secs(20);
    let res = run(cfg);
    assert!(res.completion().is_some(), "2 MB transfer must complete");
    let t = res.completion().unwrap().as_secs_f64();
    assert!(
        t < 2.0,
        "2 MB at >70 Mbps should take well under 2 s, took {t:.2}"
    );
}

#[test]
fn lossy_environment_recovers() {
    let mut cfg = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
    cfg.loss = LossConfig::PerClient(vec![0.10]);
    let res = run(cfg);
    assert!(
        res.aggregate_goodput_mbps > 20.0,
        "flow must survive 10% loss, got {:.2} Mbps",
        res.aggregate_goodput_mbps
    );
    // Retries happened…
    let ap = &res.mac[0];
    assert!(ap.mpdus_retried.get() > 0);
    // …and ROHC desync never persisted (some CRC failures are fine).
    assert!(res.decompressor.decompressed > 50);
}

#[test]
fn opportunistic_mode_rides_some_acks_without_regressing() {
    let stock = run(short(ScenarioBuilder::dot11n_download(
        150,
        1,
        HackMode::Disabled,
    ).build()));
    let opp = run(short(ScenarioBuilder::dot11n_download(
        150,
        1,
        HackMode::Opportunistic,
    ).build()));
    // The paper's observation: Opportunistic HACK is NOT a big win, but
    // it must not be a loss either, and it does ride some ACKs.
    assert!(opp.aggregate_goodput_mbps > stock.aggregate_goodput_mbps * 0.97);
    assert!(
        opp.driver[0].hacked_acks > 50,
        "{}",
        opp.driver[0].hacked_acks
    );
    // Dual-path bookkeeping: the AP never forwards more ACKs than the
    // receiver generated plus duplicates it could detect.
    assert!(opp.decompressor.decompressed <= opp.receiver_tcp[0].acks_sent);
}

#[test]
fn explicit_timer_mode_works_but_underperforms_more_data() {
    use hack_sim::SimDuration as D;
    let timer = run(short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::ExplicitTimer(D::from_millis(5))).build(),
    ));
    let more_data = run(short(ScenarioBuilder::dot11n_download(
        150,
        1,
        HackMode::MoreData,
    ).build()));
    assert!(timer.aggregate_goodput_mbps > 50.0);
    assert!(timer.driver[0].hacked_acks > 100);
    assert!(timer.driver[0].timer_flushes > 0, "the timer must fire");
    assert!(
        more_data.aggregate_goodput_mbps > timer.aggregate_goodput_mbps,
        "MORE DATA ({:.1}) must beat the explicit timer ({:.1}) — §3.2",
        more_data.aggregate_goodput_mbps,
        timer.aggregate_goodput_mbps
    );
}

#[test]
fn long_explicit_timer_stalls_the_ack_clock() {
    use hack_sim::SimDuration as D;
    // The §3.2 pathology: when the sender's entire window is delivered
    // in one batch and the AP queue drains, the held ACKs get no ride
    // and sit until the hold timer (or worse, the sender's RTO) fires.
    // A small receive window makes the queue-drain condition systematic
    // (with large windows the failure is bimodal across seeds — see the
    // ablate-timer experiment).
    let mut cfg = short(
        ScenarioBuilder::dot11n_download(150, 1, HackMode::ExplicitTimer(D::from_millis(100)))
            .build(),
    );
    // 32 KB ≈ 22 segments with the sender on the AP: the whole window
    // lands in the AP queue at once and goes out as a single A-MPDU,
    // after which the queue is empty and the sender is ACK-starved —
    // the paper's "entire congestion window … sent in a single A-MPDU".
    // (Behind the wired backhaul the segments trickle in and the AP
    // drains them in many small batches, so no single batch swallows
    // the window.)
    cfg.rcv_window = 32 * 1024;
    cfg.server_at_ap = true;
    let r = run(cfg);
    let mut baseline = short(ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build());
    baseline.rcv_window = 32 * 1024;
    baseline.server_at_ap = true;
    let b = run(baseline);
    // Every window's worth of ACKs waits out the 100 ms hold: goodput
    // collapses to roughly rwnd / hold ≈ 5 Mbps, far below MORE DATA
    // under the same window.
    assert!(
        r.aggregate_goodput_mbps < b.aggregate_goodput_mbps * 0.5,
        "expected a stalled flow, got {:.1} vs MORE DATA {:.1} Mbps",
        r.aggregate_goodput_mbps,
        b.aggregate_goodput_mbps
    );
}

#[test]
fn more_data_latch_tracks_queue_state() {
    // With a byte-limited transfer the final batches carry MORE DATA = 0
    // and the driver flushes: no ACKs may remain held at the end.
    let mut cfg = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
    cfg.transfer_bytes = Some(3_000_000);
    cfg.duration = SimDuration::from_secs(20);
    let r = run(cfg);
    assert!(r.completion().is_some());
    // Everything the receiver generated was either ridden or sent
    // natively (held-and-confirmed or flushed).
    let d = &r.driver[0];
    let accounted = d.hacked_acks + d.native_acks;
    let generated = r.receiver_tcp[0].acks_sent;
    assert!(
        accounted + 5 >= generated,
        "ACKs unaccounted for: generated {generated}, accounted {accounted}"
    );
}
