//! Builder-API equivalence: the new `ScenarioConfig::builder()` /
//! `World::builder()` paths must be indistinguishable — byte-identical
//! trace digests included — from the legacy positional constructors
//! they replace.

use hack_core::{
    run_traced, HackMode, LossConfig, ScenarioBuilder, ScenarioConfig, StandardKind,
    SupervisorConfig, World,
};
use hack_sim::SimDuration;
use hack_trace::TraceHandle;

fn traced_run(cfg: ScenarioConfig) -> (f64, [u8; 62]) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let r = run_traced(cfg, handle);
    (r.aggregate_goodput_mbps, ring.digest().to_bytes())
}

fn traced_builder(cfg: ScenarioConfig) -> (f64, [u8; 62]) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let r = World::builder(cfg).trace(handle).build().run();
    (r.aggregate_goodput_mbps, ring.digest().to_bytes())
}

fn short(mode: HackMode) -> ScenarioConfig {
    ScenarioBuilder::sora_testbed(1, mode)
        .duration(SimDuration::from_millis(1500))
        .build()
}

#[test]
fn scenario_builder_reproduces_dot11n_download() {
    // Deliberately exercises the deprecated shim: it must stay
    // hash-identical to the builder for the rest of its cycle.
    #[allow(deprecated)]
    let shim = ScenarioConfig::dot11n_download(150, 4, HackMode::MoreData);
    let built = ScenarioConfig::builder()
        .standard(StandardKind::Dot11n)
        .rate_mbps(150)
        .clients(4)
        .hack(HackMode::MoreData)
        .build();
    assert_eq!(
        shim.stable_hash(),
        built.stable_hash(),
        "builder and legacy constructor must resolve to the same config"
    );
}

#[test]
fn scenario_builder_reproduces_sora_testbed() {
    #[allow(deprecated)]
    let shim = ScenarioConfig::sora_testbed(2, HackMode::Disabled);
    let built = ScenarioConfig::builder()
        .standard(StandardKind::Dot11a)
        .rate_mbps(54)
        .clients(2)
        .hack(HackMode::Disabled)
        .server_at_ap(true)
        .ap_queue_cap(1000)
        .loss(LossConfig::PerClient(vec![0.025, 0.02]))
        .stagger(SimDuration::from_millis(200))
        .sora_quirks(true)
        .rcv_window(128 * 1024)
        .build();
    assert_eq!(shim.stable_hash(), built.stable_hash());
}

#[test]
fn world_builder_digest_matches_legacy_entry_points() {
    let cfg = short(HackMode::MoreData);
    let (g_legacy, d_legacy) = traced_run(cfg.clone());
    let (g_builder, d_builder) = traced_builder(cfg);
    assert_eq!(
        d_legacy, d_builder,
        "World::builder must construct the exact same world as run_traced"
    );
    assert_eq!(g_legacy, g_builder);
}

#[test]
fn world_builder_supervisor_matches_config_field() {
    // .supervisor(..) on the builder ≡ setting cfg.supervisor by hand.
    let mut by_field = short(HackMode::MoreData);
    by_field.loss = LossConfig::PerClient(vec![0.3]);
    let mut by_builder = by_field.clone();
    by_field.supervisor = Some(SupervisorConfig::default());

    let a = hack_core::run(by_field);
    let b = World::builder(by_builder.clone())
        .supervisor(SupervisorConfig::default())
        .run();
    assert_eq!(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);
    assert_eq!(a.supervisor.len(), b.supervisor.len());
    assert!(!b.supervisor.is_empty(), "supervision must be on");

    // And without the builder call, supervision stays off.
    by_builder.supervisor = None;
    let c = World::builder(by_builder).run();
    assert!(c.supervisor.is_empty());
}

#[test]
fn untraced_builder_matches_untraced_new() {
    let cfg = short(HackMode::Disabled);
    let a = World::new(cfg.clone()).run();
    let b = World::builder(cfg).build().run();
    assert_eq!(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);
    assert_eq!(a.events_dispatched, b.events_dispatched);
}
