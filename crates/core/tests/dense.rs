//! Dense multi-BSS worlds: the sharding oracle, parallel==serial
//! byte-identity at scale, and world-level pins for the mid-run
//! channel-dynamics bugfixes (loss-override composition under burst
//! media, Gilbert–Elliott state reset on station moves).

use hack_core::{
    run_dense, shard_configs, BssSpec, ChannelChange, ChannelEvent, DenseOptions, GeParams,
    HackMode, LossConfig, ScenarioConfig, StandardKind, World,
};
use hack_sim::SimDuration;
use hack_trace::TraceHandle;
use proptest::prelude::*;

fn digest_hex(ring: &hack_trace::RingSink) -> String {
    ring.digest()
        .to_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Run one scenario standalone with a trace ring; returns (digest,
/// per-flow goodput).
fn run_pinned(cfg: ScenarioConfig) -> (String, Vec<f64>) {
    let (handle, ring) = TraceHandle::ring(1 << 12);
    let result = World::builder(cfg).trace(handle).run();
    (digest_hex(&ring), result.flow_goodput_mbps)
}

fn dense_base(bss: Vec<BssSpec>, seed: u64, hack: HackMode) -> ScenarioConfig {
    ScenarioConfig::builder()
        .standard(StandardKind::Dot11n)
        .rate_mbps(150)
        .hack(hack)
        .bss(bss)
        .duration(SimDuration::from_millis(50))
        .stagger(SimDuration::from_millis(2))
        .warmup(SimDuration::from_millis(5))
        .seed(seed)
        .build()
}

proptest! {
    /// The sharding oracle: a multi-BSS world with ZERO cross-BSS
    /// interference edges (grid pitch 40 m > the 30 m co-channel range)
    /// must produce per-BSS trace digests and goodputs byte-identical
    /// to the same BSSs run as independent single-cell worlds. This is
    /// the correctness contract `run_dense` rests on — the shard
    /// engine adds no observable behaviour of its own.
    #[test]
    fn zero_edge_world_equals_independent_cells(
        n_bss in 2usize..5,
        clients in 1usize..3,
        chan_pick in proptest::collection::vec(0usize..3, 4),
        seed in 0u64..1_000,
        hack in any::<bool>(),
    ) {
        let bss: Vec<BssSpec> = (0..n_bss)
            .map(|i| BssSpec {
                x: (i as f64) * 40.0,
                y: 0.0,
                channel: [1u8, 6, 11][chan_pick[i % chan_pick.len()]],
                n_clients: clients,
            })
            .collect();
        let hack = if hack { HackMode::MoreData } else { HackMode::Disabled };
        let cfg = dense_base(bss, seed, hack);

        let parts = shard_configs(&cfg);
        prop_assert_eq!(parts.len(), n_bss, "40 m pitch must shard fully");

        let opts = DenseOptions { threads: 1, epoch: SimDuration::from_millis(10), digests: true };
        let report = run_dense(&cfg, &opts);

        for (shard, (sub, flows)) in report.shards.iter().zip(parts) {
            let (digest, goodput) = run_pinned(sub);
            prop_assert_eq!(
                shard.digest.as_deref(),
                Some(digest.as_str()),
                "shard {:?} diverged from its standalone single-cell run",
                shard.bss
            );
            for (j, &f) in flows.iter().enumerate() {
                prop_assert_eq!(report.flow_goodput_mbps[f], goodput[j]);
            }
        }
    }
}

/// The scale + parallelism acceptance test: a 16-BSS, 512-station
/// enterprise floor runs sharded on 4 threads with output byte-identical
/// to the serial (1-thread) execution — shard trace digests, the epoch
/// exchange ledger, and every merged flow goodput.
#[test]
fn parallel_equals_serial_at_16_bss_512_stations() {
    let cfg = {
        let mut c = dense_base(BssSpec::enterprise_floor(16, 32), 42, HackMode::MoreData);
        c.stagger = SimDuration::from_micros(500);
        c.duration = SimDuration::from_millis(60);
        c
    };
    assert_eq!(cfg.n_clients, 512);
    // 16 APs + 512 clients = 528 stations on the floor.

    let serial = run_dense(
        &cfg,
        &DenseOptions {
            threads: 1,
            epoch: SimDuration::from_millis(5),
            digests: true,
        },
    );
    let parallel = run_dense(
        &cfg,
        &DenseOptions {
            threads: 4,
            epoch: SimDuration::from_millis(5),
            digests: true,
        },
    );

    assert_eq!(serial.shards.len(), 16, "3-coloured floor shards fully");
    assert_eq!(serial.epochs, parallel.epochs);
    assert_eq!(
        serial.exchange_digest, parallel.exchange_digest,
        "epoch exchange ledgers diverged across thread counts"
    );
    for (s, p) in serial.shards.iter().zip(&parallel.shards) {
        assert_eq!(s.bss, p.bss);
        assert_eq!(s.digest, p.digest, "shard {:?} trace diverged", s.bss);
        assert_eq!(
            s.result.events_dispatched, p.result.events_dispatched,
            "shard {:?} dispatched different event counts",
            s.bss
        );
    }
    assert_eq!(serial.flow_goodput_mbps, parallel.flow_goodput_mbps);
    assert_eq!(
        serial.aggregate_goodput_mbps,
        parallel.aggregate_goodput_mbps
    );
    assert!(
        serial.aggregate_goodput_mbps > 0.0,
        "a 512-station floor must move bytes"
    );
}

/// World-level pin for the burst-medium loss-override fix: a mid-run
/// `ClientLoss` step on a Gilbert–Elliott medium must actually take
/// effect (it used to silently no-op). The step is observable (digest
/// differs from the no-dynamics run) and counted via the
/// `loss_override` trace event.
#[test]
fn client_loss_step_composes_on_burst_medium() {
    let base = |dynamics: Vec<ChannelEvent>| {
        ScenarioConfig::builder()
            .clients(2)
            .hack(HackMode::MoreData)
            .loss(LossConfig::Burst(GeParams {
                p_enter_bad: 0.02,
                p_exit_bad: 0.2,
                per_good: 0.001,
                per_bad: 0.3,
            }))
            .dynamics(dynamics)
            .duration(SimDuration::from_millis(120))
            .stagger(SimDuration::from_millis(2))
            .warmup(SimDuration::from_millis(5))
            .seed(7)
            .build()
    };
    let step = vec![ChannelEvent {
        at: SimDuration::from_millis(20),
        change: ChannelChange::ClientLoss {
            client: 0,
            per: 0.9,
        },
    }];

    let (h_with, ring_with) = TraceHandle::ring(1 << 12);
    let _ = World::builder(base(step)).trace(h_with).run();
    let (h_without, ring_without) = TraceHandle::ring(1 << 12);
    let _ = World::builder(base(Vec::new())).trace(h_without).run();

    let overrides: u64 = ring_with
        .counters()
        .snapshot()
        .iter()
        .find(|(name, _)| *name == "loss_override")
        .map_or(0, |&(_, n)| n);
    assert!(
        overrides >= 1,
        "ClientLoss on a burst medium must be counted, not dropped"
    );
    assert_ne!(
        digest_hex(&ring_with),
        digest_hex(&ring_without),
        "a 90% loss override must be observable in the trace"
    );
}

/// World-level pin for the mobility fix: moving a station and moving it
/// back is deterministic (same seed ⇒ same digest), and the move is
/// observable even on a pure burst medium — because `place_station`
/// resets the moved station's per-link Gilbert–Elliott state instead of
/// leaving it stale.
#[test]
fn move_then_restore_is_deterministic_and_resets_ge_state() {
    let base = |dynamics: Vec<ChannelEvent>| {
        ScenarioConfig::builder()
            .clients(2)
            .hack(HackMode::MoreData)
            .loss(LossConfig::Burst(GeParams {
                p_enter_bad: 0.1,
                p_exit_bad: 0.05,
                per_good: 0.001,
                per_bad: 0.8,
            }))
            .dynamics(dynamics)
            .duration(SimDuration::from_millis(120))
            .stagger(SimDuration::from_millis(2))
            .warmup(SimDuration::from_millis(5))
            .seed(9)
            .build()
    };
    let move_and_back = || {
        vec![
            ChannelEvent {
                at: SimDuration::from_millis(30),
                change: ChannelChange::MoveClient {
                    client: 0,
                    x: 40.0,
                    y: 0.0,
                },
            },
            ChannelEvent {
                at: SimDuration::from_millis(60),
                change: ChannelChange::MoveClient {
                    client: 0,
                    x: 3.0,
                    y: 0.0,
                },
            },
        ]
    };

    let (ha, ra) = TraceHandle::ring(1 << 12);
    let _ = World::builder(base(move_and_back())).trace(ha).run();
    let (hb, rb) = TraceHandle::ring(1 << 12);
    let _ = World::builder(base(move_and_back())).trace(hb).run();
    assert_eq!(
        digest_hex(&ra),
        digest_hex(&rb),
        "move-then-restore must be seed-deterministic"
    );

    let (hc, rc) = TraceHandle::ring(1 << 12);
    let _ = World::builder(base(Vec::new())).trace(hc).run();
    assert_ne!(
        digest_hex(&ra),
        digest_hex(&rc),
        "the GE reset on a move must be observable (stale state was the bug)"
    );
}

/// Degenerate shapes must not trip the reception-capacity underflow or
/// the domain bookkeeping: a single-BSS single-client dense world, and
/// a two-BSS world where one cell has exactly one client.
#[test]
fn degenerate_dense_worlds_run() {
    let tiny = dense_base(
        vec![BssSpec {
            x: 0.0,
            y: 0.0,
            channel: 1,
            n_clients: 1,
        }],
        5,
        HackMode::MoreData,
    );
    let report = run_dense(&tiny, &DenseOptions::default());
    assert_eq!(report.shards.len(), 1);
    assert!(report.aggregate_goodput_mbps > 0.0);

    let lopsided = dense_base(
        vec![
            BssSpec {
                x: 0.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 100.0,
                y: 0.0,
                channel: 1,
                n_clients: 3,
            },
        ],
        6,
        HackMode::Disabled,
    );
    let report = run_dense(&lopsided, &DenseOptions::default());
    assert_eq!(report.shards.len(), 2);
    assert_eq!(report.flow_goodput_mbps.len(), 4);
    assert!(report.flow_goodput_mbps.iter().all(|&g| g >= 0.0));
}
