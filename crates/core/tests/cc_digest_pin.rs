//! Digest-pin regression: `CcKind::Reno` through the pluggable
//! congestion-control trait must stay **byte-identical** to the
//! pre-trait NewReno on the standard seed bank.
//!
//! The twelve digests below were captured from the monolithic
//! implementation immediately before the `CongestionControl` extraction
//! (sora_testbed and dot11n_download, HACK off/on, seeds 1–3, 1.5 s).
//! Any arithmetic drift in the default sender — a reordered cwnd
//! update, a stray trace event, a pacer that isn't inert for Reno —
//! shows up here as a digest mismatch long before it would move a
//! goodput curve.
//!
//! The companion test proves the knob is *live*: a non-Reno controller
//! on the same cell must produce a different trace.

use hack_core::{run_traced, CcKind, HackMode, ScenarioBuilder};
use hack_sim::SimDuration;
use hack_trace::TraceHandle;

/// (scenario, mode, seed) → digest of the 1.5 s trace, captured
/// pre-refactor.
const PINS: &[(&str, &str, u64, &str)] = &[
    ("sora", "off", 1, "4854524401006883000000000000e38fdcc6fc7d028e4d42000000000000fe3b0000000000001b0500000000000001000000000000000100000000000000"),
    ("sora", "off", 2, "4854524401004484000000000000fbe6334df7abfcf6b042000000000000613c000000000000310500000000000001000000000000000100000000000000"),
    ("sora", "off", 3, "485452440100d8830000000000005b8667260a98d1167442000000000000373c0000000000002b0500000000000001000000000000000100000000000000"),
    ("sora", "moredata", 1, "485452440100cf7c000000000000ff3e723e364786e2bb34000000000000b7340000000000007306000000000000e90c0000000000000100000000000000"),
    ("sora", "moredata", 2, "485452440100f47c00000000000035f43d22a0437ba1c734000000000000c4340000000000007706000000000000f10c0000000000000100000000000000"),
    ("sora", "moredata", 3, "485452440100067d000000000000d580932699032804c834000000000000c6340000000000007c06000000000000fb0c0000000000000100000000000000"),
    ("11n", "off", 1, "485452440100401c00000000000087d88aa1c7c38229d90b000000000000610b000000000000020500000000000002000000000000000200000000000000"),
    ("11n", "off", 2, "48545244010009210000000000003c294ec350e6e692c90b000000000000440b000000000000f80900000000000002000000000000000200000000000000"),
    ("11n", "off", 3, "485452440100a720000000000000c4dcef1075186b61550d0000000000007e0c000000000000d00600000000000002000000000000000200000000000000"),
    ("11n", "moredata", 1, "485452440100565600000000000026c740e257521f2d0707000000000000c5090000000000009405000000000000f43f0000000000000200000000000000"),
    ("11n", "moredata", 2, "485452440100c0570000000000006b7c09eb5641f7cb4d07000000000000060a000000000000bf05000000000000ac400000000000000200000000000000"),
    ("11n", "moredata", 3, "48545244010079570000000000007df50cbc90b071b2f906000000000000bb09000000000000bb0500000000000008410000000000000200000000000000"),
];

fn cell(scenario: &str, mode: &str, seed: u64, cc: CcKind) -> String {
    let mode = match mode {
        "off" => HackMode::Disabled,
        "moredata" => HackMode::MoreData,
        _ => unreachable!(),
    };
    let mut cfg = match scenario {
        "sora" => ScenarioBuilder::sora_testbed(1, mode).build(),
        "11n" => ScenarioBuilder::dot11n_download(150, 2, mode).build(),
        _ => unreachable!(),
    };
    cfg.duration = SimDuration::from_millis(1500);
    cfg.seed = seed;
    cfg.cc = cc;
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let _ = run_traced(cfg, handle);
    ring.digest()
        .to_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

#[test]
fn reno_is_digest_identical_to_the_pre_trait_sender() {
    for &(scenario, mode, seed, pin) in PINS {
        let got = cell(scenario, mode, seed, CcKind::Reno);
        assert_eq!(
            got, pin,
            "trace drifted: {scenario}/{mode} seed {seed} no longer matches \
             the pre-refactor NewReno digest"
        );
    }
}

#[test]
fn non_reno_controllers_change_the_trace() {
    // The cc knob must actually reach the senders: CUBIC on a pinned
    // cell has to produce a different trace (different cwnd trajectory
    // ⇒ different TcpCwnd events at minimum).
    let (scenario, mode, seed, pin) = ("sora", "off", 1, PINS[0].3);
    let cubic = cell(scenario, mode, seed, CcKind::Cubic);
    assert_ne!(
        cubic, pin,
        "CcKind::Cubic produced the Reno trace — knob dead?"
    );
    // BbrLite additionally emits CcStateChange events no other
    // controller produces.
    let bbr = cell(scenario, mode, seed, CcKind::Bbr);
    assert_ne!(bbr, pin, "CcKind::Bbr produced the Reno trace — knob dead?");
    assert_ne!(bbr, cubic);
}
