//! Supervisor integration tests: seed determinism with supervision
//! enabled, graceful fallback under the PR 3 fault matrix, permanent
//! clean fallback for non-HACK peers, and recovery after the channel
//! heals.

use hack_core::{
    run_traced, ChannelChange, ChannelEvent, CorruptModel, FlowHealth, GeParams, HackMode,
    LossConfig, RunResult, ScenarioBuilder, ScenarioConfig, SupervisorConfig,
};
use hack_sim::SimDuration;
use hack_trace::{Digest, TraceHandle};

fn traced(c: ScenarioConfig) -> (RunResult, Digest) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let res = run_traced(c, handle);
    let digest = ring.digest();
    (res, digest)
}

/// The PR 3 "everything on" fault scenario: bursty Gilbert–Elliott
/// loss, corrupted delivery (FCS-caught and FCS-escaping), and mid-run
/// dynamics — the environment the supervisor must ride out without
/// giving up HACK's edge.
fn faulty_cfg(mode: HackMode, seed: u64) -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, mode).build();
    c.duration = SimDuration::from_secs(2);
    c.seed = seed;
    c.loss = LossConfig::Burst(GeParams::bursty(0.08, 6.0));
    c.corrupt = Some(CorruptModel {
        data_frac: 0.5,
        control_per: 0.02,
        fcs_miss: 0.25,
    });
    c.dynamics = vec![
        ChannelEvent {
            at: SimDuration::from_millis(600),
            change: ChannelChange::ClientLoss {
                client: 0,
                per: 0.1,
            },
        },
        ChannelEvent {
            at: SimDuration::from_millis(1200),
            change: ChannelChange::SnrOffsetDb(-3.0),
        },
    ];
    c
}

/// A loss storm harsh enough to starve the HACK path of good signals
/// (LL-ACK timeouts dominate, blob decodes dry up), healing mid-run —
/// the degrade → fallback → probation → recovery arc end to end.
fn storm_then_heal(seed: u64) -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
    c.duration = SimDuration::from_secs(4);
    c.seed = seed;
    c.loss = LossConfig::PerClient(vec![0.6]);
    c.dynamics = vec![ChannelEvent {
        at: SimDuration::from_millis(1500),
        change: ChannelChange::ClientLoss {
            client: 0,
            per: 0.02,
        },
    }];
    c
}

fn supervised(mut c: ScenarioConfig) -> ScenarioConfig {
    c.supervisor = Some(SupervisorConfig::default());
    c
}

/// Supervision must not cost the determinism contract: two same-seed
/// supervised runs through the full fault matrix replay byte-for-byte.
#[test]
fn supervised_run_is_seed_deterministic() {
    let (ra, da) = traced(supervised(faulty_cfg(HackMode::MoreData, 13)));
    let (rb, db) = traced(supervised(faulty_cfg(HackMode::MoreData, 13)));
    assert!(da.events > 1000, "trace suspiciously small: {}", da.events);
    assert_eq!(
        da.to_bytes(),
        db.to_bytes(),
        "supervision broke seed determinism"
    );
    assert_eq!(ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps);
    assert_eq!(ra.supervisor.len(), 1);
    let (_, dc) = traced(supervised(faulty_cfg(HackMode::MoreData, 14)));
    assert_ne!(da.to_bytes(), dc.to_bytes(), "seeds must still diverge");
}

/// Under the corrupting/bursty fault matrix, supervised TCP/HACK must
/// hold its own against plain TCP on the same seeds and channel model
/// (≥ on aggregate, within noise on every seed), and no flow may end
/// the run stalled (zero goodput in the final window).
#[test]
fn supervised_hack_matches_plain_tcp_under_faults() {
    let mut tcp_total = 0.0;
    let mut sup_total = 0.0;
    for seed in [13, 21, 34, 89] {
        let (tcp, _) = traced(faulty_cfg(HackMode::Disabled, seed));
        let (sup, _) = traced(supervised(faulty_cfg(HackMode::MoreData, seed)));
        tcp_total += tcp.aggregate_goodput_mbps;
        sup_total += sup.aggregate_goodput_mbps;
        assert!(
            sup.aggregate_goodput_mbps >= tcp.aggregate_goodput_mbps * 0.9,
            "seed {seed}: supervised HACK {:.3} Mbps fell far behind plain TCP {:.3} Mbps",
            sup.aggregate_goodput_mbps,
            tcp.aggregate_goodput_mbps
        );
        for (flow, &g) in sup.flow_goodput_final_mbps.iter().enumerate() {
            assert!(g > 0.0, "seed {seed}: flow {flow} ended the run stalled");
        }
    }
    assert!(
        sup_total >= tcp_total,
        "supervised HACK aggregate {sup_total:.3} Mbps < plain TCP {tcp_total:.3} Mbps"
    );
}

/// A client that never advertised the HACK capability bit gets a
/// permanent, clean fallback: zero hacked ACKs, the supervisor rests in
/// `PeerIncapable`, and the flow still runs at full native speed.
#[test]
fn incapable_peer_is_permanent_clean_fallback() {
    let mut c = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
    c.duration = SimDuration::from_secs(2);
    c.seed = 7;
    c.client_hack_capable = vec![false];
    let (r, _) = traced(supervised(c));
    assert_eq!(r.supervisor[0].final_state, FlowHealth::PeerIncapable);
    assert_eq!(r.supervisor[0].stats.fallbacks, 1);
    assert_eq!(r.supervisor[0].stats.probations, 0, "no probes, ever");
    assert_eq!(
        r.driver[0].hacked_acks, 0,
        "ACKs rode LL ACKs toward a peer that cannot decode them"
    );
    assert!(r.driver[0].native_acks > 0, "flow never ACKed at all");
    assert!(
        r.aggregate_goodput_mbps > 1.0,
        "native fallback flow stalled: {:.3} Mbps",
        r.aggregate_goodput_mbps
    );
}

/// A flow knocked into fallback by a loss storm must come back: once
/// the channel heals, probation re-enables HACK and the flow ends the
/// run healthy with live goodput.
#[test]
fn supervisor_recovers_after_channel_heals() {
    for seed in [5, 9, 17] {
        let (r, _) = traced(supervised(storm_then_heal(seed)));
        let report = r.supervisor[0];
        assert!(
            report.stats.fallbacks >= 1,
            "seed {seed}: the storm never tripped the supervisor: {report:?}"
        );
        assert!(
            report.stats.probations >= 1,
            "seed {seed}: fallback never probed for recovery"
        );
        assert!(
            report.stats.recoveries >= 1,
            "seed {seed}: probation never promoted back to healthy"
        );
        assert_eq!(
            report.final_state,
            FlowHealth::Healthy,
            "seed {seed}: flow did not end healthy on a healed channel"
        );
        assert!(
            r.flow_goodput_final_mbps[0] > 10.0,
            "seed {seed}: post-recovery goodput anaemic: {:.3} Mbps",
            r.flow_goodput_final_mbps[0]
        );
    }
}
