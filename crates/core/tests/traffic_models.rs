//! End-to-end coverage of the traffic-model layer: every
//! [`TrafficModel`] drives a whole-network world, the per-class
//! metrics API reports what the workload did, and any mix of models
//! re-runs byte-identically under its seed.

use hack_core::{
    run, run_traced, ArrivalDist, CbrConfig, HackMode, OnOffConfig, RunResult, ScenarioBuilder,
    ScenarioConfig, ShortFlowConfig, SizeDist, TrafficClass, TrafficModel,
};
use hack_sim::SimDuration;
use hack_trace::TraceHandle;
use proptest::prelude::*;

/// A fast 802.11n cell with a real steady-state window.
fn cell(n_clients: usize, mode: HackMode, ms: u64) -> ScenarioBuilder {
    ScenarioBuilder::dot11n_download(150, n_clients, mode)
        .duration(SimDuration::from_millis(ms))
        .warmup(SimDuration::from_millis(ms / 5))
        .stagger(SimDuration::from_millis(2))
}

fn traced(cfg: ScenarioConfig) -> (RunResult, Vec<u8>) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let r = run_traced(cfg, handle);
    (r, ring.digest().to_bytes().to_vec())
}

/// Deterministic short-flow shape: fixed sizes and think times so the
/// expected transfer count is predictable.
fn short_cfg(size: u64, think_ms: u64, reuse: bool) -> ShortFlowConfig {
    ShortFlowConfig {
        sizes: SizeDist::Fixed(size),
        think: ArrivalDist::Fixed(SimDuration::from_millis(think_ms)),
        reuse,
    }
}

// ----------------------------------------------------------------------
// Short flows
// ----------------------------------------------------------------------

#[test]
fn short_flows_complete_many_transfers() {
    let r = run(
        cell(1, HackMode::MoreData, 3_000)
            .traffic(TrafficModel::ShortFlows(short_cfg(50_000, 5, true)))
            .build(),
    );
    let c = r.class(TrafficClass::Short).expect("short class report");
    assert_eq!(c.flows, 1);
    assert!(
        c.transfers >= 20,
        "50 KB transfers every ~5 ms think over 3 s should finish dozens, got {}",
        c.transfers
    );
    assert_eq!(
        c.fct.count(),
        c.transfers,
        "one FCT sample per completed transfer"
    );
    // 50 KB at >70 Mbps is a few ms; the sketch's relative error is
    // ~7%, so even the p99 must sit far below a second.
    let p99 = c.fct.quantile(0.99).unwrap();
    assert!(
        p99 < 1_000_000_000,
        "p99 FCT {p99} ns is not a plausible 50 KB transfer time"
    );
    assert!(c.goodput_mbps > 1.0, "goodput {}", c.goodput_mbps);
    // The flow must still be alive at the end of the run.
    assert!(r.flow_goodput_final_mbps[0] > 0.0, "short flow stalled");
}

#[test]
fn short_flows_without_reuse_rekey_and_still_hack() {
    let reuse = run(
        cell(1, HackMode::MoreData, 2_500)
            .traffic(TrafficModel::ShortFlows(short_cfg(100_000, 5, true)))
            .build(),
    );
    let fresh = run(
        cell(1, HackMode::MoreData, 2_500)
            .traffic(TrafficModel::ShortFlows(short_cfg(100_000, 5, false)))
            .build(),
    );
    for (label, r) in [("reuse", &reuse), ("fresh", &fresh)] {
        let c = r.class(TrafficClass::Short).expect("short class");
        assert!(c.transfers >= 10, "{label}: only {} transfers", c.transfers);
    }
    // A persistent connection keeps its congestion window across
    // transfers, so back-to-back bursts pile up at the AP and the
    // MORE DATA latch engages. Fresh connections restart in slow
    // start every time: at 100 KB the per-burst backlog never grows
    // enough to set MORE DATA, so reuse must hack strictly more and
    // pay fewer native ACKs per transfer.
    let per = |r: &RunResult, field: u64| {
        let t = r.class(TrafficClass::Short).unwrap().transfers.max(1);
        field as f64 / t as f64
    };
    assert!(
        reuse.driver[0].hacked_acks > 0,
        "reuse: HACK never rode an ACK across the short-flow lifecycle"
    );
    assert!(
        per(&reuse, reuse.driver[0].hacked_acks) > per(&fresh, fresh.driver[0].hacked_acks),
        "persistent connections must hold more ACKs per transfer than fresh ones"
    );
    assert!(
        per(&fresh, fresh.driver[0].native_acks) > per(&reuse, reuse.driver[0].native_acks),
        "fresh connections must pay more native ACKs per transfer (handshake + slow start)"
    );
    // But re-keying is not a permanent HACK outage: once a single
    // transfer is long enough to refill the AP queue past one
    // aggregation batch, the rebuilt five-tuple's context forms and
    // held ACKs flow again on the brand-new connection.
    let fresh_big = run(
        cell(1, HackMode::MoreData, 2_500)
            .traffic(TrafficModel::ShortFlows(short_cfg(300_000, 5, false)))
            .build(),
    );
    assert!(
        fresh_big.driver[0].hacked_acks > 0,
        "re-keyed connections never re-engaged HACK even at 300 KB transfers"
    );
}

#[test]
fn zero_and_one_byte_short_flows_never_stall() {
    for size in [0u64, 1] {
        for reuse in [true, false] {
            let r = run(
                cell(1, HackMode::MoreData, 1_500)
                    .traffic(TrafficModel::ShortFlows(short_cfg(size, 2, reuse)))
                    .build(),
            );
            let c = r.class(TrafficClass::Short).expect("short class");
            assert!(
                c.transfers >= 10,
                "{size}-byte transfers (reuse={reuse}) wedged after {} rounds \
                 — the restart loop must survive degenerate sizes",
                c.transfers
            );
        }
    }
}

// ----------------------------------------------------------------------
// Bidirectional bulk
// ----------------------------------------------------------------------

#[test]
fn bidirectional_holds_acks_on_both_sides() {
    let r = run(
        cell(1, HackMode::MoreData, 2_500)
            .traffic(TrafficModel::Bidirectional)
            .build(),
    );
    let c = r.class(TrafficClass::Bidir).expect("bidir class");
    assert_eq!(c.flows, 1);
    // Both data directions must move real bytes (the meter sums both
    // receivers of the flow).
    assert!(c.goodput_mbps > 20.0, "bidir goodput {}", c.goodput_mbps);
    // The paper's punt, made to work: the client driver compresses the
    // download's ACK stream AND the AP driver compresses the upload's.
    assert!(
        r.driver[0].hacked_acks > 50,
        "client side held only {} ACKs",
        r.driver[0].hacked_acks
    );
    assert!(
        r.driver_ap[0].hacked_acks > 50,
        "AP side held only {} ACKs — the reverse compressor never engaged",
        r.driver_ap[0].hacked_acks
    );
}

#[test]
fn bidirectional_beats_its_own_stock_baseline() {
    let stock = run(
        cell(1, HackMode::Disabled, 2_500)
            .traffic(TrafficModel::Bidirectional)
            .build(),
    );
    let hack = run(
        cell(1, HackMode::MoreData, 2_500)
            .traffic(TrafficModel::Bidirectional)
            .build(),
    );
    // With ACKs of both directions off the air, HACK must not regress
    // the combined goodput (it wins on the contended reverse path).
    assert!(
        hack.aggregate_goodput_mbps > stock.aggregate_goodput_mbps * 0.97,
        "bidir HACK {:.1} vs stock {:.1}",
        hack.aggregate_goodput_mbps,
        stock.aggregate_goodput_mbps
    );
}

// ----------------------------------------------------------------------
// Paced UDP: CBR and on/off
// ----------------------------------------------------------------------

#[test]
fn cbr_reports_latency_and_jitter_percentiles() {
    let r = run(
        cell(1, HackMode::Disabled, 3_000)
            .traffic(TrafficModel::Cbr(CbrConfig::default()))
            .build(),
    );
    let c = r.class(TrafficClass::Cbr).expect("cbr class");
    // 64 kbit/s in 160-byte frames = one packet per 20 ms ⇒ ~150 over
    // 3 s; nearly all should arrive on an ideal channel.
    assert!(c.latency.count() > 100, "latency samples {}", c.latency.count());
    assert!(c.jitter.count() > 90, "jitter samples {}", c.jitter.count());
    let p95_ms = c.latency.quantile(0.95).unwrap() as f64 / 1e6;
    assert!(
        p95_ms < 50.0,
        "p95 one-way latency {p95_ms:.2} ms on an idle ideal cell"
    );
    // Offered 64 kbps; steady-state goodput should be close.
    assert!(
        (0.03..0.1).contains(&c.goodput_mbps),
        "CBR goodput {} Mbps vs 0.064 offered",
        c.goodput_mbps
    );
}

#[test]
fn onoff_source_delivers_part_time() {
    let model = TrafficModel::OnOff(OnOffConfig {
        on: ArrivalDist::Fixed(SimDuration::from_millis(100)),
        off: ArrivalDist::Fixed(SimDuration::from_millis(100)),
        rate_kbps: 2_000,
        payload_bytes: 1_200,
    });
    let r = run(cell(1, HackMode::Disabled, 3_000).traffic(model).build());
    let c = r.class(TrafficClass::OnOff).expect("onoff class");
    // On half the time at 2 Mbps ⇒ ~1 Mbps long-run average; leave wide
    // margins for period phasing against the measurement window.
    assert!(
        (0.2..1.9).contains(&c.goodput_mbps),
        "on/off goodput {} Mbps",
        c.goodput_mbps
    );
    assert!(c.latency.count() > 50, "latency samples {}", c.latency.count());
}

// ----------------------------------------------------------------------
// Mixed worlds and the per-class metrics API
// ----------------------------------------------------------------------

fn mixed_cfg(mode: HackMode) -> ScenarioConfig {
    cell(3, mode, 2_500)
        .traffic_mix(vec![
            TrafficModel::BulkDownload,
            TrafficModel::ShortFlows(short_cfg(50_000, 10, true)),
            TrafficModel::Cbr(CbrConfig::default()),
        ])
        .build()
}

#[test]
fn mixed_world_reports_every_class() {
    let r = run(mixed_cfg(HackMode::MoreData));
    assert_eq!(r.classes.len(), 3, "three classes, one report each");
    // Reports come out in wire-code order.
    let codes: Vec<u8> = r.classes.iter().map(|c| c.class.code()).collect();
    let mut sorted = codes.clone();
    sorted.sort_unstable();
    assert_eq!(codes, sorted);
    let bulk = r.class(TrafficClass::Bulk).expect("bulk");
    let short = r.class(TrafficClass::Short).expect("short");
    let cbr = r.class(TrafficClass::Cbr).expect("cbr");
    assert!(bulk.goodput_mbps > 10.0, "bulk {}", bulk.goodput_mbps);
    assert!(short.transfers > 5 && short.goodput_mbps > 0.5);
    assert!(cbr.latency.count() > 50);
    // The saturating bulk flow has no byte budget: it never completes.
    assert_eq!(r.flow_completion, vec![None, None, None]);
    assert_eq!(r.completion(), None);
    // All three flows alive at the end.
    for (i, g) in r.flow_goodput_final_mbps.iter().enumerate() {
        assert!(*g > 0.0, "flow {i} stalled in the mixed world");
    }
}

#[test]
fn per_flow_completion_times_drive_the_aggregate() {
    let r = run(
        cell(2, HackMode::MoreData, 20_000)
            .transfer_bytes(1_500_000)
            .build(),
    );
    assert_eq!(r.flow_completion.len(), 2);
    let times: Vec<_> = r
        .flow_completion
        .iter()
        .map(|c| c.expect("1.5 MB must complete"))
        .collect();
    // The derived aggregate is the max of the per-flow times (the old
    // single-Option field's semantics).
    assert_eq!(r.completion(), Some(times[0].max(times[1])));
    let bulk = r.class(TrafficClass::Bulk).expect("bulk");
    assert_eq!(bulk.transfers, 2);
    assert_eq!(bulk.fct.count(), 2);
}

// ----------------------------------------------------------------------
// Determinism
// ----------------------------------------------------------------------

#[test]
fn mixed_world_reruns_byte_identical() {
    let (ra, da) = traced(mixed_cfg(HackMode::MoreData));
    let (rb, db) = traced(mixed_cfg(HackMode::MoreData));
    assert_eq!(da, db, "same seed must reproduce the trace bit for bit");
    assert_eq!(ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps);
    assert_eq!(ra.classes, rb.classes);
}

/// The model pool the mix proptest draws from: every variant, with
/// parameters small enough for sub-second worlds.
fn model_pool(ix: usize) -> TrafficModel {
    match ix % 7 {
        0 => TrafficModel::BulkDownload,
        1 => TrafficModel::BulkUpload,
        2 => TrafficModel::Bidirectional,
        3 => TrafficModel::ShortFlows(short_cfg(20_000, 3, true)),
        4 => TrafficModel::ShortFlows(ShortFlowConfig {
            sizes: SizeDist::BoundedPareto {
                alpha: 1.2,
                min: 1_000,
                max: 100_000,
            },
            think: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(5),
            },
            reuse: false,
        }),
        5 => TrafficModel::Cbr(CbrConfig {
            rate_kbps: 256,
            payload_bytes: 160,
        }),
        _ => TrafficModel::OnOff(OnOffConfig {
            on: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(50),
            },
            off: ArrivalDist::Exponential {
                mean: SimDuration::from_millis(50),
            },
            rate_kbps: 1_000,
            payload_bytes: 600,
        }),
    }
}

proptest! {
    /// ANY mix of traffic models re-runs byte-identically: the trace
    /// digest — every PHY draw, MAC exchange, TCP byte, and ROHC blob —
    /// is a pure function of the seed, and per-flow RNG forks keep one
    /// flow's model from perturbing another's draws.
    #[test]
    fn any_traffic_mix_reruns_byte_identical(
        seed in 0u64..1_000,
        picks in proptest::collection::vec(0usize..7, 1..4),
    ) {
        let mix: Vec<TrafficModel> = picks.iter().map(|&p| model_pool(p)).collect();
        let cfg = cell(mix.len(), HackMode::MoreData, 400)
            .traffic_mix(mix)
            .seed(seed)
            .build();
        let (ra, da) = traced(cfg.clone());
        let (rb, db) = traced(cfg);
        prop_assert_eq!(da, db, "traffic mix broke determinism");
        prop_assert_eq!(ra.classes, rb.classes);
        prop_assert_eq!(ra.events_dispatched, rb.events_dispatched);
    }
}
