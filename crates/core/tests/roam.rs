//! Mid-flow AP roaming: handoff smoke tests, seed determinism under
//! roam schedules, HACK renegotiation across capable/incapable APs, the
//! MoveClient-crosses-threshold regression, estimator-divergence
//! quietness, dense roam-closure sharding, and the world-level roam
//! liveness proptest.

use hack_core::{
    run, run_auto, run_dense, run_traced, shard_configs, BssSpec, ChannelChange, ChannelEvent,
    CorruptModel, DenseOptions, GeParams, HackMode, LossConfig, RoamEvent, RoamTrigger, RunResult,
    ScenarioBuilder, ScenarioConfig, StandardKind, SupervisorConfig,
};
use hack_sim::SimDuration;
use hack_trace::{Digest, TraceHandle};
use proptest::prelude::*;

fn traced(c: ScenarioConfig) -> (RunResult, Digest) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let res = run_traced(c, handle);
    (res, ring.digest())
}

/// Two cells 25 m apart on different channels (no interference edge),
/// one client homed in cell 0 — the minimal world with somewhere to
/// roam to.
fn two_bss_cfg(seed: u64, mode: HackMode) -> ScenarioConfig {
    ScenarioConfig::builder()
        .standard(StandardKind::Dot11n)
        .rate_mbps(150)
        .hack(mode)
        .bss(vec![
            BssSpec {
                x: 0.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 25.0,
                y: 0.0,
                channel: 6,
                n_clients: 0,
            },
        ])
        .duration(SimDuration::from_millis(800))
        .warmup(SimDuration::from_millis(5))
        .seed(seed)
        .build()
}

fn supervised(mut c: ScenarioConfig) -> ScenarioConfig {
    c.supervisor = Some(SupervisorConfig::default());
    c
}

fn roam_at(ms: u64, target: usize) -> RoamEvent {
    RoamEvent {
        flow: 0,
        at: SimDuration::from_millis(ms),
        target_bss: target,
    }
}

/// A scheduled mid-flow handoff completes, the flow keeps making
/// forward progress through and after the blackout, and the supervisor
/// records the handoff.
#[test]
fn scheduled_roam_completes_and_flow_survives() {
    let mut c = supervised(two_bss_cfg(5, HackMode::MoreData));
    c.roam.schedule = vec![roam_at(300, 1)];
    let (r, _) = traced(c);
    assert_eq!(r.roams, 1, "the scheduled handoff never completed");
    assert_eq!(r.supervisor[0].stats.handoffs, 1);
    assert!(
        r.flow_goodput_final_mbps[0] > 0.0,
        "flow stalled after the handoff"
    );
    assert!(
        r.aggregate_goodput_mbps > 1.0,
        "goodput collapsed across the roam: {:.3} Mbps",
        r.aggregate_goodput_mbps
    );
}

/// Same seed, same roam schedule → byte-identical traces; a different
/// seed still diverges. Roaming must not cost the determinism contract.
#[test]
fn roaming_run_is_seed_deterministic() {
    let mk = |seed| {
        let mut c = supervised(two_bss_cfg(seed, HackMode::MoreData));
        c.roam.schedule = vec![roam_at(200, 1), roam_at(500, 0)];
        c.roam.assoc_fail_prob = 0.4; // exercise the retry RNG too
        c
    };
    let (ra, da) = traced(mk(13));
    let (rb, db) = traced(mk(13));
    assert!(da.events > 500, "trace suspiciously small: {}", da.events);
    assert_eq!(da.to_bytes(), db.to_bytes(), "roaming broke determinism");
    assert_eq!(ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps);
    assert_eq!(ra.roams, rb.roams);
    let (_, dc) = traced(mk(14));
    assert_ne!(da.to_bytes(), dc.to_bytes(), "seeds must still diverge");
}

/// Roaming onto a HACK-incapable AP renegotiates the capability off
/// (native ACKs only, supervisor at rest in `PeerIncapable`-equivalent
/// fallback), and roaming back re-enables it — the full degrade/recover
/// arc across two handoffs.
#[test]
fn roam_renegotiates_hack_across_incapable_ap() {
    let mut c = supervised(two_bss_cfg(9, HackMode::MoreData));
    c.duration = SimDuration::from_millis(1500);
    c.roam.ap_hack_capable = vec![true, false];
    c.roam.schedule = vec![roam_at(400, 1), roam_at(900, 0)];
    let (r, _) = traced(c);
    assert_eq!(r.roams, 2);
    assert_eq!(r.supervisor[0].stats.handoffs, 2);
    assert!(
        r.driver[0].hacked_acks > 0,
        "HACK never engaged despite two capable associations"
    );
    assert!(
        r.flow_goodput_final_mbps[0] > 0.0,
        "flow stalled after returning to the capable AP"
    );
    // Parked/flushed ACK conservation: nothing silently lost (the flow
    // finished live), nothing delivered twice (the receiver's TCP would
    // have choked on regressing ACKs long before the end of the run).
    assert!(r.receiver_tcp[0].bytes_delivered > 0);
}

/// Satellite regression: a mid-run `MoveClient` dynamics event that
/// drags the client across the roam threshold must fire the roam path —
/// not just reset the Gilbert–Elliott edge.
#[test]
fn move_client_dynamics_triggers_roam() {
    let mut c = supervised(two_bss_cfg(11, HackMode::MoreData));
    c.roam.trigger = Some(RoamTrigger {
        threshold_db: 28.0,
        hysteresis_db: 3.0,
        min_dwell: SimDuration::from_millis(50),
    });
    // Teleport the client right next to cell 1's AP mid-run.
    c.dynamics = vec![ChannelEvent {
        at: SimDuration::from_millis(300),
        change: ChannelChange::MoveClient {
            client: 0,
            x: 24.0,
            y: 0.0,
        },
    }];
    let (r, _) = traced(c);
    assert!(
        r.roams >= 1,
        "MoveClient across the threshold did not trigger a roam"
    );
    assert!(r.flow_goodput_final_mbps[0] > 0.0, "flow stalled post-roam");
}

/// Without a trigger configured, the same move stays a pure channel
/// update (the historical behaviour): zero roams, zero handoffs.
#[test]
fn move_client_without_trigger_stays_inert() {
    let mut c = supervised(two_bss_cfg(11, HackMode::MoreData));
    c.dynamics = vec![ChannelEvent {
        at: SimDuration::from_millis(300),
        change: ChannelChange::MoveClient {
            client: 0,
            x: 24.0,
            y: 0.0,
        },
    }];
    let (r, _) = traced(c);
    assert_eq!(r.roams, 0);
    assert_eq!(r.supervisor[0].stats.handoffs, 0);
}

/// Satellite: the estimator-divergence detector must stay quiet across
/// the PR 3 fault matrix — bursty loss, FCS-escaping corruption, and
/// mid-run dynamics bend the delivery-rate sampler and the ACK clock
/// together, never apart.
#[test]
fn estimator_divergence_is_quiet_on_fault_matrix() {
    for seed in [13, 21, 34, 89] {
        let mut c = ScenarioBuilder::sora_testbed(1, HackMode::MoreData).build();
        c.duration = SimDuration::from_secs(2);
        c.seed = seed;
        c.loss = LossConfig::Burst(GeParams::bursty(0.08, 6.0));
        c.corrupt = Some(CorruptModel {
            data_frac: 0.5,
            control_per: 0.02,
            fcs_miss: 0.25,
        });
        c.dynamics = vec![
            ChannelEvent {
                at: SimDuration::from_millis(600),
                change: ChannelChange::ClientLoss {
                    client: 0,
                    per: 0.1,
                },
            },
            ChannelEvent {
                at: SimDuration::from_millis(1200),
                change: ChannelChange::SnrOffsetDb(-3.0),
            },
        ];
        let (r, _) = traced(supervised(c));
        let div: u64 = r.supervisor.iter().map(|s| s.stats.est_divergence).sum();
        assert_eq!(div, 0, "seed {seed}: spurious estimator-divergence signal");
    }
}

/// A roam-free config leaves the whole roam subsystem cold: no runtime,
/// no extra RNG draws, no roams counted.
#[test]
fn roam_free_world_counts_no_roams() {
    let c = two_bss_cfg(3, HackMode::MoreData);
    assert!(!c.roam.is_active());
    let (r, _) = traced(c);
    assert_eq!(r.roams, 0);
}

fn dense_roam_cfg(seed: u64) -> ScenarioConfig {
    // Two interference components (cells 0+1 share channel 1 at 20 m;
    // cell 2 sits alone on channel 6) with a cross-component roam: the
    // closure must merge them and quantize the handoff to an epoch edge.
    let mut c = ScenarioConfig::builder()
        .standard(StandardKind::Dot11n)
        .rate_mbps(150)
        .hack(HackMode::MoreData)
        .bss(vec![
            BssSpec {
                x: 0.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 20.0,
                y: 0.0,
                channel: 1,
                n_clients: 1,
            },
            BssSpec {
                x: 100.0,
                y: 0.0,
                channel: 6,
                n_clients: 1,
            },
        ])
        .duration(SimDuration::from_millis(400))
        .stagger(SimDuration::from_millis(2))
        .warmup(SimDuration::from_millis(5))
        .seed(seed)
        .build();
    c.roam.schedule = vec![RoamEvent {
        flow: 0,
        at: SimDuration::from_millis(155),
        target_bss: 2,
    }];
    c
}

/// Roam closure: the cross-component handoff merges the two shards into
/// one, and its `at` is quantized up to the next (default) epoch edge.
#[test]
fn roam_closure_merges_shards_and_quantizes() {
    let cfg = dense_roam_cfg(1);
    let parts = shard_configs(&cfg);
    assert_eq!(parts.len(), 1, "roam-coupled components must merge");
    let (sub, flows) = &parts[0];
    assert_eq!(flows, &vec![0, 1, 2]);
    assert_eq!(sub.roam.schedule.len(), 1);
    assert_eq!(
        sub.roam.schedule[0].at,
        SimDuration::from_millis(200),
        "cross-domain roam must land on the epoch boundary"
    );
    // A within-component roam is untouched and shards stay split.
    let mut same = dense_roam_cfg(1);
    same.roam.schedule[0].target_bss = 1;
    let parts = shard_configs(&same);
    assert_eq!(parts.len(), 2);
    assert_eq!(
        parts[0].0.roam.schedule[0].at,
        SimDuration::from_millis(155),
        "in-domain roam must not be quantized"
    );
}

/// Parallel and serial dense execution of a roaming world stay
/// byte-identical: same exchange ledger, same shard digests, same
/// goodputs.
#[test]
fn dense_roam_parallel_equals_serial() {
    let cfg = dense_roam_cfg(21);
    let serial = run_dense(
        &cfg,
        &DenseOptions {
            threads: 1,
            epoch: SimDuration::from_millis(100),
            digests: true,
        },
    );
    let parallel = run_dense(
        &cfg,
        &DenseOptions {
            threads: 4,
            epoch: SimDuration::from_millis(100),
            digests: true,
        },
    );
    assert_eq!(serial.exchange_digest, parallel.exchange_digest);
    assert_eq!(serial.flow_goodput_mbps, parallel.flow_goodput_mbps);
    for (a, b) in serial.shards.iter().zip(&parallel.shards) {
        assert_eq!(a.digest, b.digest, "shard trace digests diverged");
        assert_eq!(a.result.roams, b.result.roams);
    }
    let total: u64 = serial.shards.iter().map(|s| s.result.roams).sum();
    assert_eq!(total, 1, "the quantized cross-domain roam must still run");
}

/// `run_auto` folds a dense report back into one `RunResult` with
/// per-flow vectors in global order and per-station stats for the whole
/// fleet — the shape the campaign runner caches.
#[test]
fn run_auto_merges_dense_results() {
    let cfg = dense_roam_cfg(7);
    let merged = run_auto(cfg.clone());
    let report = run_dense(&cfg, &DenseOptions::default());
    assert_eq!(merged.flow_goodput_mbps, report.flow_goodput_mbps);
    assert_eq!(merged.aggregate_goodput_mbps, report.aggregate_goodput_mbps);
    assert_eq!(merged.mac.len(), 6, "3 APs + 3 clients");
    assert_eq!(merged.driver.len(), 3);
    assert_eq!(merged.roams, 1);
    // Legacy configs pass through the direct engine untouched.
    let legacy = ScenarioBuilder::dot11n_download(150, 1, HackMode::MoreData).build();
    let a = run_auto(legacy.clone());
    let b = run(legacy);
    assert_eq!(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);
    assert_eq!(a.events_dispatched, b.events_dispatched);
}

proptest! {
    /// World-level roam liveness: ANY schedule of handoffs — arbitrary
    /// timing, capable or incapable targets, flaky association attempts,
    /// handoffs landing mid-blob — leaves every flow alive (nonzero
    /// final-window goodput), every supervisor in a rest state with the
    /// handoffs accounted, and the run byte-reproducible under its seed.
    #[test]
    fn any_roam_schedule_leaves_flows_live(
        seed in 0u64..500,
        roams_ms in proptest::collection::vec((60u64..500, 0usize..2), 0..4),
        cap1 in any::<bool>(),
        flaky in any::<bool>(),
    ) {
        let mut c = supervised(two_bss_cfg(seed, HackMode::MoreData));
        c.roam.ap_hack_capable = vec![true, cap1];
        c.roam.assoc_fail_prob = if flaky { 0.5 } else { 0.0 };
        c.roam.schedule = roams_ms
            .iter()
            .map(|&(ms, target)| roam_at(ms, target))
            .collect();
        let (ra, da) = traced(c.clone());
        prop_assert!(
            ra.flow_goodput_final_mbps[0] > 0.0,
            "flow permanently stalled after the final handoff"
        );
        // Handoffs the supervisor saw == handoffs the world completed
        // (give-up returns included): nothing wedged mid-blackout.
        prop_assert_eq!(ra.supervisor[0].stats.handoffs, ra.roams);
        let (rb, db) = traced(c);
        prop_assert_eq!(da.to_bytes(), db.to_bytes(), "roam schedule broke determinism");
        prop_assert_eq!(ra.roams, rb.roams);
    }
}
