//! Trace-layer integration tests: the determinism contract ("same seed
//! ⇒ byte-identical trace digest") and the paper's headline comparison
//! (Figure 9 / Table 1 direction) measured through traced runs.

use hack_core::{
    run_traced, ChannelChange, ChannelEvent, CorruptModel, GeParams, HackMode, LossConfig,
    RunResult, ScenarioBuilder, ScenarioConfig,
};
use hack_sim::{QueueKind, SimDuration};
use hack_trace::{Digest, Layer, TraceHandle};

fn cfg(mode: HackMode, seed: u64) -> ScenarioConfig {
    let mut c = ScenarioBuilder::sora_testbed(1, mode).build();
    c.duration = SimDuration::from_secs(2);
    c.seed = seed;
    c
}

fn traced(c: ScenarioConfig) -> (RunResult, Digest) {
    let (handle, ring) = TraceHandle::ring(1 << 20);
    let res = run_traced(c, handle);
    let digest = ring.digest();
    (res, digest)
}

#[test]
fn same_seed_gives_byte_identical_digest() {
    let (ra, da) = traced(cfg(HackMode::MoreData, 7));
    let (rb, db) = traced(cfg(HackMode::MoreData, 7));
    assert!(da.events > 1000, "trace suspiciously small: {}", da.events);
    assert_eq!(
        da.to_bytes(),
        db.to_bytes(),
        "same seed must replay exactly"
    );
    assert_eq!(
        ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps,
        "digests match but results differ: the digest misses state"
    );
}

/// The scheduler swap must be invisible: a traced run produces a
/// byte-identical digest whether events flow through the calendar
/// queue (the default) or the reference binary heap.
#[test]
fn digest_identical_under_both_schedulers() {
    let mut cal = cfg(HackMode::MoreData, 7);
    cal.queue = QueueKind::Calendar;
    let mut heap = cfg(HackMode::MoreData, 7);
    heap.queue = QueueKind::Heap;

    let (rc, dc) = traced(cal);
    let (rh, dh) = traced(heap);
    assert!(dc.events > 1000, "trace suspiciously small: {}", dc.events);
    assert_eq!(
        dc.to_bytes(),
        dh.to_bytes(),
        "calendar queue reordered events relative to the heap"
    );
    assert_eq!(rc.aggregate_goodput_mbps, rh.aggregate_goodput_mbps);
    assert_eq!(rc.events_dispatched, rh.events_dispatched);
}

/// Scenario with every fault-injection feature on at once: bursty
/// Gilbert–Elliott loss, corrupted delivery (FCS-caught and
/// FCS-escaping), and scheduled mid-run channel dynamics.
fn faulty_cfg(seed: u64) -> ScenarioConfig {
    let mut c = cfg(HackMode::MoreData, seed);
    c.loss = LossConfig::Burst(GeParams::bursty(0.08, 6.0));
    c.corrupt = Some(CorruptModel {
        data_frac: 0.5,
        control_per: 0.02,
        fcs_miss: 0.25,
    });
    c.dynamics = vec![
        ChannelEvent {
            at: SimDuration::from_millis(600),
            change: ChannelChange::ClientLoss {
                client: 0,
                per: 0.1,
            },
        },
        ChannelEvent {
            at: SimDuration::from_millis(1200),
            change: ChannelChange::SnrOffsetDb(-3.0),
        },
    ];
    c
}

/// The determinism contract must survive fault injection: bursty loss,
/// corrupted delivery, and scheduled dynamics all draw from the same
/// seeded RNG, so equal seeds still replay byte-identically.
#[test]
fn fault_injection_keeps_the_digest_deterministic() {
    let (ra, da) = traced(faulty_cfg(13));
    let (rb, db) = traced(faulty_cfg(13));
    assert!(da.events > 1000, "trace suspiciously small: {}", da.events);
    assert_eq!(
        da.to_bytes(),
        db.to_bytes(),
        "fault injection broke seed determinism"
    );
    assert_eq!(ra.aggregate_goodput_mbps, rb.aggregate_goodput_mbps);
    let (_, dc) = traced(faulty_cfg(14));
    assert_ne!(da.to_bytes(), dc.to_bytes(), "seeds must still diverge");
}

/// The corrupted-delivery path runs end-to-end under load: FCS-caught
/// corruption shows up in the MAC counters, FCS-escaping blob flips
/// reach the ROHC decompressor as CRC-3 failures, and TCP keeps making
/// progress through all of it.
#[test]
fn corrupted_delivery_exercises_fcs_and_crc3_without_stalling() {
    let (r, _) = traced(faulty_cfg(21));
    let fcs_bad: u64 = r.mac.iter().map(|m| m.rx_fcs_bad.get()).sum();
    assert!(fcs_bad > 0, "no FCS-caught corrupted MPDUs");
    assert!(
        r.decompressor.crc_failures > 0,
        "no blob corruption reached the ROHC CRC-3 check"
    );
    assert!(
        r.aggregate_goodput_mbps > 1.0,
        "TCP stalled under fault injection: {:.3} Mbps",
        r.aggregate_goodput_mbps
    );
}

#[test]
fn different_seed_gives_different_digest() {
    let (_, da) = traced(cfg(HackMode::MoreData, 7));
    let (_, db) = traced(cfg(HackMode::MoreData, 8));
    assert_ne!(
        da.to_bytes(),
        db.to_bytes(),
        "different seeds should diverge somewhere in the event stream"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let plain = hack_core::run(cfg(HackMode::MoreData, 11));
    let (traced_res, d) = traced(cfg(HackMode::MoreData, 11));
    assert!(d.events > 0);
    assert_eq!(
        plain.aggregate_goodput_mbps, traced_res.aggregate_goodput_mbps,
        "attaching a sink must not change behavior"
    );
}

#[test]
fn traced_run_covers_every_layer() {
    let (_, d) = traced(cfg(HackMode::MoreData, 3));
    for layer in [Layer::Phy, Layer::Mac, Layer::Tcp, Layer::Rohc, Layer::Sim] {
        assert!(
            d.per_layer[layer as usize] > 0,
            "no events from layer {layer:?}"
        );
    }
}

/// Table 1 / Figure 9 direction: HACK must match-or-beat stock TCP on
/// both goodput and the fraction of AP data frames needing no retries.
#[test]
fn hack_matches_or_beats_stock_tcp_on_goodput_and_retries() {
    let mut stock = cfg(HackMode::Disabled, 5);
    stock.loss = LossConfig::PerClient(vec![0.02]);
    let mut hack = stock.clone();
    hack.hack_mode = HackMode::MoreData;

    let (rs, _) = traced(stock);
    let (rh, _) = traced(hack);
    assert!(
        rh.aggregate_goodput_mbps >= rs.aggregate_goodput_mbps,
        "HACK goodput {:.2} < stock {:.2}",
        rh.aggregate_goodput_mbps,
        rs.aggregate_goodput_mbps
    );
    let fs = rs.ap_first_try_fraction().expect("stock AP sent data");
    let fh = rh.ap_first_try_fraction().expect("hack AP sent data");
    assert!(
        fh >= fs,
        "HACK retry-free fraction {fh:.3} < stock {fs:.3} (Table 1 inverts)"
    );
}
