//! Property-based equivalence of the incremental blob cache against a
//! from-scratch rebuild: after *any* sequence of driver operations —
//! holds, spills past the cap, ridden/unridden response cycles, data
//! confirmations, flush timers — `CompressSide::current_blob()` (the
//! patched cache) must equal `rebuild_blob_from_scratch()` (re-encoding
//! every held segment). This is the safety net under the zero-copy hot
//! path: the simulator only ever ships the cached bytes.

use hack_core::{CompressSide, HackMode};
use hack_mac::RxDataInfo;
use hack_phy::StationId;
use hack_sim::{SimDuration, SimTime};
use hack_tcp::{
    flags as tf, Ipv4Addr, Ipv4Packet, TcpOption, TcpOptions, TcpSegment, TcpSeq, Transport,
};
use proptest::prelude::*;

fn ack_pkt(ackno: u32, ident: u16, tsval: u32, window: u16) -> Ipv4Packet {
    let mut options = TcpOptions::new();
    options.push(TcpOption::Timestamps {
        tsval,
        tsecr: tsval.wrapping_sub(3),
    });
    Ipv4Packet {
        src: Ipv4Addr::new(192, 168, 0, 2),
        dst: Ipv4Addr::new(10, 0, 0, 1),
        ident,
        ttl: 64,
        transport: Transport::Tcp(TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq: TcpSeq(7777),
            ack: TcpSeq(ackno),
            flags: tf::ACK,
            window,
            options,
            payload_len: 0,
        }),
    }
}

/// One generated driver operation. Encoded as plain tuples so the
/// vendored proptest's built-in strategies cover it.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// TCP stack emits an ACK (delta advances the ack number).
    AckOut { delta: u32, window: u16 },
    /// Data PPDU from the peer; may confirm ridden holds and drives the
    /// MORE DATA latch.
    DataReceived {
        more_data: bool,
        sync: bool,
        advances_seq: bool,
        is_aggregate: bool,
    },
    /// MAC sent a response; `attached` = our blob rode it.
    ResponseSent { attached: bool },
    /// Explicit flush timer fired.
    FlushTimer,
}

fn decode_op(sel: u8, a: u32, b: u16, f: (bool, bool, bool, bool)) -> Op {
    match sel % 4 {
        0 => Op::AckOut {
            delta: a % 100_000,
            window: b,
        },
        1 => Op::DataReceived {
            more_data: f.0,
            sync: f.1,
            advances_seq: f.2,
            is_aggregate: f.3,
        },
        2 => Op::ResponseSent { attached: f.0 },
        _ => Op::FlushTimer,
    }
}

fn run_ops(mode: HackMode, held_cap: usize, ops: &[Op]) {
    let mut d = CompressSide::new(mode);
    d.set_held_cap(held_cap);
    let mut ackno = 1000u32;
    let mut ident = 1u16;
    let mut ts = 100u32;
    let mut now = SimTime::from_millis(1);
    for (i, op) in ops.iter().enumerate() {
        now += SimDuration::from_micros(137);
        match *op {
            Op::AckOut { delta, window } => {
                ackno = ackno.wrapping_add(delta);
                ident = ident.wrapping_add(1);
                ts = ts.wrapping_add(1);
                d.on_ack_out(ack_pkt(ackno, ident, ts, window), now);
            }
            Op::DataReceived {
                more_data,
                sync,
                advances_seq,
                is_aggregate,
            } => {
                let info = RxDataInfo {
                    from: StationId(0),
                    mpdus_ok: 2,
                    more_data,
                    sync,
                    advances_seq,
                    is_aggregate,
                };
                d.on_data_received(&info, now);
            }
            Op::ResponseSent { attached } => {
                d.on_response_sent(attached, now);
            }
            Op::FlushTimer => {
                d.on_flush_timer(now);
            }
        }
        assert_eq!(
            d.current_blob(),
            d.rebuild_blob_from_scratch(),
            "cache diverged after op {i} ({op:?}); held={}",
            d.held_count()
        );
    }
}

proptest! {
    /// MORE DATA mode: the incremental cache equals a from-scratch
    /// rebuild after every operation of an arbitrary driver history.
    #[test]
    fn incremental_blob_matches_scratch_more_data(
        held_cap in 1usize..12,
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u16>(),
             (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>())),
            1..80,
        ),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, a, b, f)| decode_op(s, a, b, f)).collect();
        run_ops(HackMode::MoreData, held_cap, &ops);
    }

    /// Explicit-timer mode exercises the flush path (drain-all +
    /// SendNative spill) under the same invariant.
    #[test]
    fn incremental_blob_matches_scratch_explicit_timer(
        held_cap in 1usize..12,
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u16>(),
             (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>())),
            1..80,
        ),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, a, b, f)| decode_op(s, a, b, f)).collect();
        run_ops(HackMode::ExplicitTimer(SimDuration::from_millis(5)), held_cap, &ops);
    }
}
